//! Graceful-degradation envelopes: the *judgment* half of a fault plan.
//!
//! A fault plan does not merely perturb a run — it states what "handled
//! it" means. The [`Envelope`] encodes the paper-level robustness claim
//! as two checkable properties against a same-seed baseline run:
//!
//! 1. **Floor**: over the whole run, mobile-tag IRR in the faulted run
//!    stays at or above `irr_floor_ratio` × the baseline's.
//! 2. **Recovery**: within `recovery_cycles` controller cycles after the
//!    last fault window closes, some cycle's mobile IRR reaches
//!    `recovery_ratio` × the baseline's for that same cycle.
//!
//! Ratios against a same-seed baseline (rather than absolute read rates)
//! make the envelope portable across scenarios: a 15-tag quick run and a
//! 100-tag full run share one plan file.

use serde::{Deserialize, Serialize};

/// The degradation bounds a faulted run must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct Envelope {
    /// Whole-run floor: faulted mobile IRR ÷ baseline mobile IRR must be
    /// at least this.
    pub irr_floor_ratio: f64,
    /// Cycle budget for recovery after the last window closes.
    pub recovery_cycles: usize,
    /// Per-cycle ratio that counts as "recovered".
    pub recovery_ratio: f64,
}

impl Default for Envelope {
    fn default() -> Self {
        Envelope {
            irr_floor_ratio: 0.2,
            recovery_cycles: 5,
            recovery_ratio: 0.5,
        }
    }
}

impl Envelope {
    /// Structural validation (ratios in `[0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.irr_floor_ratio) {
            return Err(format!(
                "envelope irr_floor_ratio must be in [0, 1], got {}",
                self.irr_floor_ratio
            ));
        }
        if !(0.0..=1.0).contains(&self.recovery_ratio) {
            return Err(format!(
                "envelope recovery_ratio must be in [0, 1], got {}",
                self.recovery_ratio
            ));
        }
        Ok(())
    }
}

/// One controller cycle observed in *both* runs of a differential pair.
///
/// `baseline_mobile_irr` / `faulted_mobile_irr` are reads-per-second over
/// the cycle for the mobile cohort (or whatever cohort the harness
/// tracks); the envelope only ever compares their ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleObservation {
    /// Cycle start on the simulated clock, seconds.
    pub t_start: f64,
    /// Cycle end on the simulated clock, seconds.
    pub t_end: f64,
    /// Mobile-cohort IRR in the clean run.
    pub baseline_mobile_irr: f64,
    /// Mobile-cohort IRR in the faulted run.
    pub faulted_mobile_irr: f64,
}

/// The evaluator's verdict, with enough detail to print a useful failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvelopeReport {
    /// Whole-run faulted ÷ baseline IRR (1.0 when the baseline read
    /// nothing — an empty baseline cannot be degraded).
    pub overall_ratio: f64,
    /// Whether the whole-run floor held.
    pub floor_ok: bool,
    /// Whether recovery happened within budget (vacuously true when no
    /// cycle starts after the last window closes, or the plan injects
    /// nothing).
    pub recovered: bool,
    /// Index (into the observation slice) of the first post-fault cycle
    /// that met the recovery ratio, if any did.
    pub recovery_cycle: Option<usize>,
    /// Human-readable violations; empty iff `passed()`.
    pub violations: Vec<String>,
}

impl EnvelopeReport {
    /// Whether the faulted run stayed inside the envelope.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn ratio(faulted: f64, baseline: f64) -> f64 {
    if baseline <= 0.0 {
        1.0
    } else {
        faulted / baseline
    }
}

impl Envelope {
    /// Live early-warning check, for monitors watching a faulted run as
    /// it streams: has this fault window's reading rate *already* fallen
    /// through the whole-run floor? Unlike [`Envelope::evaluate`], the
    /// baseline here is the same run's clean-time rate (no differential
    /// pair exists yet mid-run), so this is a leading indicator — a
    /// window can trip it while the whole run still ends inside the
    /// envelope. Returns the offending ratio when below the floor.
    pub fn early_warning(&self, faulted_irr: f64, baseline_irr: f64) -> Option<f64> {
        let r = ratio(faulted_irr, baseline_irr);
        (r < self.irr_floor_ratio).then_some(r)
    }

    /// Judges a differential pair. `fault_end` is the plan's
    /// [`crate::FaultPlan::last_window_end`]; pass `None` for a plan
    /// that injects nothing (every check is then vacuous or trivially
    /// about equal runs).
    pub fn evaluate(&self, fault_end: Option<f64>, cycles: &[CycleObservation]) -> EnvelopeReport {
        let base_total: f64 = cycles
            .iter()
            .map(|c| c.baseline_mobile_irr * (c.t_end - c.t_start).max(0.0))
            .sum();
        let fault_total: f64 = cycles
            .iter()
            .map(|c| c.faulted_mobile_irr * (c.t_end - c.t_start).max(0.0))
            .sum();
        let overall_ratio = ratio(fault_total, base_total);
        let floor_ok = overall_ratio >= self.irr_floor_ratio;

        let mut violations = Vec::new();
        if !floor_ok {
            violations.push(format!(
                "whole-run mobile IRR ratio {overall_ratio:.3} below floor {:.3}",
                self.irr_floor_ratio
            ));
        }

        // Recovery: look at the first `recovery_cycles` cycles that start
        // at or after the last fault window closes.
        let mut recovered = true;
        let mut recovery_cycle = None;
        if let Some(end) = fault_end {
            let post: Vec<(usize, &CycleObservation)> = cycles
                .iter()
                .enumerate()
                .filter(|(_, c)| c.t_start >= end)
                .take(self.recovery_cycles.max(1))
                .collect();
            if !post.is_empty() {
                recovery_cycle = post
                    .iter()
                    .find(|(_, c)| {
                        ratio(c.faulted_mobile_irr, c.baseline_mobile_irr) >= self.recovery_ratio
                    })
                    .map(|(i, _)| *i);
                recovered = recovery_cycle.is_some();
                if !recovered {
                    violations.push(format!(
                        "no recovery to {:.0}% of baseline within {} post-fault cycles",
                        self.recovery_ratio * 100.0,
                        post.len()
                    ));
                }
            }
        }

        EnvelopeReport {
            overall_ratio,
            floor_ok,
            recovered,
            recovery_cycle,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    // Exact literals flow through the evaluator untouched; approximate
    // comparison would weaken the assertions.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn obs(t0: f64, t1: f64, base: f64, faulted: f64) -> CycleObservation {
        CycleObservation {
            t_start: t0,
            t_end: t1,
            baseline_mobile_irr: base,
            faulted_mobile_irr: faulted,
        }
    }

    #[test]
    fn clean_pair_passes_trivially() {
        let env = Envelope::default();
        let cycles = vec![obs(0.0, 1.0, 4.0, 4.0), obs(1.0, 2.0, 4.0, 4.0)];
        let report = env.evaluate(None, &cycles);
        assert!(report.passed());
        assert!(report.overall_ratio > 0.99);
    }

    #[test]
    fn floor_violation_is_reported() {
        let env = Envelope {
            irr_floor_ratio: 0.5,
            ..Default::default()
        };
        let cycles = vec![obs(0.0, 1.0, 10.0, 1.0)];
        let report = env.evaluate(Some(0.5), &cycles);
        assert!(!report.passed());
        assert!(!report.floor_ok);
        assert!(report.violations[0].contains("floor"));
    }

    #[test]
    fn recovery_found_within_budget() {
        let env = Envelope {
            irr_floor_ratio: 0.1,
            recovery_cycles: 3,
            recovery_ratio: 0.8,
        };
        // Fault ends at t = 2; cycles 2 and 3 are post-fault, cycle 3
        // recovers.
        let cycles = vec![
            obs(0.0, 1.0, 10.0, 10.0),
            obs(1.0, 2.0, 10.0, 1.0),
            obs(2.0, 3.0, 10.0, 4.0),
            obs(3.0, 4.0, 10.0, 9.0),
        ];
        let report = env.evaluate(Some(2.0), &cycles);
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(report.recovery_cycle, Some(3));
    }

    #[test]
    fn recovery_failure_within_budget_is_reported() {
        let env = Envelope {
            irr_floor_ratio: 0.0,
            recovery_cycles: 2,
            recovery_ratio: 0.9,
        };
        let cycles = vec![
            obs(0.0, 1.0, 10.0, 1.0),
            obs(1.0, 2.0, 10.0, 2.0),
            obs(2.0, 3.0, 10.0, 2.0),
            obs(3.0, 4.0, 10.0, 9.5), // outside the 2-cycle budget
        ];
        let report = env.evaluate(Some(1.0), &cycles);
        assert!(!report.recovered);
        assert!(!report.passed());
    }

    #[test]
    fn recovery_is_vacuous_without_post_fault_cycles() {
        let env = Envelope::default();
        let cycles = vec![obs(0.0, 1.0, 10.0, 2.0)];
        // Fault window extends past the run's end.
        let report = env.evaluate(Some(100.0), &cycles);
        assert!(report.recovered);
        assert_eq!(report.recovery_cycle, None);
    }

    #[test]
    fn zero_baseline_cannot_be_degraded() {
        let env = Envelope::default();
        let cycles = vec![obs(0.0, 1.0, 0.0, 0.0)];
        let report = env.evaluate(Some(0.5), &cycles);
        assert!(report.passed());
        assert_eq!(report.overall_ratio, 1.0);
    }

    #[test]
    fn early_warning_flags_only_sub_floor_windows() {
        let env = Envelope::default(); // floor 0.2
        assert_eq!(env.early_warning(1.0, 1.0), None);
        assert_eq!(env.early_warning(0.3, 1.0), None, "above the floor");
        assert_eq!(env.early_warning(0.1, 1.0), Some(0.1));
        // An empty baseline cannot be degraded (ratio convention 1.0).
        assert_eq!(env.early_warning(0.0, 0.0), None);
    }

    #[test]
    fn envelope_validation_bounds_ratios() {
        let bad = Envelope {
            irr_floor_ratio: 1.5,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = Envelope {
            recovery_ratio: -0.1,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        Envelope::default().validate().unwrap();
    }
}
