//! # tagwatch-fault — deterministic fault injection for the two-phase stack
//!
//! Every scenario the simulator runs by default is a *clean* run: no
//! antenna outages, no burst interference, no lost commands. Real
//! deployments are dominated by exactly those failure modes (missed reads
//! forcing multi-session redundancy, collision-regime sensitivity of
//! frame-slotted ALOHA), so the robustness claim of the two-phase cycle —
//! mobile-tag IRR stays useful under adverse conditions — needs a tested
//! adversarial surface, not an aspiration.
//!
//! This crate is that surface's *model* half: a seeded, sim-clock-driven
//! [`FaultPlan`] (an ordered list of [`FaultEvent`]s, each a fault kind
//! plus an activation [`Window`] on the simulated clock) and the
//! [`FaultInjector`] trait the reader polls each round to learn which
//! effects are active *now*. Faults cover three layers:
//!
//! * **RF** — burst phase noise, SNR collapse (RSS drop + decode
//!   failures), antenna outage ([`FaultKind::BurstNoise`],
//!   [`FaultKind::SnrCollapse`], [`FaultKind::AntennaOutage`]).
//! * **Gen2 link** — lost `Select`/`QueryRep` commands, corrupted EPC
//!   replies, tag mute/detune ([`FaultKind::SelectLoss`],
//!   [`FaultKind::QueryRepLoss`], [`FaultKind::ReplyCorruption`],
//!   [`FaultKind::TagMute`], [`FaultKind::TagDetune`]).
//! * **Reader** — connection stall + restart, with configurable
//!   session-flag persistence across the restart
//!   ([`FaultKind::ReaderRestart`]).
//!
//! Everything is a pure function of the plan and the simulated clock: the
//! injector draws no randomness of its own, and the random draws it
//! *causes* (loss/corruption coin flips) ride the reader's seeded RNG, so
//! a faulted run is exactly as reproducible as a clean one. Plans load
//! from TOML or JSON files ([`FaultPlan::from_str_auto`]) — the TOML
//! reader is a small hand-rolled subset parser because the workspace
//! deliberately carries no TOML dependency.
//!
//! The [`envelope`] module holds the *judgment* half: a graceful-
//! degradation [`Envelope`] (IRR floor relative to a same-seed baseline
//! run, recovery budget after the last window closes) and its evaluator,
//! used by the differential harness in `tagwatch-bench` and the fault
//! integration tests.

#![forbid(unsafe_code)]

pub mod envelope;
pub mod injector;
pub mod parse;
pub mod plan;

pub use envelope::{CycleObservation, Envelope, EnvelopeReport};
pub use injector::{FaultInjector, FaultPoll, FaultTransition, PlanInjector, RoundEffects};
pub use parse::ParseError;
pub use plan::{FaultEvent, FaultKind, FaultPlan, PlanError, Window};
