//! Plan-file loading: JSON (serde) and a hand-rolled TOML subset.
//!
//! The workspace deliberately carries no TOML dependency, so the TOML
//! reader here implements exactly the subset plan files need — comments,
//! top-level `key = value`, one `[envelope]` table, and `[[event]]`
//! array-of-tables with scalar / integer-array values:
//!
//! ```toml
//! # One antenna goes dark for four seconds.
//! name = "antenna-outage"
//!
//! [envelope]
//! irr_floor_ratio = 0.25
//! recovery_cycles = 5
//! recovery_ratio = 0.5
//!
//! [[event]]
//! kind = "antenna_outage"
//! start = 2.0
//! end = 6.0
//! antennas = [1]
//! ```
//!
//! [`FaultPlan::from_str_auto`] sniffs the format (a leading `{` means
//! JSON) so `repro --faults <plan>` accepts either. Every load path ends
//! in [`FaultPlan::validate`] — a plan that parses but is structurally
//! nonsense is still rejected with a pointed message.

use crate::envelope::Envelope;
use crate::plan::{FaultEvent, FaultKind, FaultPlan, PlanError, Window};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Why a plan file failed to load.
#[derive(Debug)]
pub enum ParseError {
    /// The file could not be read.
    Io(String),
    /// A line failed to parse (1-based line number; 0 for JSON bodies,
    /// whose own error text carries the position).
    Syntax { line: usize, message: String },
    /// The plan parsed but failed [`FaultPlan::validate`].
    Invalid(PlanError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "cannot read plan: {e}"),
            ParseError::Syntax { line: 0, message } => write!(f, "plan parse error: {message}"),
            ParseError::Syntax { line, message } => {
                write!(f, "plan parse error at line {line}: {message}")
            }
            ParseError::Invalid(e) => write!(f, "invalid plan: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<PlanError> for ParseError {
    fn from(e: PlanError) -> Self {
        ParseError::Invalid(e)
    }
}

/// One parsed TOML value — the subset plan files use.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
    IntArray(Vec<u64>),
}

fn syntax(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        message: message.into(),
    }
}

/// Strips a trailing `#` comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(raw: &str, line_no: usize) -> Result<Value, ParseError> {
    let raw = raw.trim();
    if let Some(body) = raw.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| syntax(line_no, "unterminated string"))?;
        if body.contains('"') {
            return Err(syntax(line_no, "embedded quotes are not supported"));
        }
        return Ok(Value::Str(body.to_string()));
    }
    if raw == "true" {
        return Ok(Value::Bool(true));
    }
    if raw == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = raw.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| syntax(line_no, "unterminated array"))?;
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let n: u64 = part
                .parse()
                .map_err(|_| syntax(line_no, format!("array item `{part}` is not an integer")))?;
            items.push(n);
        }
        return Ok(Value::IntArray(items));
    }
    raw.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| syntax(line_no, format!("cannot parse value `{raw}`")))
}

/// Key-value pairs collected for one table, with the line each key was
/// defined on (for error reporting).
type Table = BTreeMap<String, (Value, usize)>;

fn take_num(table: &mut Table, key: &str) -> Result<Option<f64>, ParseError> {
    match table.remove(key) {
        None => Ok(None),
        Some((Value::Num(n), _)) => Ok(Some(n)),
        Some((_, line)) => Err(syntax(line, format!("`{key}` must be a number"))),
    }
}

fn require_num(table: &mut Table, key: &str, at: usize) -> Result<f64, ParseError> {
    take_num(table, key)?.ok_or_else(|| syntax(at, format!("missing required key `{key}`")))
}

fn take_bool(table: &mut Table, key: &str) -> Result<Option<bool>, ParseError> {
    match table.remove(key) {
        None => Ok(None),
        Some((Value::Bool(b), _)) => Ok(Some(b)),
        Some((_, line)) => Err(syntax(line, format!("`{key}` must be true or false"))),
    }
}

fn take_int_array(table: &mut Table, key: &str) -> Result<Option<Vec<u64>>, ParseError> {
    match table.remove(key) {
        None => Ok(None),
        Some((Value::IntArray(v), _)) => Ok(Some(v)),
        Some((_, line)) => Err(syntax(line, format!("`{key}` must be an integer array"))),
    }
}

fn build_event(mut table: Table, at: usize) -> Result<FaultEvent, ParseError> {
    let kind_name = match table.remove("kind") {
        Some((Value::Str(s), _)) => s,
        Some((_, line)) => return Err(syntax(line, "`kind` must be a string")),
        None => return Err(syntax(at, "event is missing `kind`")),
    };
    let start = require_num(&mut table, "start", at)?;
    let end = require_num(&mut table, "end", at)?;

    let kind = match kind_name.as_str() {
        "antenna_outage" => FaultKind::AntennaOutage {
            antennas: take_int_array(&mut table, "antennas")?
                .unwrap_or_default()
                .into_iter()
                .map(|n| n as u8)
                .collect(),
        },
        "burst_noise" => FaultKind::BurstNoise {
            phase_sigma: take_num(&mut table, "phase_sigma")?.unwrap_or(0.0),
            rss_sigma_db: take_num(&mut table, "rss_sigma_db")?.unwrap_or(0.0),
        },
        "snr_collapse" => FaultKind::SnrCollapse {
            rss_drop_db: take_num(&mut table, "rss_drop_db")?.unwrap_or(0.0),
            decode_fail_prob: take_num(&mut table, "decode_fail_prob")?.unwrap_or(0.0),
        },
        "select_loss" => FaultKind::SelectLoss {
            prob: require_num(&mut table, "prob", at)?,
        },
        "query_rep_loss" => FaultKind::QueryRepLoss {
            prob: require_num(&mut table, "prob", at)?,
        },
        "reply_corruption" => FaultKind::ReplyCorruption {
            prob: require_num(&mut table, "prob", at)?,
        },
        "tag_mute" => FaultKind::TagMute {
            tags: take_int_array(&mut table, "tags")?
                .unwrap_or_default()
                .into_iter()
                .map(|n| n as usize)
                .collect(),
        },
        "tag_detune" => FaultKind::TagDetune {
            tags: take_int_array(&mut table, "tags")?
                .unwrap_or_default()
                .into_iter()
                .map(|n| n as usize)
                .collect(),
        },
        "reader_restart" => FaultKind::ReaderRestart {
            preserve_flags: take_bool(&mut table, "preserve_flags")?.unwrap_or(false),
        },
        other => return Err(syntax(at, format!("unknown fault kind `{other}`"))),
    };

    if let Some((key, (_, line))) = table.into_iter().next() {
        return Err(syntax(
            line,
            format!("unknown key `{key}` for kind `{kind_name}`"),
        ));
    }
    Ok(FaultEvent {
        kind,
        window: Window::new(start, end),
    })
}

fn build_envelope(mut table: Table) -> Result<Envelope, ParseError> {
    let mut env = Envelope::default();
    if let Some(v) = take_num(&mut table, "irr_floor_ratio")? {
        env.irr_floor_ratio = v;
    }
    if let Some(v) = take_num(&mut table, "recovery_cycles")? {
        env.recovery_cycles = v as usize;
    }
    if let Some(v) = take_num(&mut table, "recovery_ratio")? {
        env.recovery_ratio = v;
    }
    if let Some((key, (_, line))) = table.into_iter().next() {
        return Err(syntax(line, format!("unknown envelope key `{key}`")));
    }
    Ok(env)
}

/// Which table the parser is currently filling.
enum Section {
    Top,
    Envelope(Table),
    Event { table: Table, at: usize },
}

impl FaultPlan {
    /// Parses the TOML subset described in the module docs, then
    /// validates.
    pub fn from_toml_str(text: &str) -> Result<FaultPlan, ParseError> {
        let mut plan = FaultPlan::empty("");
        let mut section = Section::Top;

        let close = |plan: &mut FaultPlan, section: Section| -> Result<(), ParseError> {
            match section {
                Section::Top => Ok(()),
                Section::Envelope(table) => {
                    plan.envelope = build_envelope(table)?;
                    Ok(())
                }
                Section::Event { table, at } => {
                    plan.events.push(build_event(table, at)?);
                    Ok(())
                }
            }
        };

        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[event]]" {
                let prev = std::mem::replace(
                    &mut section,
                    Section::Event {
                        table: Table::new(),
                        at: line_no,
                    },
                );
                close(&mut plan, prev)?;
                continue;
            }
            if line == "[envelope]" {
                let prev = std::mem::replace(&mut section, Section::Envelope(Table::new()));
                close(&mut plan, prev)?;
                continue;
            }
            if line.starts_with('[') {
                return Err(syntax(line_no, format!("unknown section `{line}`")));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| syntax(line_no, "expected `key = value`"))?;
            let key = key.trim().to_string();
            let value = parse_value(value, line_no)?;
            let table = match &mut section {
                Section::Top => {
                    match (key.as_str(), &value) {
                        ("name", Value::Str(s)) => plan.name = s.clone(),
                        ("name", _) => return Err(syntax(line_no, "`name` must be a string")),
                        _ => {
                            return Err(syntax(line_no, format!("unknown top-level key `{key}`")));
                        }
                    }
                    continue;
                }
                Section::Envelope(t) => t,
                Section::Event { table, .. } => table,
            };
            if table.insert(key.clone(), (value, line_no)).is_some() {
                return Err(syntax(line_no, format!("duplicate key `{key}`")));
            }
        }
        close(&mut plan, section)?;
        plan.validate()?;
        Ok(plan)
    }

    /// Parses a JSON plan (the serde shape of [`FaultPlan`]), then
    /// validates.
    pub fn from_json_str(text: &str) -> Result<FaultPlan, ParseError> {
        let plan: FaultPlan = serde_json::from_str(text).map_err(|e| ParseError::Syntax {
            line: 0,
            message: e.to_string(),
        })?;
        plan.validate()?;
        Ok(plan)
    }

    /// Sniffs the format — a leading `{` means JSON, anything else the
    /// TOML subset — and parses accordingly.
    pub fn from_str_auto(text: &str) -> Result<FaultPlan, ParseError> {
        if text.trim_start().starts_with('{') {
            FaultPlan::from_json_str(text)
        } else {
            FaultPlan::from_toml_str(text)
        }
    }

    /// Loads and parses a plan file ([`FaultPlan::from_str_auto`]).
    pub fn from_path<P: AsRef<Path>>(path: P) -> Result<FaultPlan, ParseError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ParseError::Io(format!("{}: {e}", path.display())))?;
        FaultPlan::from_str_auto(&text)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)]

    use super::*;

    const FULL_PLAN: &str = r#"
# A kitchen-sink plan exercising every fault kind.
name = "kitchen-sink"  # trailing comment

[envelope]
irr_floor_ratio = 0.25
recovery_cycles = 4
recovery_ratio = 0.6

[[event]]
kind = "antenna_outage"
start = 1.0
end = 2.0
antennas = [1, 2]

[[event]]
kind = "burst_noise"
start = 2.0
end = 3.5
phase_sigma = 0.8
rss_sigma_db = 3.0

[[event]]
kind = "snr_collapse"
start = 3.0
end = 4.0
rss_drop_db = 12.0
decode_fail_prob = 0.3

[[event]]
kind = "select_loss"
start = 0.0
end = 10.0
prob = 0.1

[[event]]
kind = "query_rep_loss"
start = 0.0
end = 0.0   # zero-length: a no-op, but must parse
prob = 0.2

[[event]]
kind = "reply_corruption"
start = 4.0
end = 5.0
prob = 0.15

[[event]]
kind = "tag_mute"
start = 1.0
end = 6.0
tags = [0, 3]

[[event]]
kind = "tag_detune"
start = 2.0
end = 4.0
tags = [5]

[[event]]
kind = "reader_restart"
start = 7.0
end = 8.0
preserve_flags = true
"#;

    #[test]
    fn toml_subset_parses_every_kind() {
        let plan = FaultPlan::from_toml_str(FULL_PLAN).unwrap();
        assert_eq!(plan.name, "kitchen-sink");
        assert_eq!(plan.envelope.recovery_cycles, 4);
        assert_eq!(plan.envelope.irr_floor_ratio, 0.25);
        assert_eq!(plan.events.len(), 9);
        assert!(matches!(
            plan.events[0].kind,
            FaultKind::AntennaOutage { ref antennas } if antennas == &[1, 2]
        ));
        assert!(matches!(
            plan.events[8].kind,
            FaultKind::ReaderRestart {
                preserve_flags: true
            }
        ));
        assert_eq!(plan.events[1].window.start, 2.0);
        assert_eq!(plan.events[1].window.end, 3.5);
    }

    #[test]
    fn toml_and_json_agree() {
        let from_toml = FaultPlan::from_toml_str(FULL_PLAN).unwrap();
        let json = serde_json::to_string(&from_toml).unwrap();
        let from_json = FaultPlan::from_str_auto(&json).unwrap();
        assert_eq!(from_toml, from_json);
    }

    #[test]
    fn auto_detect_picks_toml_for_non_json() {
        let plan = FaultPlan::from_str_auto("name = \"x\"\n").unwrap();
        assert_eq!(plan.name, "x");
        assert!(plan.events.is_empty());
    }

    #[test]
    fn pointed_errors_for_bad_input() {
        let err = FaultPlan::from_toml_str("nonsense\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");

        let err = FaultPlan::from_toml_str("[[event]]\nkind = \"no_such\"\nstart = 0\nend = 1\n")
            .unwrap_err();
        assert!(err.to_string().contains("unknown fault kind"), "{err}");

        let err =
            FaultPlan::from_toml_str("[[event]]\nkind = \"select_loss\"\nstart = 0\nend = 1\n")
                .unwrap_err();
        assert!(err.to_string().contains("prob"), "{err}");

        let err = FaultPlan::from_toml_str(
            "[[event]]\nkind = \"select_loss\"\nprob = 2.0\nstart = 0\nend = 1\n",
        )
        .unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)), "{err}");

        let err = FaultPlan::from_toml_str(
            "[[event]]\nkind = \"select_loss\"\nprob = 0.5\nstart = 0\nend = 1\nbogus = 3\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("bogus"), "{err}");
    }

    #[test]
    fn unknown_envelope_keys_are_rejected() {
        let err = FaultPlan::from_toml_str("[envelope]\nfloor = 0.5\n").unwrap_err();
        assert!(err.to_string().contains("unknown envelope key"), "{err}");
    }

    #[test]
    fn missing_file_reports_io_error() {
        let err = FaultPlan::from_path("/nonexistent/plan.toml").unwrap_err();
        assert!(matches!(err, ParseError::Io(_)));
    }
}
