//! The runtime half: turning a plan into per-round effects.
//!
//! The reader polls its injector once per inventory round (and at select
//! application) with the current simulated time; the injector answers
//! with the composed [`RoundEffects`] active at that instant plus any
//! [`FaultTransition`]s (window open/close edges) crossed since the last
//! poll. The reader turns transitions into `fault.open.<slug>` /
//! `fault.close.<slug>` telemetry markers, which is how `obs` attributes
//! degradation to injection windows after the fact.
//!
//! Effects *compose*: overlapping windows of the same family combine the
//! way independent physical mechanisms would (noise sigmas add, loss
//! probabilities combine as `1 − Π(1 − pᵢ)`, outage sets union). The
//! injector itself is deterministic and RNG-free — probabilistic faults
//! only parameterize coin flips drawn later from the reader's seeded RNG.

use crate::plan::{FaultKind, FaultPlan};
use std::collections::BTreeSet;

/// The composed fault effects active at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoundEffects {
    /// Antenna ports currently dark (union over active outages).
    pub antennas_out: BTreeSet<u8>,
    /// Whether *every* port is dark (an outage with an empty port list).
    pub all_antennas_out: bool,
    /// Added phase-noise sigma, radians.
    pub phase_sigma_add: f64,
    /// Added RSS-noise sigma, dB.
    pub rss_sigma_db_add: f64,
    /// RSS drop applied to every read, dB.
    pub rss_drop_db: f64,
    /// Added per-reply decode-failure probability.
    pub decode_fail_add: f64,
    /// Probability a `Select` command is lost, per tag per command.
    pub select_loss_prob: f64,
    /// Probability a `QueryRep` broadcast is lost entirely.
    pub query_rep_loss_prob: f64,
    /// Probability a decoded EPC reply is corrupted and discarded.
    pub reply_corrupt_prob: f64,
    /// Scene indices of tags muted (unresponsive, state preserved).
    pub muted_tags: BTreeSet<usize>,
    /// Scene indices of tags detuned (unresponsive, power-cycled at
    /// window open).
    pub detuned_tags: BTreeSet<usize>,
    /// An active reader stall, if any: the reader must jump to `end` and
    /// restart there.
    pub restart: Option<RestartEffect>,
}

/// The reader-stall effect: down until `end`, then restart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestartEffect {
    /// When the reader comes back (the window's end — with overlapping
    /// restart windows, the latest end among those active).
    pub end: f64,
    /// Whether tag session flags survive the restart (`false` simulates
    /// a field drop long enough to reset every tag).
    pub preserve_flags: bool,
}

impl RoundEffects {
    /// Whether `port` is dark right now.
    pub fn antenna_out(&self, port: u8) -> bool {
        self.all_antennas_out || self.antennas_out.contains(&port)
    }

    /// Whether this instant is fault-free (the clean-run fast path).
    pub fn is_clean(&self) -> bool {
        *self == RoundEffects::default()
    }

    fn combine_loss(acc: &mut f64, p: f64) {
        // Independent loss mechanisms: survive all of them or lose. The
        // single-mechanism case stays exact (no round-trip through the
        // complement) so a lone fault's probability passes through
        // untouched.
        if *acc <= 0.0 {
            *acc = p;
        } else {
            *acc = 1.0 - (1.0 - *acc) * (1.0 - p);
        }
    }

    fn apply(&mut self, kind: &FaultKind) {
        match kind {
            FaultKind::AntennaOutage { antennas } => {
                if antennas.is_empty() {
                    self.all_antennas_out = true;
                } else {
                    self.antennas_out.extend(antennas.iter().copied());
                }
            }
            FaultKind::BurstNoise {
                phase_sigma,
                rss_sigma_db,
            } => {
                self.phase_sigma_add += phase_sigma;
                self.rss_sigma_db_add += rss_sigma_db;
            }
            FaultKind::SnrCollapse {
                rss_drop_db,
                decode_fail_prob,
            } => {
                self.rss_drop_db += rss_drop_db;
                Self::combine_loss(&mut self.decode_fail_add, *decode_fail_prob);
            }
            FaultKind::SelectLoss { prob } => Self::combine_loss(&mut self.select_loss_prob, *prob),
            FaultKind::QueryRepLoss { prob } => {
                Self::combine_loss(&mut self.query_rep_loss_prob, *prob);
            }
            FaultKind::ReplyCorruption { prob } => {
                Self::combine_loss(&mut self.reply_corrupt_prob, *prob);
            }
            FaultKind::TagMute { tags } => self.muted_tags.extend(tags.iter().copied()),
            FaultKind::TagDetune { tags } => self.detuned_tags.extend(tags.iter().copied()),
            FaultKind::ReaderRestart { preserve_flags } => {
                // `end` is patched in by the caller, which knows the window.
                let end = self.restart.map_or(f64::NEG_INFINITY, |r| r.end);
                self.restart = Some(RestartEffect {
                    end,
                    preserve_flags: *preserve_flags,
                });
            }
        }
    }
}

/// One window edge crossed since the previous poll.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTransition {
    /// Index of the event in its plan (doubles as the marker's `epc`).
    pub event_idx: usize,
    /// The fault's [`FaultKind::slug`].
    pub slug: &'static str,
    /// The canonical edge time — the window's start (open) or end
    /// (close), *not* the poll time, so markers delimit the window
    /// exactly regardless of round boundaries.
    pub t: f64,
    /// `true` for an open edge, `false` for a close edge.
    pub opened: bool,
}

/// What one poll returns: current effects plus edges crossed getting here.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPoll {
    /// Effects active at the polled instant.
    pub effects: RoundEffects,
    /// Open/close edges since the previous poll, in event order.
    pub transitions: Vec<FaultTransition>,
}

/// A source of fault effects, polled by the reader on its simulated
/// clock. Implementations must be deterministic: same poll sequence,
/// same answers.
pub trait FaultInjector: std::fmt::Debug + Send {
    /// Effects at simulated time `t` (monotone non-decreasing across
    /// calls) plus any window edges crossed since the last poll.
    fn poll(&mut self, t: f64) -> FaultPoll;

    /// Clone through the trait object (the reader derives `Clone`).
    fn clone_box(&self) -> Box<dyn FaultInjector>;
}

impl Clone for Box<dyn FaultInjector> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The standard injector: evaluates a validated [`FaultPlan`] against
/// the simulated clock.
#[derive(Debug, Clone)]
pub struct PlanInjector {
    plan: FaultPlan,
    /// Per-event lifecycle. Windows are single intervals and time is
    /// monotone, so each event moves through the states exactly once.
    state: Vec<EdgeState>,
    last_t: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeState {
    /// The window has not opened yet.
    Pending,
    /// The open edge was emitted; the close edge was not.
    Open,
    /// Both edges were emitted.
    Closed,
}

impl PlanInjector {
    /// Wraps a plan. Call [`FaultPlan::validate`] first; an invalid plan
    /// still cannot panic here, it just produces clamped-nonsense
    /// effects.
    pub fn new(plan: FaultPlan) -> Self {
        let state = vec![EdgeState::Pending; plan.events.len()];
        PlanInjector {
            plan,
            state,
            last_t: f64::NEG_INFINITY,
        }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FaultInjector for PlanInjector {
    fn poll(&mut self, t: f64) -> FaultPoll {
        let mut out = FaultPoll::default();
        for (i, ev) in self.plan.events.iter().enumerate() {
            let w = ev.window;
            if w.is_empty() {
                continue;
            }
            let active = w.contains(t);
            // Open edge: the window is active now, or fell entirely
            // between the previous poll and this one (skipped over by a
            // long round) — emit both edges so the trace still shows it.
            if self.state[i] == EdgeState::Pending
                && (active || (self.last_t < w.start && t >= w.end))
            {
                self.state[i] = EdgeState::Open;
                out.transitions.push(FaultTransition {
                    event_idx: i,
                    slug: ev.kind.slug(),
                    t: w.start,
                    opened: true,
                });
            }
            if self.state[i] == EdgeState::Open && !active && t >= w.end {
                // Close edge (possibly in the same poll as its open).
                self.state[i] = EdgeState::Closed;
                out.transitions.push(FaultTransition {
                    event_idx: i,
                    slug: ev.kind.slug(),
                    t: w.end,
                    opened: false,
                });
            }
            if active {
                out.effects.apply(&ev.kind);
                if let (FaultKind::ReaderRestart { .. }, Some(r)) =
                    (&ev.kind, out.effects.restart.as_mut())
                {
                    r.end = r.end.max(w.end);
                }
            }
        }
        self.last_t = t;
        out
    }

    fn clone_box(&self) -> Box<dyn FaultInjector> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    // Effect composition carries literals through closed-form arithmetic.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::plan::{FaultEvent, Window};

    fn plan(events: Vec<(FaultKind, f64, f64)>) -> FaultPlan {
        let mut p = FaultPlan::empty("test");
        p.events = events
            .into_iter()
            .map(|(kind, start, end)| FaultEvent {
                kind,
                window: Window::new(start, end),
            })
            .collect();
        p
    }

    #[test]
    fn edges_fire_once_with_canonical_times() {
        let mut inj =
            PlanInjector::new(plan(vec![(FaultKind::SelectLoss { prob: 0.5 }, 2.0, 4.0)]));
        assert!(inj.poll(0.0).transitions.is_empty());
        let p = inj.poll(2.5);
        assert_eq!(p.transitions.len(), 1);
        assert!(p.transitions[0].opened);
        assert_eq!(p.transitions[0].t, 2.0);
        assert_eq!(p.effects.select_loss_prob, 0.5);
        // Still open: no new edge.
        assert!(inj.poll(3.0).transitions.is_empty());
        let p = inj.poll(5.0);
        assert_eq!(p.transitions.len(), 1);
        assert!(!p.transitions[0].opened);
        assert_eq!(p.transitions[0].t, 4.0);
        assert!(p.effects.is_clean());
        // Closed forever.
        assert!(inj.poll(6.0).transitions.is_empty());
    }

    #[test]
    fn skipped_window_still_emits_both_edges() {
        let mut inj = PlanInjector::new(plan(vec![(
            FaultKind::QueryRepLoss { prob: 0.9 },
            1.0,
            1.5,
        )]));
        inj.poll(0.0);
        let p = inj.poll(10.0); // one long round skipped straight over it
        assert_eq!(p.transitions.len(), 2);
        assert!(p.transitions[0].opened);
        assert_eq!(p.transitions[0].t, 1.0);
        assert!(!p.transitions[1].opened);
        assert_eq!(p.transitions[1].t, 1.5);
        assert!(p.effects.is_clean());
    }

    #[test]
    fn zero_length_windows_are_noops() {
        let mut inj = PlanInjector::new(plan(vec![(
            FaultKind::ReplyCorruption { prob: 1.0 },
            3.0,
            3.0,
        )]));
        for t in [0.0, 3.0, 4.0, 100.0] {
            let p = inj.poll(t);
            assert!(p.transitions.is_empty());
            assert!(p.effects.is_clean());
        }
    }

    #[test]
    fn overlapping_effects_compose() {
        let mut inj = PlanInjector::new(plan(vec![
            (
                FaultKind::BurstNoise {
                    phase_sigma: 0.3,
                    rss_sigma_db: 1.0,
                },
                0.0,
                10.0,
            ),
            (
                FaultKind::BurstNoise {
                    phase_sigma: 0.2,
                    rss_sigma_db: 0.5,
                },
                5.0,
                10.0,
            ),
            (FaultKind::SelectLoss { prob: 0.5 }, 0.0, 10.0),
            (FaultKind::SelectLoss { prob: 0.5 }, 0.0, 10.0),
            (FaultKind::AntennaOutage { antennas: vec![1] }, 0.0, 10.0),
            (FaultKind::AntennaOutage { antennas: vec![2] }, 0.0, 10.0),
        ]));
        let eff = inj.poll(6.0).effects;
        assert_eq!(eff.phase_sigma_add, 0.5);
        assert_eq!(eff.rss_sigma_db_add, 1.5);
        assert_eq!(eff.select_loss_prob, 0.75); // 1 - 0.5²
        assert!(eff.antenna_out(1) && eff.antenna_out(2));
        assert!(!eff.antenna_out(3));
        assert!(!eff.all_antennas_out);
    }

    #[test]
    fn empty_antenna_list_means_all_ports() {
        let mut inj = PlanInjector::new(plan(vec![(
            FaultKind::AntennaOutage { antennas: vec![] },
            0.0,
            1.0,
        )]));
        let eff = inj.poll(0.5).effects;
        assert!(eff.all_antennas_out);
        assert!(eff.antenna_out(7));
    }

    #[test]
    fn overlapping_restarts_take_latest_end() {
        let mut inj = PlanInjector::new(plan(vec![
            (
                FaultKind::ReaderRestart {
                    preserve_flags: true,
                },
                0.0,
                3.0,
            ),
            (
                FaultKind::ReaderRestart {
                    preserve_flags: false,
                },
                1.0,
                5.0,
            ),
        ]));
        let eff = inj.poll(2.0).effects;
        let r = eff.restart.unwrap();
        assert_eq!(r.end, 5.0);
    }

    #[test]
    fn mute_and_detune_sets_union() {
        let mut inj = PlanInjector::new(plan(vec![
            (FaultKind::TagMute { tags: vec![0, 2] }, 0.0, 1.0),
            (FaultKind::TagMute { tags: vec![2, 4] }, 0.0, 1.0),
            (FaultKind::TagDetune { tags: vec![1] }, 0.0, 1.0),
        ]));
        let eff = inj.poll(0.0).effects;
        assert_eq!(
            eff.muted_tags.iter().copied().collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
        assert!(eff.detuned_tags.contains(&1));
    }

    #[test]
    fn injector_clones_through_the_trait_object() {
        let inj = PlanInjector::new(plan(vec![(FaultKind::SelectLoss { prob: 0.1 }, 0.0, 1.0)]));
        let boxed: Box<dyn FaultInjector> = Box::new(inj);
        let mut copy = boxed.clone();
        assert_eq!(copy.poll(0.5).effects.select_loss_prob, 0.1);
    }
}
