//! Indicator bitmaps over the tag population (§5.3's index-table rows).
//!
//! The bitmask scheduler works on sets of tag indices; with populations up
//! to several hundred tags, packed 64-bit words make the greedy set-cover's
//! inner loop (`|V_i & V|`) a handful of `popcount`s.

use serde::{Deserialize, Serialize};

/// A fixed-length bitmap over tag indices `0..len`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zeros bitmap over `len` positions.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A bitmap with the given indices set.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut b = Bitmap::zeros(len);
        for &i in indices {
            b.set(i);
        }
        b
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Tests bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `|self & other|` — the greedy gain numerator (Eqn. 13).
    pub fn and_count(&self, other: &Bitmap) -> usize {
        assert_eq!(self.len, other.len, "bitmap lengths differ");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place `self &= !other` — the Step-3 update `V = V − (V & V_j)`.
    pub fn subtract(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap lengths differ");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place union.
    pub fn union(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap lengths differ");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterates the set indices in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::zeros(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn and_count_and_subtract() {
        let a = Bitmap::from_indices(100, &[1, 5, 64, 99]);
        let b = Bitmap::from_indices(100, &[5, 64, 70]);
        assert_eq!(a.and_count(&b), 2);
        let mut v = a.clone();
        v.subtract(&b);
        assert_eq!(v.ones().collect::<Vec<_>>(), vec![1, 99]);
    }

    #[test]
    fn union_and_zero() {
        let mut a = Bitmap::from_indices(10, &[0]);
        let b = Bitmap::from_indices(10, &[9]);
        a.union(&b);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![0, 9]);
        assert!(!a.is_zero());
        assert!(Bitmap::zeros(10).is_zero());
    }

    #[test]
    fn ones_iterates_in_order_across_words() {
        let idx = [0usize, 1, 63, 64, 65, 127, 128, 199];
        let b = Bitmap::from_indices(200, &idx);
        assert_eq!(b.ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Bitmap::zeros(10).set(10);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn length_mismatch_panics() {
        Bitmap::zeros(10).and_count(&Bitmap::zeros(11));
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::zeros(0);
        assert!(b.is_empty());
        assert!(b.is_zero());
        assert_eq!(b.ones().count(), 0);
    }
}
