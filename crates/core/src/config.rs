//! Tagwatch middleware configuration (§6 "Parameter choice" plus the §5
//! configuration file of concerned tags).

use crate::cover::CoverConfig;
use crate::gmm::GmmConfig;
use serde::{Deserialize, Serialize};
use tagwatch_gen2::{CostModel, Epc};

/// Which detector family Phase I runs (Fig. 12's four contenders).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DetectorKind {
    /// The paper's design: per-link phase mixtures.
    PhaseMog,
    /// RSS mixtures.
    RssMog,
    /// Naive phase differencing with the given jump threshold (radians).
    PhaseDiff(f64),
    /// Naive RSS differencing with the given jump threshold (dB).
    RssDiff(f64),
}

/// How Phase II schedules target tags (for the §7 baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingMode {
    /// Greedy set-cover bitmasks with the naive fallback (the paper's
    /// Tagwatch).
    Tagwatch,
    /// One full-EPC mask per target (the paper's "naive rate-adaptive"
    /// baseline).
    Naive,
    /// No selectivity: Phase II reads everyone (the "reading all"
    /// baseline — with this, Tagwatch degenerates to a plain reader).
    ReadAll,
}

/// Full middleware configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TagwatchConfig {
    /// Length of Phase II in seconds (paper: fixed 5 s; Phase I's length
    /// is dynamic — one full inventory).
    pub phase2_len: f64,
    /// Per-antenna dwell for Phase-II AISpecs (tracking mode: continuous
    /// dual-target reading within each dwell). `None` = one inventory
    /// round per AISpec per antenna, the paper's default.
    pub phase2_dwell: Option<f64>,
    /// Request truncated EPC replies (Gen2 Truncate) in Phase II where
    /// legal (prefix masks). Shortens successful slots for covered tags —
    /// an optimisation the paper's Select machinery supports but does not
    /// evaluate. Off by default for parity with the paper.
    pub truncate_phase2: bool,
    /// Mixture parameters (α, K, ξ, …).
    pub gmm: GmmConfig,
    /// Detector family for Phase I.
    pub detector: DetectorKind,
    /// Minimum per-window motion votes to declare a tag mobile.
    pub min_votes: usize,
    /// Minimum fraction of a tag's window readings that must be motion
    /// evidence (suppresses one-off false positives on heavily read tags).
    pub mobile_vote_fraction: f64,
    /// If more than this fraction of present tags are targets, fall back
    /// to reading all (§3 "Scope": rate adaptation stops paying off past
    /// ~20% mobile).
    pub mobile_ceiling: f64,
    /// Tags always scheduled regardless of motion (§5's configuration
    /// file).
    pub concerned: Vec<Epc>,
    /// Cost model pricing bitmasks (fit from the reader, or the paper's
    /// published parameters).
    pub cost: CostModel,
    /// Candidate-mask generation bounds.
    pub cover: CoverConfig,
    /// Scheduling strategy.
    pub scheduling: SchedulingMode,
    /// Antenna ports driven each phase.
    pub antennas: Vec<u8>,
    /// Modeled middleware compute gap between Phase I and Phase II,
    /// seconds. The *measured* compute time is reported per cycle
    /// (Fig. 17); this fixed value is what advances the simulation clock,
    /// keeping runs deterministic.
    pub schedule_gap: f64,
    /// Tags unseen for this long are evicted from history and their
    /// immobility models dropped (§4.3 "reading exceptions").
    pub eviction_timeout: f64,
    /// Per-tag history retention.
    pub history_capacity: usize,
}

impl Default for TagwatchConfig {
    fn default() -> Self {
        TagwatchConfig {
            phase2_len: 5.0,
            phase2_dwell: None,
            truncate_phase2: false,
            gmm: GmmConfig::phase_defaults(),
            detector: DetectorKind::PhaseMog,
            min_votes: 1,
            mobile_vote_fraction: 0.25,
            mobile_ceiling: 0.2,
            concerned: Vec::new(),
            cost: CostModel::paper(),
            cover: CoverConfig::default(),
            scheduling: SchedulingMode::Tagwatch,
            antennas: vec![1],
            schedule_gap: 3e-3,
            eviction_timeout: 60.0,
            history_capacity: 512,
        }
    }
}

impl TagwatchConfig {
    /// Paper defaults with the given antennas.
    pub fn with_antennas(antennas: Vec<u8>) -> Self {
        TagwatchConfig {
            antennas,
            ..Default::default()
        }
    }

    /// Declares concerned tags (the §5 configuration file).
    pub fn with_concerned(mut self, epcs: Vec<Epc>) -> Self {
        self.concerned = epcs;
        self
    }

    /// Switches the scheduling baseline.
    pub fn with_scheduling(mut self, mode: SchedulingMode) -> Self {
        self.scheduling = mode;
        self
    }

    /// Basic sanity validation.
    pub fn validate(&self) -> Result<(), String> {
        if self.phase2_len <= 0.0 {
            return Err(format!(
                "phase2_len must be positive, got {}",
                self.phase2_len
            ));
        }
        if !(0.0..=1.0).contains(&self.mobile_ceiling) {
            return Err(format!(
                "mobile_ceiling must be in [0,1], got {}",
                self.mobile_ceiling
            ));
        }
        if self.antennas.is_empty() {
            return Err("at least one antenna required".into());
        }
        if self.history_capacity == 0 {
            return Err("history_capacity must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact literals that the code stores or copies
    // untouched; approximate comparison would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn defaults_match_paper_section_6() {
        let cfg = TagwatchConfig::default();
        assert_eq!(cfg.phase2_len, 5.0);
        assert_eq!(cfg.gmm.alpha, 0.001);
        assert_eq!(cfg.gmm.k_max, 8);
        assert_eq!(cfg.gmm.xi, 3.0);
        assert_eq!(cfg.mobile_ceiling, 0.2);
        assert!((cfg.cost.tau0 - 19e-3).abs() < 1e-12);
        assert!((cfg.cost.tau_bar - 0.18e-3).abs() < 1e-12);
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let cfg = TagwatchConfig {
            phase2_len: 0.0,
            ..TagwatchConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = TagwatchConfig {
            mobile_ceiling: 1.5,
            ..TagwatchConfig::default()
        };
        assert!(cfg.validate().is_err());

        let mut cfg = TagwatchConfig::default();
        cfg.antennas.clear();
        assert!(cfg.validate().is_err());

        let cfg = TagwatchConfig {
            history_capacity: 0,
            ..TagwatchConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builders() {
        let cfg = TagwatchConfig::with_antennas(vec![1, 2])
            .with_concerned(vec![Epc::from_bits(5)])
            .with_scheduling(SchedulingMode::Naive);
        assert_eq!(cfg.antennas, vec![1, 2]);
        assert_eq!(cfg.concerned.len(), 1);
        assert_eq!(cfg.scheduling, SchedulingMode::Naive);
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = TagwatchConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: TagwatchConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
