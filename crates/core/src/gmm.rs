//! The self-learning Gaussian mixture immobility model (§4.2 of the paper).
//!
//! One mixture models the immobility of one tag *on one RF link* (antenna ×
//! channel — hardware offsets differ per link, so phases from different
//! links belong to different distributions; see `motion.rs`). Each mode is
//! a [`Gaussian`] with a weight; modes are searched in priority order
//! `r = w/δ`, matched with the `ξδ` rule, and updated with the paper's
//! Eqn. 11. Unmatched observations spawn a new low-priority mode, evicting
//! the lowest-priority one when the stack is full.
//!
//! ## Deviations from the paper's text (documented in DESIGN.md §5)
//!
//! * `ρ = α·η(θ)` is a density and can exceed 1 for small δ; we clamp
//!   ρ to `[0, 1]` and, while a mode is young, floor the adaptation rate at
//!   `1/(count+1)` so the mode's mean/σ converge to sample statistics
//!   quickly (the standard Kaewtrakulpong–Bowden refinement). The *weight*
//!   still grows at the paper's `α` per observation, which is what produces
//!   the Fig. 14 learning-curve timescale.
//! * A new mode's σ must be finite enough that matching is meaningful; the
//!   paper's "large δ (e.g. 2π)" would match every observation forever.
//!   We default to 0.3 rad (≈3× receiver phase noise) and floor σ at
//!   0.05 rad so matching bands never collapse to zero.
//! * Classification: an observation is evidence of *immobility* only if the
//!   matched mode is established (weight ≥ `established_weight`). A match
//!   against a freshly spawned mode is not — otherwise every second
//!   observation of a moving tag would count as stationary.

use crate::gaussian::Gaussian;
use serde::{Deserialize, Serialize};

/// Tunables of the mixture (paper defaults from §6 "Parameter choice").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GmmConfig {
    /// Maximum number of modes `K` (paper: 8).
    pub k_max: usize,
    /// Learning rate `α` (paper: 0.001).
    pub alpha: f64,
    /// Match threshold `ξ` in sigmas (paper: 3.0).
    pub xi: f64,
    /// Initial σ of a freshly spawned mode.
    pub sigma_init: f64,
    /// Lower bound on σ (keeps the match band from collapsing).
    pub sigma_floor: f64,
    /// Initial weight of a freshly spawned mode (paper: 0.0001).
    pub weight_init: f64,
    /// Normalized weight share at which a mature mode counts as
    /// established immobility evidence.
    ///
    /// A mode's weight divided by the mixture's total weight estimates
    /// the fraction of observations it explains (its *dwell share*) —
    /// and, unlike the raw weight, the share is meaningful long before
    /// the weights converge. A stationary tag concentrates its phase in
    /// 1–4 modes (share ≥ 0.25 each), while a mobile tag spreads over
    /// ≥ 2π/(2ξσ) ≈ 8+ regions (share ≤ 0.15).
    pub established_weight: f64,
    /// Minimum matched observations before a mode may establish. Keeps a
    /// mover's short-lived "tracker" modes (briefly high share while the
    /// sweep lingers in one band) from counting as immobility. ~50
    /// observations also sets the Fig. 14 learning-curve timescale (the
    /// paper reaches 70% accuracy at 67 readings).
    pub established_count: u64,
    /// Upper bound on σ: a mode broader than this no longer describes
    /// immobility (it would swallow a sweeping mobile phase).
    pub sigma_max: f64,
    /// Observations during which a young mode converges its mean/σ at the
    /// quick-start rate `1/(count+1)`. Past this, adaptation falls back to
    /// the paper's slow `ρ = α·η` — deliberately too slow to *track* a
    /// moving tag's sweeping phase, which is what keeps movers'
    /// short-lived modes from establishing.
    pub young_count: u64,
}

impl GmmConfig {
    /// Paper defaults for phase modelling.
    pub fn phase_defaults() -> Self {
        GmmConfig {
            k_max: 8,
            alpha: 0.001,
            xi: 3.0,
            // σ bounds bracket the R420's ~0.1 rad phase jitter: the floor
            // keeps the ξδ band from collapsing below the noise level
            // (false positives on static tags), the cap keeps a mode from
            // ballooning to swallow a mobile tag's phase sweep (a circle
            // then needs ≥ 2π/(2ξσ_max) ≈ 6 modes to tile, each below the
            // established-weight dwell share).
            sigma_init: 0.2,
            sigma_floor: 0.1,
            weight_init: 1e-4,
            established_weight: 0.2,
            established_count: 50,
            sigma_max: 0.2,
            young_count: 20,
        }
    }

    /// Defaults for RSS modelling (dB scale instead of radians).
    pub fn rss_defaults() -> Self {
        GmmConfig {
            sigma_init: 2.0,
            sigma_floor: 1.0,
            sigma_max: 3.0,
            ..Self::phase_defaults()
        }
    }
}

impl Default for GmmConfig {
    fn default() -> Self {
        Self::phase_defaults()
    }
}

/// One mode of the mixture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mode {
    /// The Gaussian.
    pub g: Gaussian,
    /// Mixture weight `w`.
    pub weight: f64,
    /// Observations matched so far (drives the quick-start rate).
    pub count: u64,
}

impl Mode {
    /// Priority `r = w / δ` — high weight, low deviation first (§4.2).
    #[inline]
    pub fn priority(&self) -> f64 {
        self.weight / self.g.sigma.max(1e-9)
    }

    /// Whether this mode is established immobility evidence, given the
    /// mixture's total weight (for share normalization).
    #[inline]
    pub fn established(&self, cfg: &GmmConfig, total_weight: f64) -> bool {
        self.count >= cfg.established_count
            && self.weight / total_weight.max(1e-12) >= cfg.established_weight
    }
}

/// The verdict for one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Observation {
    /// Matched an established mode: consistent with immobility (Case 1).
    Stationary,
    /// Matched a young, not-yet-established mode: learning in progress,
    /// treated as motion evidence for detection purposes.
    Learning,
    /// No mode matched: motion evidence; a new mode was spawned (Case 2).
    Moving,
}

impl Observation {
    /// Whether this observation counts as motion evidence.
    #[inline]
    pub fn is_motion(self) -> bool {
        !matches!(self, Observation::Stationary)
    }
}

/// A self-learning mixture over one scalar channel (phase or RSS) of one
/// RF link.
///
/// ```
/// use tagwatch::{Gmm, GmmConfig, Observation};
///
/// let mut gmm = Gmm::phase(GmmConfig::phase_defaults());
/// // A stationary tag's phase readings cluster; after enough history the
/// // cluster establishes as immobility…
/// for _ in 0..100 {
///     gmm.observe(1.0);
/// }
/// assert_eq!(gmm.classify(1.02), Observation::Stationary);
/// // …while a displaced phase (≈1 cm at 920 MHz) is motion evidence.
/// assert!(gmm.classify(1.0 + 0.4).is_motion());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gmm {
    modes: Vec<Mode>,
    cfg: GmmConfig,
    circular: bool,
}

impl Gmm {
    /// A phase mixture (circular) with the given config.
    pub fn phase(cfg: GmmConfig) -> Self {
        Gmm {
            modes: Vec::new(),
            cfg,
            circular: true,
        }
    }

    /// An RSS mixture (linear) with the given config.
    pub fn rss(cfg: GmmConfig) -> Self {
        Gmm {
            modes: Vec::new(),
            cfg,
            circular: false,
        }
    }

    /// The modes, unsorted (for inspection/tests).
    pub fn modes(&self) -> &[Mode] {
        &self.modes
    }

    /// The configuration.
    pub fn config(&self) -> &GmmConfig {
        &self.cfg
    }

    /// Index of the highest-priority mode matching `x`, if any.
    fn find_match(&self, x: f64) -> Option<usize> {
        let mut order: Vec<usize> = (0..self.modes.len()).collect();
        order.sort_by(|&a, &b| {
            self.modes[b]
                .priority()
                .partial_cmp(&self.modes[a].priority())
                .expect("priorities are finite") // lint:allow(panic-policy): mode priorities are finite floats
        });
        order
            .into_iter()
            .find(|&i| self.modes[i].g.matches(x, self.cfg.xi))
    }

    /// Classifies `x` without updating the model: would it be considered
    /// consistent with the learned immobility?
    pub fn classify(&self, x: f64) -> Observation {
        let total = self.total_weight();
        match self.find_match(x) {
            Some(i) if self.modes[i].established(&self.cfg, total) => Observation::Stationary,
            Some(_) => Observation::Learning,
            None => Observation::Moving,
        }
    }

    /// Observes `x`: classify, then update the mixture (Eqn. 11 / Case 2).
    pub fn observe(&mut self, x: f64) -> Observation {
        let total = self.total_weight();
        match self.find_match(x) {
            Some(idx) => {
                let verdict = if self.modes[idx].established(&self.cfg, total) {
                    Observation::Stationary
                } else {
                    Observation::Learning
                };
                let alpha = self.cfg.alpha;
                // Weight updates for all modes (Eqn. 11, first line +
                // the decay of unmatched modes).
                for (i, m) in self.modes.iter_mut().enumerate() {
                    if i == idx {
                        m.weight = (1.0 - alpha) * m.weight + alpha;
                    } else {
                        m.weight *= 1.0 - alpha;
                    }
                }
                // Mean/σ update of the matched mode with quick-start rate.
                let m = &mut self.modes[idx];
                m.count += 1;
                let rho_paper = (alpha * m.g.density(x)).clamp(0.0, 1.0);
                // Quick-start only while young: afterwards the slow paper
                // rate applies, so a mode cannot follow a sweeping phase.
                let rho = if m.count <= self.cfg.young_count {
                    rho_paper.max(1.0 / (m.count as f64 + 1.0)).min(1.0)
                } else {
                    rho_paper
                };
                m.g.nudge_mean(x, rho);
                let dev = m.g.deviation(x);
                let var = (1.0 - rho) * m.g.sigma * m.g.sigma + rho * dev * dev;
                m.g.sigma = var.sqrt().clamp(self.cfg.sigma_floor, self.cfg.sigma_max);
                verdict
            }
            None => {
                self.spawn_mode(x);
                Observation::Moving
            }
        }
    }

    /// Case 2: push a fresh mode, evicting the lowest-priority one when the
    /// stack is full.
    fn spawn_mode(&mut self, x: f64) {
        let g = if self.circular {
            Gaussian::phase(x, self.cfg.sigma_init)
        } else {
            Gaussian::linear(x, self.cfg.sigma_init)
        };
        let mode = Mode {
            g,
            weight: self.cfg.weight_init,
            count: 1,
        };
        if self.modes.len() < self.cfg.k_max {
            self.modes.push(mode);
        } else {
            let worst = (0..self.modes.len())
                .min_by(|&a, &b| {
                    self.modes[a]
                        .priority()
                        .partial_cmp(&self.modes[b].priority())
                        .expect("priorities are finite") // lint:allow(panic-policy): mode priorities are finite floats
                })
                .expect("k_max > 0 so modes is non-empty"); // lint:allow(panic-policy): k_max >= 1 keeps modes non-empty
            self.modes[worst] = mode;
        }
    }

    /// Batch-trains on a history slice (used by the Fig. 14 learning-curve
    /// experiment and for re-seeding after long absences).
    pub fn train(&mut self, samples: &[f64]) {
        for &x in samples {
            self.observe(x);
        }
    }

    /// Total weight across modes (diagnostics; bounded by k_max).
    pub fn total_weight(&self) -> f64 {
        self.modes.iter().map(|m| m.weight).sum()
    }

    /// The currently established modes.
    pub fn established_modes(&self) -> impl Iterator<Item = &Mode> {
        let total = self.total_weight();
        self.modes
            .iter()
            .filter(move |m| m.established(&self.cfg, total))
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::TAU;
    use tagwatch_rf::sample_normal;

    fn noisy_cluster(rng: &mut StdRng, center: f64, sigma: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| tagwatch_rf::wrap_2pi(sample_normal(rng, center, sigma)))
            .collect()
    }

    #[test]
    fn first_observation_is_moving_then_learns() {
        let mut gmm = Gmm::phase(GmmConfig::phase_defaults());
        assert_eq!(gmm.observe(1.0), Observation::Moving);
        // Subsequent identical observations match the young mode…
        assert_eq!(gmm.observe(1.0), Observation::Learning);
        // …and after enough matches the mode establishes.
        let mut verdict = Observation::Learning;
        for _ in 0..400 {
            verdict = gmm.observe(1.0);
        }
        assert_eq!(verdict, Observation::Stationary);
    }

    #[test]
    fn establishment_time_matches_alpha() {
        // A sole mode has share 1.0 from the start, so establishment is
        // gated by the maturity count (50) — the Fig. 14 timescale.
        let cfg = GmmConfig::phase_defaults();
        let mut gmm = Gmm::phase(cfg);
        let mut first_established = None;
        for k in 0..1000 {
            if gmm.observe(2.0) == Observation::Stationary {
                first_established = Some(k);
                break;
            }
        }
        let k = first_established.expect("must establish");
        assert!((45..60).contains(&k), "established after {k} observations");
    }

    #[test]
    fn stationary_tag_with_noise_establishes_one_mode() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples = noisy_cluster(&mut rng, 3.0, 0.1, 500);
        let mut gmm = Gmm::phase(GmmConfig::phase_defaults());
        gmm.train(&samples);
        // After training, a fresh in-cluster observation is Stationary.
        assert_eq!(gmm.classify(3.05), Observation::Stationary);
        // One dominant mode with mean ≈ 3, σ ≈ noise level.
        let top = gmm
            .modes()
            .iter()
            .max_by(|a, b| a.weight.partial_cmp(&b.weight).unwrap())
            .unwrap();
        assert!((top.g.mean - 3.0).abs() < 0.1, "mean {}", top.g.mean);
        assert!(top.g.sigma < 0.2, "sigma {}", top.g.sigma);
    }

    #[test]
    fn displaced_phase_is_moving() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut gmm = Gmm::phase(GmmConfig::phase_defaults());
        gmm.train(&noisy_cluster(&mut rng, 1.0, 0.08, 300));
        // A 1 cm displacement at λ ≈ 0.325 m shifts phase by ≈ 0.39 rad —
        // outside the established mode's ξδ band. (It may graze a junk
        // mode spawned by a training outlier, which is still motion
        // evidence — only Stationary clears the tag.)
        assert!(gmm.classify(1.0 + 0.39).is_motion());
    }

    #[test]
    fn multipath_learns_multiple_modes() {
        // A person alternately present/absent creates two phase modes; both
        // should establish and both should classify as stationary (Fig. 8).
        let mut rng = StdRng::seed_from_u64(3);
        let a = noisy_cluster(&mut rng, 1.0, 0.08, 400);
        let b = noisy_cluster(&mut rng, 2.2, 0.08, 400);
        let mut gmm = Gmm::phase(GmmConfig::phase_defaults());
        for i in 0..400 {
            gmm.observe(a[i]);
            gmm.observe(b[i]);
        }
        assert_eq!(gmm.classify(1.0), Observation::Stationary);
        assert_eq!(gmm.classify(2.2), Observation::Stationary);
        assert_eq!(gmm.classify(4.0), Observation::Moving);
        let established = gmm.established_modes().count();
        assert!(established >= 2, "established {established}");
    }

    #[test]
    fn wraparound_cluster_is_single_mode() {
        // Phases straddling 0/2π must not split into two modes (§4.3).
        let mut rng = StdRng::seed_from_u64(4);
        let samples = noisy_cluster(&mut rng, 0.0, 0.08, 500);
        let mut gmm = Gmm::phase(GmmConfig::phase_defaults());
        gmm.train(&samples);
        assert_eq!(gmm.classify(TAU - 0.05), Observation::Stationary);
        assert_eq!(gmm.classify(0.05), Observation::Stationary);
        let established = gmm.established_modes().count();
        assert_eq!(established, 1, "wrap cluster split into modes");
    }

    #[test]
    fn stack_is_bounded_and_evicts_lowest_priority() {
        let mut gmm = Gmm::phase(GmmConfig {
            k_max: 3,
            ..GmmConfig::phase_defaults()
        });
        // Establish one strong mode.
        for _ in 0..300 {
            gmm.observe(1.0);
        }
        // Flood with scattered one-off observations.
        for k in 0..20 {
            gmm.observe(tagwatch_rf::wrap_2pi(2.0 + 0.8 * k as f64));
        }
        assert!(gmm.modes().len() <= 3);
        // The strong mode survives the churn.
        assert_eq!(gmm.classify(1.0), Observation::Stationary);
    }

    #[test]
    fn outdated_modes_decay() {
        // §4.3 "Why do we model immobility?": after a tag moves to a new
        // place, the old position's mode decays as the new one takes over.
        let cfg = GmmConfig {
            alpha: 0.01, // faster decay to keep the test short
            established_weight: 0.05,
            ..GmmConfig::phase_defaults()
        };
        let mut gmm = Gmm::phase(cfg);
        for _ in 0..200 {
            gmm.observe(1.0);
        }
        let w_old_before = gmm
            .modes()
            .iter()
            .find(|m| (m.g.mean - 1.0).abs() < 0.2)
            .unwrap()
            .weight;
        for _ in 0..400 {
            gmm.observe(4.0);
        }
        let old = gmm.modes().iter().find(|m| (m.g.mean - 1.0).abs() < 0.2);
        // A `None` here means the old mode was already evicted — also fine.
        if let Some(m) = old {
            assert!(m.weight < w_old_before * 0.2, "old mode decayed");
        }
        assert_eq!(gmm.classify(4.0), Observation::Stationary);
    }

    #[test]
    fn rss_mixture_is_linear() {
        let mut gmm = Gmm::rss(GmmConfig::rss_defaults());
        for _ in 0..400 {
            gmm.observe(-50.0);
        }
        assert_eq!(gmm.classify(-50.5), Observation::Stationary);
        assert_eq!(gmm.classify(-30.0), Observation::Moving);
    }

    #[test]
    fn sigma_floor_holds() {
        let mut gmm = Gmm::phase(GmmConfig::phase_defaults());
        // Identical observations would drive σ → 0 without the floor.
        for _ in 0..500 {
            gmm.observe(1.0);
        }
        for m in gmm.modes() {
            assert!(m.g.sigma >= 0.1);
        }
        // And the match band stays usable: tiny jitter still matches.
        assert_eq!(gmm.classify(1.05), Observation::Stationary);
    }

    #[test]
    fn observation_motion_flag() {
        assert!(!Observation::Stationary.is_motion());
        assert!(Observation::Learning.is_motion());
        assert!(Observation::Moving.is_motion());
    }
}
