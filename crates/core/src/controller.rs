//! The two-phase reading controller — Tagwatch's main loop (§3, Fig. 5/6).
//!
//! Each cycle:
//!
//! 1. **Phase I — motion assessment.** Execute a read-all ROSpec once (a
//!    short full inventory), feed every report into the per-tag detectors,
//!    and classify each tag mobile/stationary.
//! 2. **Target schedule.** Union the mobile tags with the user's concerned
//!    tags, run the §5 cover search (with the §3 scope guard), and compile
//!    a selective ROSpec.
//! 3. **Phase II — selective reading.** Execute the selective spec
//!    repeatedly for the configured interval (default 5 s). Phase-II
//!    reports also feed the detectors — this is what lets a newly learned
//!    multipath mode establish within one cycle (§4.3 "no cold start").
//!
//! Readings from both phases land in the history database; tags absent
//! beyond the eviction timeout lose their models (§4.3 "reading
//! exceptions").
//!
//! Every cycle also emits structured telemetry (see README.md §
//! Telemetry): a simulated-clock `cycle` span with nested `phase1` /
//! `phase2` spans, a wall-clock `cycle.compute` span (whose measured
//! duration *is* [`CycleReport::compute_time`] — the Fig. 17 schedule
//! cost), plus counters and duration histograms. With no sink installed
//! on the controller's [`Telemetry`] handle, all of it is a handful of
//! relaxed atomic loads per cycle.

use crate::config::{DetectorKind, TagwatchConfig};
use crate::cover::CoverPlan;
use crate::history::History;
use crate::motion::{AnyDetector, DiffDetector, MogDetector, MotionAssessor};
use crate::scheduler::{build_schedule, ReadAllReason, ScheduleMode};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tagwatch_gen2::Epc;
use tagwatch_reader::{LlrpError, Reader, RoSpec, TagReport};
use tagwatch_telemetry::{Telemetry, WorkCounters};

/// A serializable snapshot of the middleware's learned state: per-tag
/// immobility models, reading history, and the cycle counter.
///
/// Deployments persist this across restarts so the system comes back with
/// warm models instead of re-learning every tag's multipath profile (a
/// "quick start" beyond the paper's: §4.3 covers cold-starting a single
/// new mode, not a whole-process restart).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControllerSnapshot {
    /// The configuration the snapshot was taken under.
    pub config: TagwatchConfig,
    /// Per-tag assessor state.
    pub assessors: Vec<(Epc, MotionAssessor)>,
    /// Reading history.
    pub history: History,
    /// Cycle counter.
    pub cycle: u64,
}

/// Everything one cycle produced — the figure harness consumes these.
#[derive(Debug, Clone)]
pub struct CycleReport {
    /// Cycle counter (0-based).
    pub cycle: u64,
    /// Absolute cycle start time.
    pub t_start: f64,
    /// Absolute cycle end time.
    pub t_end: f64,
    /// The census Phase I scheduled against (sorted EPCs of tags seen in
    /// Phase I plus concerned tags).
    pub census: Vec<Epc>,
    /// Tags assessed as mobile this cycle.
    pub mobile: Vec<Epc>,
    /// Scheduled targets (mobile ∪ concerned).
    pub targets: Vec<Epc>,
    /// The Phase-II cover plan, if a selective schedule ran.
    pub plan: Option<CoverPlan>,
    /// Selective or read-all Phase II.
    pub mode: ScheduleMode,
    /// Why Phase II read everyone, when it did.
    pub read_all_reason: Option<ReadAllReason>,
    /// Phase-I reports.
    pub phase1: Vec<TagReport>,
    /// Phase-II reports.
    pub phase2: Vec<TagReport>,
    /// Phase-I duration (seconds of air time).
    pub phase1_duration: f64,
    /// Phase-II duration.
    pub phase2_duration: f64,
    /// Measured wall-clock compute time of assessment + cover search —
    /// the Fig. 17 "schedule cost".
    pub compute_time: f64,
    /// Tags evicted this cycle for long absence.
    pub evicted: Vec<Epc>,
}

/// The Tagwatch middleware.
pub struct Controller {
    cfg: TagwatchConfig,
    assessors: BTreeMap<Epc, MotionAssessor>,
    history: History,
    cycle: u64,
    telemetry: Telemetry,
    /// Deterministic work accounting (mixture-model updates), flushed
    /// as `perf.work.*` counters once per cycle. Deliberately not part
    /// of [`ControllerSnapshot`]: work counts describe a run, not the
    /// learned state.
    work: WorkCounters,
    /// High-water marks for the per-phase report buffers: each cycle's
    /// `phase1`/`phase2` vectors are owned by its [`CycleReport`], so
    /// they cannot be recycled outright, but pre-sizing them to the
    /// largest phase seen so far turns the steady-state growth pattern
    /// into a single allocation per phase.
    phase1_cap: usize,
    phase2_cap: usize,
}

impl Controller {
    /// Builds a controller. Panics on an invalid configuration (validate
    /// with [`TagwatchConfig::validate`] first if the config is untrusted).
    pub fn new(cfg: TagwatchConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid Tagwatch configuration: {e}"); // lint:allow(panic-policy): documented contract: constructor panics on invalid config
        }
        let history = History::new(cfg.history_capacity);
        Controller {
            cfg,
            assessors: BTreeMap::new(),
            history,
            cycle: 0,
            telemetry: Telemetry::global().clone(),
            work: WorkCounters::default(),
            phase1_cap: 0,
            phase2_cap: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TagwatchConfig {
        &self.cfg
    }

    /// Replaces the telemetry handle (the default is the process-wide
    /// [`Telemetry::global`] handle). Builder form; see
    /// [`Controller::set_telemetry`] for in-place replacement.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry handle in place (used by tests that need an
    /// isolated in-memory sink instead of the global handle).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The telemetry handle this controller emits to.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Switches the Phase-II scheduling strategy at runtime (used by
    /// experiments to warm detection up under one mode and measure under
    /// another; operators could use it to A/B scheduling live).
    pub fn set_scheduling(&mut self, mode: crate::config::SchedulingMode) {
        self.cfg.scheduling = mode;
    }

    /// Captures the middleware's learned state for persistence.
    pub fn snapshot(&self) -> ControllerSnapshot {
        let mut assessors: Vec<(Epc, MotionAssessor)> = self
            .assessors
            .iter()
            .map(|(e, a)| (*e, a.clone()))
            .collect();
        assessors.sort_unstable_by_key(|(e, _)| *e);
        ControllerSnapshot {
            config: self.cfg.clone(),
            assessors,
            history: self.history.clone(),
            cycle: self.cycle,
        }
    }

    /// Rebuilds a controller from a snapshot — warm models, warm history.
    pub fn restore(snapshot: ControllerSnapshot) -> Self {
        if let Err(e) = snapshot.config.validate() {
            panic!("invalid Tagwatch configuration in snapshot: {e}"); // lint:allow(panic-policy): documented contract: restore panics on invalid config
        }
        Controller {
            cfg: snapshot.config,
            assessors: snapshot.assessors.into_iter().collect(),
            history: snapshot.history,
            cycle: snapshot.cycle,
            telemetry: Telemetry::global().clone(),
            work: WorkCounters::default(),
            phase1_cap: 0,
            phase2_cap: 0,
        }
    }

    /// The history database.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Number of tags with live immobility models.
    pub fn tracked_tags(&self) -> usize {
        self.assessors.len()
    }

    fn make_assessor(&self) -> MotionAssessor {
        let det: AnyDetector = match self.cfg.detector {
            DetectorKind::PhaseMog => MogDetector::phase_with(self.cfg.gmm).into(),
            DetectorKind::RssMog => MogDetector::rss_with(self.cfg.gmm).into(),
            DetectorKind::PhaseDiff(th) => DiffDetector::phase(th).into(),
            DetectorKind::RssDiff(th) => DiffDetector::rss(th).into(),
        };
        let mut a = MotionAssessor::with_detector(det);
        a.min_votes = self.cfg.min_votes;
        a.min_fraction = self.cfg.mobile_vote_fraction;
        a
    }

    /// Feeds one report into its tag's assessor (creating it on first
    /// sight) and the history database.
    fn ingest(&mut self, report: &TagReport) {
        if !self.assessors.contains_key(&report.epc) {
            let a = self.make_assessor();
            self.assessors.insert(report.epc, a);
        }
        if let Some(a) = self.assessors.get_mut(&report.epc) {
            a.feed(&report.rf);
            // One mixture update per reading fed to a MoG detector (the
            // differencing baselines don't maintain mixtures).
            if matches!(
                self.cfg.detector,
                DetectorKind::PhaseMog | DetectorKind::RssMog
            ) {
                self.work.gmm_updates += 1;
            }
        }
        self.history.record(report);
    }

    /// Runs one full two-phase cycle against `reader`.
    pub fn run_cycle(&mut self, reader: &mut Reader) -> Result<CycleReport, LlrpError> {
        let t_start = reader.now();
        let cycle = self.cycle;
        self.cycle += 1;
        let tel = self.telemetry.clone();
        // The controller's handle is authoritative for the whole
        // cycle → phase → round tree: push it into the reader so round
        // spans land in the same stream even when the embedder installed
        // a private handle on the controller only. (Both default to the
        // global handle, which masked a dropped-rounds bug whenever a
        // private handle was used.)
        reader.set_telemetry(tel.clone());
        let cycle_span = tel.sim_span("cycle", t_start);

        // ---- Phase I: read all, assess motion -------------------------
        // The assessment window spans from the *previous* assessment to
        // now, so Phase-II evidence (both of targets and collateral tags)
        // counts — this is the "history-based" assessment of §3 and what
        // lets a mis-scheduled stationary tag drop out after one cycle.
        let phase1_span = tel.sim_span("phase1", t_start);
        let phase1_spec = RoSpec::read_all((cycle as u32) << 1, self.cfg.antennas.clone());
        let mut phase1 = Vec::with_capacity(self.phase1_cap);
        reader.execute_into(&phase1_spec, &mut phase1)?;
        self.phase1_cap = self.phase1_cap.max(phase1.len());
        let t_phase1_end = reader.now();
        phase1_span.end(t_phase1_end);
        for r in &phase1 {
            self.ingest(r);
        }

        // ---- Assessment + schedule (the Fig. 17 compute gap) ----------
        // The telemetry timer is the measurement: its wall-clock duration
        // becomes both the `cycle.compute` span and `compute_time`.
        let compute_span = tel.timed("cycle.compute");

        let mut census: Vec<Epc> = phase1.iter().map(|r| r.epc).collect();
        census.extend(self.cfg.concerned.iter().copied());
        census.sort_unstable();
        census.dedup();

        let mobile: Vec<Epc> = census
            .iter()
            .filter(|e| self.assessors.get(e).is_some_and(MotionAssessor::assess))
            .copied()
            .collect();

        let mut targets: Vec<Epc> = mobile.clone();
        targets.extend(self.cfg.concerned.iter().copied());
        targets.sort_unstable();
        targets.dedup();

        let target_idxs: Vec<usize> = targets
            .iter()
            .map(|t| census.binary_search(t).expect("targets ⊆ census")) // lint:allow(panic-policy): targets are drawn from census, so the search succeeds
            .collect();

        let schedule = build_schedule(&census, &target_idxs, &self.cfg, (cycle as u32) << 1 | 1);
        let compute_time = compute_span.finish();
        schedule.record(&tel);

        // Assessment is done: open the next window.
        for assessor in self.assessors.values_mut() {
            assessor.begin_cycle();
        }

        // Advance the simulated clock by the *modeled* gap so runs stay
        // deterministic; the measured gap is reported for Fig. 17.
        reader.advance(self.cfg.schedule_gap);

        // ---- Phase II: selective (or fallback) reading ----------------
        let t_phase2_start = reader.now();
        let phase2_span = tel.sim_span("phase2", t_phase2_start);
        let mut phase2 = Vec::with_capacity(self.phase2_cap);
        reader.run_for_into(&schedule.rospec, self.cfg.phase2_len, &mut phase2)?;
        self.phase2_cap = self.phase2_cap.max(phase2.len());
        let t_end = reader.now();
        phase2_span.end(t_end);
        for r in &phase2 {
            self.ingest(r);
        }

        // ---- Housekeeping ---------------------------------------------
        let evicted = self.history.evict_absent(t_end, self.cfg.eviction_timeout);
        for e in &evicted {
            self.assessors.remove(e);
        }
        cycle_span.end(t_end);

        if tel.is_enabled() {
            tel.incr("cycle.count");
            tel.incr_by("cycle.census", census.len() as u64);
            tel.incr_by("cycle.mobile", mobile.len() as u64);
            tel.incr_by("cycle.evictions", evicted.len() as u64);
            tel.incr_by("phase1.reports", phase1.len() as u64);
            tel.incr_by("phase2.reports", phase2.len() as u64);
            tel.gauge_set("tracked_tags", self.assessors.len() as f64);
            // Sim-clock heartbeat: lets a live monitor advance its
            // staleness watchdog between span closures.
            tel.gauge_set("cycle.sim_now", t_end);
            tel.observe("cycle.duration", t_end - t_start);
            tel.observe("phase1.duration", t_phase1_end - t_start);
            tel.observe("phase2.duration", t_end - t_phase2_start);
            // Named via the shared constant: the sim-determinism
            // predicate excludes exactly this observation, and the two
            // must not drift (tagwatch_telemetry::is_sim_deterministic).
            tel.observe(
                tagwatch_telemetry::COMPUTE_SECONDS_OBSERVATION,
                compute_time,
            );
            // Per-tag moments, for offline per-tag IRR / starvation /
            // confusion analysis (tagwatch-obs). Each carries the tag's
            // own reading timestamp, so emitting them here — after the
            // phases, outside the hot loops — loses nothing.
            for r in &phase1 {
                tel.tag_event("read.phase1", r.epc.bits(), r.rf.t);
            }
            for e in &mobile {
                tel.tag_event("assess.mobile", e.bits(), t_phase1_end);
            }
            for r in &phase2 {
                tel.tag_event("read.phase2", r.epc.bits(), r.rf.t);
            }
            for e in &evicted {
                tel.tag_event("evict", e.bits(), t_end);
            }
        }
        // Flush the cycle's work accounting (mixture updates) in bulk.
        self.work.flush(&tel);

        Ok(CycleReport {
            cycle,
            t_start,
            t_end,
            census,
            mobile,
            targets,
            plan: schedule.plan,
            mode: schedule.mode,
            read_all_reason: schedule.reason,
            phase1,
            phase2,
            phase1_duration: t_phase1_end - t_start,
            phase2_duration: t_end - t_phase2_start,
            compute_time,
            evicted,
        })
    }

    /// Runs `n` consecutive cycles, returning all reports.
    pub fn run_cycles(
        &mut self,
        reader: &mut Reader,
        n: usize,
    ) -> Result<Vec<CycleReport>, LlrpError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.run_cycle(reader)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulingMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_reader::ReaderConfig;
    use tagwatch_scene::presets;

    fn random_epcs(n: usize, seed: u64) -> Vec<Epc> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Epc::random(&mut rng)).collect()
    }

    fn turntable_reader(n: usize, n_mobile: usize, seed: u64) -> (Reader, Vec<Epc>) {
        let scene = presets::turntable(n, n_mobile, seed);
        let epcs = random_epcs(n, seed ^ 0x55);
        // Single channel: unit tests exercise the control logic, not the
        // (slow) per-channel model warm-up of a 16-channel hop plan.
        let cfg = ReaderConfig {
            channel_plan: tagwatch_rf::ChannelPlan::single(922.5e6),
            ..ReaderConfig::default()
        };
        let reader = Reader::new(scene.clone(), &epcs, cfg, seed ^ 0xAA);
        (reader, epcs)
    }

    fn short_cfg() -> TagwatchConfig {
        let mut cfg = TagwatchConfig {
            phase2_len: 1.0,
            ..TagwatchConfig::default()
        };
        // Faster learning so immobility models establish within a few
        // short cycles (the paper's α = 0.001 needs ~50 reads per link).
        cfg.gmm.alpha = 0.01;
        cfg
    }

    #[test]
    fn first_cycle_treats_everyone_as_mobile() {
        // Paper: "Initially, we assume all the tags are in motion"; with
        // 40 unknown tags the ceiling trips and Phase II reads all.
        let (mut reader, _) = turntable_reader(40, 2, 1);
        let mut ctl = Controller::new(short_cfg());
        let rep = ctl.run_cycle(&mut reader).unwrap();
        assert_eq!(rep.mode, ScheduleMode::ReadAll);
        assert_eq!(rep.read_all_reason, Some(ReadAllReason::TooManyTargets));
        assert_eq!(rep.census.len(), 40);
        assert!(rep.mobile.len() > 30, "unknown tags assumed mobile");
    }

    #[test]
    fn converges_to_selective_reading_of_movers() {
        let (mut reader, epcs) = turntable_reader(40, 2, 2);
        let mut ctl = Controller::new(short_cfg());
        // Let the immobility models establish (α·reads ≥ established_weight
        // needs ~50 reads per link; ~1 s cycles at ~40 Hz aggregate per tag
        // take a few cycles).
        let reports = ctl.run_cycles(&mut reader, 40).unwrap();
        // A turntable mover's phase dwells at its extremes (arcsine
        // distribution), so single-reading detection is probabilistic —
        // judge the steady state over the last 10 cycles, not one cycle.
        let tail = &reports[reports.len() - 10..];
        let selective = tail
            .iter()
            .filter(|r| r.mode == ScheduleMode::Selective)
            .count();
        assert!(selective >= 6, "only {selective}/10 tail cycles selective");
        for (idx, epc) in epcs.iter().enumerate().take(2) {
            let targeted = tail.iter().filter(|r| r.targets.contains(epc)).count();
            assert!(targeted >= 6, "mover {idx} targeted {targeted}/10");
        }
        // When scheduled, Phase II reads the mover at a high rate.
        let best_p2 = tail
            .iter()
            .map(|r| r.phase2.iter().filter(|x| x.tag_idx == 0).count())
            .max()
            .unwrap();
        assert!(best_p2 > 20, "mover peaked at {best_p2} Phase-II reads");
    }

    #[test]
    fn stationary_tags_rarely_targeted_at_steady_state() {
        let (mut reader, epcs) = turntable_reader(30, 1, 3);
        let mut ctl = Controller::new(short_cfg());
        let reports = ctl.run_cycles(&mut reader, 40).unwrap();
        // Over the last 10 cycles, count how often each static tag was
        // targeted.
        let mut static_target_events = 0usize;
        let mut cycles_counted = 0usize;
        for rep in reports.iter().rev().take(10) {
            cycles_counted += 1;
            for e in &rep.targets {
                let idx = epcs.iter().position(|x| x == e).unwrap();
                if idx != 0 {
                    static_target_events += 1;
                }
            }
        }
        // 29 static tags × 10 cycles = 290 opportunities; FPs should be a
        // small fraction (paper: FPR ≤ 10%).
        assert!(
            static_target_events < 290 / 5,
            "static tags targeted {static_target_events} times in {cycles_counted} cycles"
        );
    }

    #[test]
    fn concerned_tags_always_scheduled() {
        let (mut reader, epcs) = turntable_reader(20, 0, 4);
        let mut cfg = short_cfg();
        cfg.concerned = vec![epcs[7]];
        let mut ctl = Controller::new(cfg);
        let reports = ctl.run_cycles(&mut reader, 30).unwrap();
        let last = reports.last().unwrap();
        // No mobile tags at steady state, but the concerned tag is still a
        // target and Phase II is selective.
        assert!(last.targets.contains(&epcs[7]));
        assert_eq!(last.mode, ScheduleMode::Selective);
        let p2_reads = last.phase2.iter().filter(|r| r.epc == epcs[7]).count();
        assert!(p2_reads > 10, "concerned tag read {p2_reads} times");
    }

    #[test]
    fn no_targets_reads_all() {
        let (mut reader, _) = turntable_reader(15, 0, 5);
        let mut ctl = Controller::new(short_cfg());
        let reports = ctl.run_cycles(&mut reader, 30).unwrap();
        let last = reports.last().unwrap();
        assert_eq!(last.mode, ScheduleMode::ReadAll);
        assert_eq!(last.read_all_reason, Some(ReadAllReason::NoTargets));
        // Everyone still gets read in Phase II.
        let distinct: std::collections::BTreeSet<usize> =
            last.phase2.iter().map(|r| r.tag_idx).collect();
        assert_eq!(distinct.len(), 15);
    }

    #[test]
    fn naive_scheduling_mode_uses_exact_masks() {
        let (mut reader, _) = turntable_reader(30, 1, 6);
        let cfg = short_cfg().with_scheduling(SchedulingMode::Naive);
        let mut ctl = Controller::new(cfg);
        let reports = ctl.run_cycles(&mut reader, 40).unwrap();
        let last = reports.last().unwrap();
        if let Some(plan) = &last.plan {
            assert!(plan.masks.iter().all(|m| m.length == 96));
        } else {
            panic!("expected a selective plan at steady state");
        }
    }

    #[test]
    fn eviction_drops_departed_tags() {
        let mut scene = presets::random_room(5, 7);
        // Tag 4 leaves at t = 2 s.
        scene.tags[4].presence = Some((0.0, 2.0));
        let epcs = random_epcs(5, 8);
        let mut reader = Reader::new(scene, &epcs, ReaderConfig::default(), 9);
        let mut cfg = short_cfg();
        cfg.eviction_timeout = 5.0;
        let mut ctl = Controller::new(cfg);
        let reports = ctl.run_cycles(&mut reader, 10).unwrap();
        let evicted: Vec<Epc> = reports.iter().flat_map(|r| r.evicted.clone()).collect();
        assert!(evicted.contains(&epcs[4]), "departed tag not evicted");
        assert_eq!(ctl.tracked_tags(), 4);
    }

    #[test]
    fn cycle_reports_are_consistent() {
        let (mut reader, _) = turntable_reader(10, 1, 10);
        let mut ctl = Controller::new(short_cfg());
        let rep = ctl.run_cycle(&mut reader).unwrap();
        assert!(rep.t_end > rep.t_start);
        assert!(rep.phase1_duration > 0.0);
        assert!(rep.phase2_duration >= 1.0);
        assert!(rep.compute_time >= 0.0);
        assert!(rep.targets.iter().all(|t| rep.census.contains(t)));
        assert!(rep.mobile.iter().all(|m| rep.targets.contains(m)));
        // History recorded both phases.
        let total: u64 = rep
            .census
            .iter()
            .filter_map(|e| ctl.history().tag(e))
            .map(|r| r.total_reads)
            .sum();
        assert_eq!(total as usize, rep.phase1.len() + rep.phase2.len());
    }

    #[test]
    fn telemetry_spans_and_counters_match_reports() {
        use tagwatch_telemetry::{MemorySink, Telemetry};
        let (mut reader, _) = turntable_reader(12, 1, 20);
        let tel = Telemetry::new();
        let sink = MemorySink::new(1 << 16);
        tel.install(Box::new(sink.clone()));
        let mut ctl = Controller::new(short_cfg()).with_telemetry(tel.clone());
        let reports = ctl.run_cycles(&mut reader, 3).unwrap();

        let cycles = sink.spans_named("cycle");
        let phase1 = sink.spans_named("phase1");
        let phase2 = sink.spans_named("phase2");
        let compute = sink.spans_named("cycle.compute");
        assert_eq!(cycles.len(), 3);
        assert_eq!(phase1.len(), 3);
        assert_eq!(phase2.len(), 3);
        assert_eq!(compute.len(), 3);
        for (k, rep) in reports.iter().enumerate() {
            assert!((cycles[k].start - rep.t_start).abs() < 1e-12);
            assert!((cycles[k].duration - (rep.t_end - rep.t_start)).abs() < 1e-9);
            assert!((phase1[k].duration - rep.phase1_duration).abs() < 1e-9);
            assert!((phase2[k].duration - rep.phase2_duration).abs() < 1e-9);
            // Phases nest under their cycle; the compute span too.
            assert_eq!(phase1[k].parent, Some(cycles[k].id));
            assert_eq!(phase2[k].parent, Some(cycles[k].id));
            assert_eq!(compute[k].parent, Some(cycles[k].id));
        }

        let snap = tel.snapshot();
        let sum = |f: fn(&CycleReport) -> usize| reports.iter().map(f).sum::<usize>() as u64;
        assert_eq!(snap.counter("cycle.count"), Some(3));
        assert_eq!(snap.counter("cycle.census"), Some(sum(|r| r.census.len())));
        assert_eq!(snap.counter("cycle.mobile"), Some(sum(|r| r.mobile.len())));
        assert_eq!(
            snap.counter("phase1.reports"),
            Some(sum(|r| r.phase1.len()))
        );
        assert_eq!(
            snap.counter("phase2.reports"),
            Some(sum(|r| r.phase2.len()))
        );
        assert_eq!(snap.histogram("cycle.duration").unwrap().count(), 3);

        // Per-tag moments: one read.phaseN tag event per delivered report,
        // one assess.mobile per mobile verdict, all timestamped on the
        // simulated clock.
        use tagwatch_telemetry::Event;
        let tag_events: Vec<tagwatch_telemetry::TagRecord> = sink
            .events()
            .into_iter()
            .filter_map(|ev| match ev {
                Event::Tag(t) => Some(t),
                _ => None,
            })
            .collect();
        let count_of = |name: &str| tag_events.iter().filter(|t| t.name == name).count();
        assert_eq!(count_of("read.phase1"), sum(|r| r.phase1.len()) as usize);
        assert_eq!(count_of("read.phase2"), sum(|r| r.phase2.len()) as usize);
        assert_eq!(count_of("assess.mobile"), sum(|r| r.mobile.len()) as usize);
        for t in &tag_events {
            let last = reports.last().unwrap();
            assert!(t.t >= 0.0 && t.t <= last.t_end, "tag event at {}", t.t);
        }
    }

    #[test]
    fn disabled_telemetry_leaves_cycles_unchanged() {
        // The default (global, disabled) handle must not perturb results:
        // identical runs with and without an explicit disabled handle.
        let run = |with_handle: bool| {
            let (mut reader, _) = turntable_reader(10, 1, 21);
            let mut ctl = Controller::new(short_cfg());
            if with_handle {
                ctl.set_telemetry(tagwatch_telemetry::Telemetry::new());
            }
            let rep = ctl.run_cycle(&mut reader).unwrap();
            (rep.census, rep.t_end)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "invalid Tagwatch configuration")]
    fn invalid_config_panics() {
        let mut cfg = TagwatchConfig::default();
        cfg.antennas.clear();
        Controller::new(cfg);
    }
}
