//! Evaluation metrics: IRR accounting, detection scores, distribution
//! helpers. Everything the §7 experiments report is computed here so the
//! figure harness stays thin.

use std::collections::BTreeMap;
use tagwatch_gen2::Epc;
use tagwatch_reader::TagReport;

/// The error [`irr_per_tag`] reports for a window over which a rate is
/// undefined: zero, negative, or NaN duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidDuration(pub f64);

impl std::fmt::Display for InvalidDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IRR undefined over a duration of {} s (must be finite and > 0)",
            self.0
        )
    }
}

impl std::error::Error for InvalidDuration {}

/// Per-tag individual reading rates from a report stream spanning
/// `duration` seconds (§2.1's IRR definition: readings of a particular tag
/// per second).
///
/// An empty report stream yields an empty map (no tag, no rate). A
/// non-positive, non-finite duration is a checked error rather than a
/// panic — callers deriving the window from data (e.g. `last − first`
/// timestamps, which collapse to 0 for a single reading) must be able to
/// handle it.
pub fn irr_per_tag(
    reports: &[TagReport],
    duration: f64,
) -> Result<BTreeMap<Epc, f64>, InvalidDuration> {
    if !(duration > 0.0 && duration.is_finite()) {
        return Err(InvalidDuration(duration));
    }
    let mut counts: BTreeMap<Epc, usize> = BTreeMap::new();
    for r in reports {
        *counts.entry(r.epc).or_insert(0) += 1;
    }
    Ok(counts
        .into_iter()
        .map(|(e, c)| (e, c as f64 / duration))
        .collect())
}

/// Binary-classification confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    pub tp: usize,
    pub fp: usize,
    pub tn: usize,
    pub fn_: usize,
}

impl Confusion {
    /// Accumulates one (prediction, label) pair. `label` is ground-truth
    /// motion; `pred` is the detector's verdict.
    pub fn push(&mut self, pred: bool, label: bool) {
        match (pred, label) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// True positive rate (recall). 0 when there are no positives.
    pub fn tpr(&self) -> f64 {
        let p = self.tp + self.fn_;
        if p == 0 {
            0.0
        } else {
            self.tp as f64 / p as f64
        }
    }

    /// False positive rate. 0 when there are no negatives.
    pub fn fpr(&self) -> f64 {
        let n = self.fp + self.tn;
        if n == 0 {
            0.0
        } else {
            self.fp as f64 / n as f64
        }
    }

    /// Accuracy over all samples.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }
}

/// One point of an ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// The swept threshold (ξ for MoG detectors, the jump threshold for
    /// differencing).
    pub threshold: f64,
    pub tpr: f64,
    pub fpr: f64,
}

/// The p-th percentile (0–100) of a sample, by linear interpolation.
/// Panics on an empty slice.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN")); // lint:allow(panic-policy): documented contract: percentile rejects NaN input
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (rank - lo as f64) * (v[hi] - v[lo])
    }
}

/// The median of a sample.
pub fn median(samples: &[f64]) -> f64 {
    percentile(samples, 50.0)
}

/// Sample mean. 0 for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Sample standard deviation (population form). 0 for < 2 samples.
pub fn std_dev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    (samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / samples.len() as f64).sqrt()
}

/// Empirical CDF evaluated at `x`: the fraction of samples ≤ x.
pub fn cdf_at(samples: &[f64], x: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&s| s <= x).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    // Tests assert exact literals that the code stores or copies
    // untouched; approximate comparison would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use tagwatch_rf::RfMeasurement;

    fn report(epc: u128, t: f64) -> TagReport {
        TagReport {
            epc: Epc::from_bits(epc),
            tag_idx: 0,
            rf: RfMeasurement {
                phase: 0.0,
                rss_dbm: -50.0,
                channel: 0,
                freq_hz: 922.5e6,
                antenna: 1,
                t,
            },
        }
    }

    #[test]
    fn irr_counts_per_epc() {
        let reports: Vec<TagReport> = (0..10)
            .map(|k| report(if k % 2 == 0 { 1 } else { 2 }, k as f64 * 0.1))
            .collect();
        let irr = irr_per_tag(&reports, 2.0).unwrap();
        assert!((irr[&Epc::from_bits(1)] - 2.5).abs() < 1e-12);
        assert!((irr[&Epc::from_bits(2)] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn irr_empty_reports_yield_empty_map() {
        let irr = irr_per_tag(&[], 5.0).unwrap();
        assert!(irr.is_empty());
    }

    #[test]
    fn irr_rejects_degenerate_durations() {
        let reports = vec![report(1, 0.0)];
        assert_eq!(irr_per_tag(&reports, 0.0), Err(InvalidDuration(0.0)));
        assert_eq!(irr_per_tag(&reports, -1.0), Err(InvalidDuration(-1.0)));
        let nan = irr_per_tag(&reports, f64::NAN).unwrap_err();
        assert!(nan.0.is_nan());
        let inf = irr_per_tag(&reports, f64::INFINITY).unwrap_err();
        assert!(inf.0.is_infinite());
        // The error renders with the offending value.
        assert!(InvalidDuration(0.0).to_string().contains("0 s"));
    }

    #[test]
    fn confusion_rates() {
        let mut c = Confusion::default();
        // 8 moving samples, 6 detected; 12 static samples, 3 false alarms.
        for k in 0..8 {
            c.push(k < 6, true);
        }
        for k in 0..12 {
            c.push(k < 3, false);
        }
        assert!((c.tpr() - 0.75).abs() < 1e-12);
        assert!((c.fpr() - 0.25).abs() < 1e-12);
        assert!((c.accuracy() - 15.0 / 20.0).abs() < 1e-12);
        assert_eq!(c.total(), 20);
    }

    #[test]
    fn confusion_degenerate_cases() {
        let c = Confusion::default();
        assert_eq!(c.tpr(), 0.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn percentile_and_median() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(median(&v), 3.0);
        assert_eq!(percentile(&v, 25.0), 2.0);
        // Interpolation on even-length samples.
        assert_eq!(median(&[1.0, 2.0]), 1.5);
    }

    #[test]
    fn mean_std_cdf() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
        assert!((cdf_at(&v, 4.0) - 0.5).abs() < 1e-12);
        assert_eq!(cdf_at(&v, 100.0), 1.0);
        assert_eq!(cdf_at(&[], 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }
}
