//! Phase-II schedule construction: from a target set to a ROSpec.
//!
//! Applies the §3 scope guard (too many targets → read all), runs the §5
//! cover search in the configured mode, and emits the LLRP spec the reader
//! executes — one AISpec per bitmask, the paper's default encoding.

use crate::config::{SchedulingMode, TagwatchConfig};
use crate::cover::{naive_cover, select_cover, CoverPlan};
use serde::{Deserialize, Serialize};
use tagwatch_gen2::Epc;
use tagwatch_reader::RoSpec;
use tagwatch_telemetry::Telemetry;

/// What kind of Phase II was scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleMode {
    /// Selective reading of the planned bitmasks.
    Selective,
    /// Reading everyone — either by configuration, because there were no
    /// targets, or because the mobile fraction exceeded the ceiling.
    ReadAll,
}

/// A built Phase-II schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// The spec to execute for Phase II.
    pub rospec: RoSpec,
    /// The cover plan behind it (None for read-all).
    pub plan: Option<CoverPlan>,
    /// Selective or read-all.
    pub mode: ScheduleMode,
    /// Why read-all was chosen, when it was.
    pub reason: Option<ReadAllReason>,
}

impl Schedule {
    /// Emits this schedule's telemetry: a mode counter
    /// (`schedule.selective` / `schedule.read_all`, with the fallback
    /// reason broken out as `schedule.read_all.<reason>`) and the
    /// cover-plan mask count (`cycle.masks`).
    pub fn record(&self, tel: &Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        match self.mode {
            ScheduleMode::Selective => tel.incr("schedule.selective"),
            ScheduleMode::ReadAll => {
                tel.incr("schedule.read_all");
                let reason = match self.reason {
                    Some(ReadAllReason::NoTargets) => "schedule.read_all.no_targets",
                    Some(ReadAllReason::TooManyTargets) => "schedule.read_all.too_many_targets",
                    Some(ReadAllReason::Configured) | None => "schedule.read_all.configured",
                };
                tel.incr(reason);
            }
        }
        if let Some(plan) = &self.plan {
            tel.incr_by("cycle.masks", plan.masks.len() as u64);
        }
    }
}

/// Why a cycle fell back to reading everyone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadAllReason {
    /// No mobile or concerned tags this cycle.
    NoTargets,
    /// Targets exceeded the mobile-fraction ceiling (§3 Scope).
    TooManyTargets,
    /// Configured scheduling mode is `ReadAll`.
    Configured,
}

/// Builds the Phase-II schedule for this cycle.
///
/// `all_epcs` are the present tags (Phase I's census); `target_idxs` index
/// into it. `rospec_id` tags the emitted spec for event correlation.
pub fn build_schedule(
    all_epcs: &[Epc],
    target_idxs: &[usize],
    cfg: &TagwatchConfig,
    rospec_id: u32,
) -> Schedule {
    let with_dwell = |mut rospec: RoSpec| {
        for ai in &mut rospec.ai_specs {
            ai.dwell = cfg.phase2_dwell;
        }
        rospec
    };
    let read_all = |reason: ReadAllReason| Schedule {
        rospec: with_dwell(RoSpec::read_all(rospec_id, cfg.antennas.clone())),
        plan: None,
        mode: ScheduleMode::ReadAll,
        reason: Some(reason),
    };

    if cfg.scheduling == SchedulingMode::ReadAll {
        return read_all(ReadAllReason::Configured);
    }
    if target_idxs.is_empty() {
        return read_all(ReadAllReason::NoTargets);
    }
    if !all_epcs.is_empty() {
        let fraction = target_idxs.len() as f64 / all_epcs.len() as f64;
        // The ceiling is an economy guard for large target sets; with a
        // handful of targets selective reading always pays, so tiny
        // populations (where one false positive swings the fraction) are
        // exempt.
        if fraction > cfg.mobile_ceiling && target_idxs.len() > 3 {
            return read_all(ReadAllReason::TooManyTargets);
        }
    }

    let plan = match cfg.scheduling {
        SchedulingMode::Tagwatch => select_cover(all_epcs, target_idxs, &cfg.cost, &cfg.cover),
        SchedulingMode::Naive => naive_cover(all_epcs, target_idxs, &cfg.cost),
        SchedulingMode::ReadAll => unreachable!("handled above"), // lint:allow(panic-policy): ReadAll returns early above
    };
    let rospec = with_dwell(RoSpec::selective_with_truncate(
        rospec_id,
        cfg.antennas.clone(),
        &plan.masks,
        cfg.truncate_phase2,
    ));
    Schedule {
        rospec,
        plan: Some(plan),
        mode: ScheduleMode::Selective,
        reason: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn epcs(n: usize, seed: u64) -> Vec<Epc> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Epc::random(&mut rng)).collect()
    }

    #[test]
    fn selective_schedule_for_few_targets() {
        let population = epcs(40, 1);
        let cfg = TagwatchConfig::default();
        let s = build_schedule(&population, &[3, 17], &cfg, 9);
        assert_eq!(s.mode, ScheduleMode::Selective);
        assert_eq!(s.rospec.id, 9);
        let plan = s.plan.unwrap();
        assert!(plan.covered.get(3) && plan.covered.get(17));
        // One AISpec per mask.
        assert_eq!(s.rospec.ai_specs.len(), plan.masks.len());
        s.rospec.validate().unwrap();
    }

    #[test]
    fn no_targets_reads_all() {
        let population = epcs(10, 2);
        let s = build_schedule(&population, &[], &TagwatchConfig::default(), 1);
        assert_eq!(s.mode, ScheduleMode::ReadAll);
        assert_eq!(s.reason, Some(ReadAllReason::NoTargets));
        assert!(s.plan.is_none());
    }

    #[test]
    fn ceiling_forces_read_all() {
        let population = epcs(20, 3);
        // 5 of 20 targets = 25% > 20% ceiling (and above the small-count
        // exemption).
        let s = build_schedule(&population, &[0, 1, 2, 3, 4], &TagwatchConfig::default(), 1);
        assert_eq!(s.mode, ScheduleMode::ReadAll);
        assert_eq!(s.reason, Some(ReadAllReason::TooManyTargets));
        // 4 of 20 = exactly 20%: not *over* the ceiling → selective.
        let s = build_schedule(&population, &[0, 1, 2, 3], &TagwatchConfig::default(), 1);
        assert_eq!(s.mode, ScheduleMode::Selective);
    }

    #[test]
    fn tiny_target_sets_are_exempt_from_ceiling() {
        // 3 of 5 targets is 60%, but selective reading of three tags
        // always pays — one false positive must not flip a small scene
        // to read-all.
        let population = epcs(5, 7);
        let s = build_schedule(&population, &[0, 1, 2], &TagwatchConfig::default(), 1);
        assert_eq!(s.mode, ScheduleMode::Selective);
    }

    #[test]
    fn configured_read_all() {
        let population = epcs(10, 4);
        let cfg = TagwatchConfig::default().with_scheduling(SchedulingMode::ReadAll);
        let s = build_schedule(&population, &[0], &cfg, 1);
        assert_eq!(s.mode, ScheduleMode::ReadAll);
        assert_eq!(s.reason, Some(ReadAllReason::Configured));
    }

    #[test]
    fn naive_mode_uses_exact_masks() {
        let population = epcs(40, 5);
        let cfg = TagwatchConfig::default().with_scheduling(SchedulingMode::Naive);
        let s = build_schedule(&population, &[2, 8], &cfg, 1);
        let plan = s.plan.unwrap();
        assert_eq!(plan.masks.len(), 2);
        assert!(plan.masks.iter().all(|m| m.length == 96));
    }

    #[test]
    fn record_emits_mode_and_mask_counters() {
        use tagwatch_telemetry::MemorySink;
        let tel = Telemetry::new();
        let sink = MemorySink::new(64);
        tel.install(Box::new(sink.clone()));

        let population = epcs(40, 9);
        let cfg = TagwatchConfig::default();
        let selective = build_schedule(&population, &[3, 17], &cfg, 1);
        selective.record(&tel);
        let read_all = build_schedule(&population, &[], &cfg, 2);
        read_all.record(&tel);

        let snap = tel.snapshot();
        assert_eq!(snap.counter("schedule.selective"), Some(1));
        assert_eq!(snap.counter("schedule.read_all"), Some(1));
        assert_eq!(snap.counter("schedule.read_all.no_targets"), Some(1));
        let masks = selective.plan.as_ref().unwrap().masks.len() as u64;
        assert_eq!(snap.counter("cycle.masks"), Some(masks));
    }

    #[test]
    fn antennas_propagate_to_rospec() {
        let population = epcs(20, 6);
        let cfg = TagwatchConfig {
            antennas: vec![1, 2, 3, 4],
            ..TagwatchConfig::default()
        };
        let s = build_schedule(&population, &[0], &cfg, 1);
        for ai in &s.rospec.ai_specs {
            assert_eq!(ai.antennas, vec![1, 2, 3, 4]);
        }
    }
}
