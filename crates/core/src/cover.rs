//! Phase-II bitmask selection as weighted set cover (§5.2–5.3).
//!
//! Given the EPCs of all present tags and the subset of *target* tags
//! (mobile + user-concerned), find a group of `Select` bitmasks covering
//! every target at minimum total inventory cost
//!
//! ```text
//! minimize   Σ C(|S_i|)      subject to   targets ⊆ ∪ S_i
//! ```
//!
//! where `C(n) = τ0 + n·e·τ̄·ln n` prices a selective round over the `|S_i|`
//! tags (targets *and* collateral non-targets) a mask covers. The candidate
//! masks are all substrings of the target EPCs — `n′·L(L+1)/2` of them —
//! deduplicated by coverage into an index table (the paper's Fig. 10), then
//! searched greedily by relative gain `R(S_i) = |V_i ∧ V| / C(|V_i|)`
//! (Eqn. 13).
//!
//! The paper's *naive solution* (one full-EPC mask per target) is the
//! guard: if the greedy plan prices out worse, fall back (§5.2's "adopt the
//! worst option"). The paper states the worst case as `C(n′)`; n′ singleton
//! rounds actually cost `n′·C(1)` (each round pays its own start-up τ0),
//! which is what we use — see DESIGN.md.

use crate::bitmap::Bitmap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tagwatch_gen2::{BitMask, CostModel, Epc, EPC_BITS};

/// Candidate-generation bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverConfig {
    /// Shortest mask length considered.
    pub min_len: u16,
    /// Longest mask length considered (≤ 96).
    pub max_len: u16,
}

impl Default for CoverConfig {
    fn default() -> Self {
        CoverConfig {
            min_len: 1,
            max_len: EPC_BITS,
        }
    }
}

/// One row of the index table: a candidate mask and the set of tags
/// (targets and non-targets alike) it covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexRow {
    /// The bitmask.
    pub mask: BitMask,
    /// Indicator bitmap over all present tags.
    pub coverage: Bitmap,
}

/// The pre-built index table of §5.3 / Fig. 10(a): candidate bitmasks with
/// their indicator bitmaps, deduplicated by coverage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexTable {
    rows: Vec<IndexRow>,
    n_tags: usize,
}

impl IndexTable {
    /// Builds the table over `all_epcs` (every present tag) for the given
    /// target indices.
    ///
    /// Candidates are the `(pointer, length)` substrings of the target
    /// EPCs within the configured length bounds. Rows covering no target
    /// are never generated; rows with identical coverage are merged
    /// (keeping the first mask encountered — coverage equality implies
    /// cost equality).
    pub fn build(all_epcs: &[Epc], targets: &[usize], cfg: &CoverConfig) -> Self {
        let n = all_epcs.len();
        assert!(targets.iter().all(|&t| t < n), "target index out of range");
        let max_len = cfg.max_len.min(EPC_BITS);
        let mut rows: Vec<IndexRow> = Vec::new();
        let mut seen: BTreeMap<Bitmap, usize> = BTreeMap::new();

        for length in cfg.min_len..=max_len {
            for pointer in 0..=(EPC_BITS - length) {
                // Distinct target substring values at this (pointer, length).
                let mut values: Vec<u128> = targets
                    .iter()
                    .map(|&t| all_epcs[t].extract(pointer, length))
                    .collect();
                values.sort_unstable();
                values.dedup();
                for value in values {
                    let mut coverage = Bitmap::zeros(n);
                    for (i, epc) in all_epcs.iter().enumerate() {
                        if epc.extract(pointer, length) == value {
                            coverage.set(i);
                        }
                    }
                    if let std::collections::btree_map::Entry::Vacant(e) =
                        seen.entry(coverage.clone())
                    {
                        e.insert(rows.len());
                        rows.push(IndexRow {
                            mask: BitMask::new(value, pointer, length),
                            coverage,
                        });
                    }
                }
            }
        }
        IndexTable { rows, n_tags: n }
    }

    /// Builds a table directly from rows (for experiment variants that
    /// filter or augment the candidate set). Rows must be indexed over
    /// `n_tags` positions.
    pub fn from_rows(rows: Vec<IndexRow>, n_tags: usize) -> Self {
        assert!(
            rows.iter().all(|r| r.coverage.len() == n_tags),
            "row bitmap width mismatch"
        );
        IndexTable { rows, n_tags }
    }

    /// The deduplicated rows.
    pub fn rows(&self) -> &[IndexRow] {
        &self.rows
    }

    /// Number of tags the table is indexed over.
    pub fn n_tags(&self) -> usize {
        self.n_tags
    }
}

/// How a cover plan was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoverStrategy {
    /// Greedy weighted set cover over the index table.
    Greedy,
    /// One full-EPC mask per target (the paper's naive solution).
    NaivePerEpc,
}

/// A Phase-II scheduling plan: the chosen bitmasks plus cost accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverPlan {
    /// The selected bitmasks, in selection order.
    pub masks: Vec<BitMask>,
    /// Union coverage over all present tags.
    pub covered: Bitmap,
    /// Model-estimated cost of one selective sweep (Σ C(|S_i|)), seconds.
    pub est_cost: f64,
    /// How the plan was produced.
    pub strategy: CoverStrategy,
}

impl CoverPlan {
    /// Number of covered tags that are not targets (collateral reads).
    pub fn collateral(&self, targets: &Bitmap) -> usize {
        self.covered.count_ones() - self.covered.and_count(targets)
    }
}

/// The naive plan: each target's full EPC as its own bitmask.
pub fn naive_cover(all_epcs: &[Epc], targets: &[usize], cost: &CostModel) -> CoverPlan {
    let covered = Bitmap::from_indices(all_epcs.len(), targets);
    let masks: Vec<BitMask> = targets
        .iter()
        .map(|&t| BitMask::exact(all_epcs[t]))
        .collect();
    // Duplicate EPCs would both answer one exact-mask round; cost per mask
    // is still C(count of matching tags) — with random EPCs that is 1.
    let est_cost = masks
        .iter()
        .map(|m| cost.inventory_cost(all_epcs.iter().filter(|e| m.matches(**e)).count()))
        .sum();
    CoverPlan {
        masks,
        covered,
        est_cost,
        strategy: CoverStrategy::NaivePerEpc,
    }
}

/// Greedy weighted set cover over a pre-built index table (§5.3's search).
///
/// Iterates Eqn. 13: pick the row maximising `|V_i ∧ V| / C(|V_i|)`,
/// subtract, repeat until every target is covered. Ties break toward the
/// earlier row (deterministic; the paper breaks ties randomly).
pub fn greedy_cover(table: &IndexTable, targets: &Bitmap, cost: &CostModel) -> CoverPlan {
    assert_eq!(table.n_tags(), targets.len(), "table/target size mismatch");
    let mut v = targets.clone();
    let mut masks = Vec::new();
    let mut covered = Bitmap::zeros(targets.len());
    let mut est_cost = 0.0;

    while !v.is_zero() {
        let mut best: Option<(usize, f64)> = None;
        for (i, row) in table.rows().iter().enumerate() {
            let gain = row.coverage.and_count(&v);
            if gain == 0 {
                continue;
            }
            let relative = gain as f64 / cost.inventory_cost(row.coverage.count_ones());
            match best {
                Some((_, r)) if r >= relative => {}
                _ => best = Some((i, relative)),
            }
        }
        // lint:allow(panic-policy): full-EPC rows cover every target
        let (idx, _) = best.expect(
            "index table must contain a cover for every target \
             (full-EPC substrings guarantee this when max_len = 96)",
        );
        let row = &table.rows()[idx];
        masks.push(row.mask);
        covered.union(&row.coverage);
        est_cost += cost.inventory_cost(row.coverage.count_ones());
        v.subtract(&row.coverage);
    }

    CoverPlan {
        masks,
        covered,
        est_cost,
        strategy: CoverStrategy::Greedy,
    }
}

/// The full §5 pipeline: build the index table, search greedily, and fall
/// back to the naive per-EPC plan if it prices out cheaper.
///
/// ```
/// use tagwatch::{select_cover, CoverConfig};
/// use tagwatch_gen2::{CostModel, Epc};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let population: Vec<Epc> = (0..40).map(|_| Epc::random(&mut rng)).collect();
/// let plan = select_cover(&population, &[3, 17], &CostModel::paper(),
///                         &CoverConfig::default());
/// assert!(plan.covered.get(3) && plan.covered.get(17));
/// // Two targets never need more than two masks.
/// assert!(plan.masks.len() <= 2);
/// ```
pub fn select_cover(
    all_epcs: &[Epc],
    targets: &[usize],
    cost: &CostModel,
    cfg: &CoverConfig,
) -> CoverPlan {
    if targets.is_empty() {
        return CoverPlan {
            masks: Vec::new(),
            covered: Bitmap::zeros(all_epcs.len()),
            est_cost: 0.0,
            strategy: CoverStrategy::Greedy,
        };
    }
    let table = IndexTable::build(all_epcs, targets, cfg);
    let target_bitmap = Bitmap::from_indices(all_epcs.len(), targets);
    let greedy = greedy_cover(&table, &target_bitmap, cost);
    let naive = naive_cover(all_epcs, targets, cost);
    if naive.est_cost < greedy.est_cost {
        naive
    } else {
        greedy
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact literals that the code stores or copies
    // untouched; approximate comparison would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_cost() -> CostModel {
        CostModel::paper()
    }

    /// The paper's Fig. 9/10 toy population: 6-bit EPCs placed in the top
    /// bits of the 96-bit space.
    fn toy_epcs() -> Vec<Epc> {
        [0b001110u128, 0b010010, 0b101100, 0b110110]
            .iter()
            .map(|&v| Epc::from_bits(v << 90))
            .collect()
    }

    #[test]
    fn table_rows_cover_all_targets_and_dedupe() {
        let epcs = toy_epcs();
        let cfg = CoverConfig {
            min_len: 1,
            max_len: 6,
        };
        let table = IndexTable::build(&epcs, &[0, 1, 2], &cfg);
        assert!(!table.rows().is_empty());
        // No duplicate coverage bitmaps.
        let mut seen = std::collections::BTreeSet::new();
        for row in table.rows() {
            assert!(seen.insert(row.coverage.clone()), "duplicate coverage");
            // Every row covers at least one target (rows are generated from
            // target substrings).
            assert!(
                [0usize, 1, 2].iter().any(|&t| row.coverage.get(t)),
                "row {} covers no target",
                row.mask
            );
        }
    }

    #[test]
    fn greedy_covers_paper_example() {
        // Fig. 9(b)'s targets: the first three tags. The paper's hand
        // example picks two collateral-free masks, but under the real cost
        // model (τ0-dominated) one mask covering all four tags is cheaper
        // than two rounds — the optimizer must cover all targets at a cost
        // no worse than either alternative.
        let epcs = toy_epcs();
        let cfg = CoverConfig {
            min_len: 1,
            max_len: 96,
        };
        let cost = paper_cost();
        let plan = select_cover(&epcs, &[0, 1, 2], &cost, &cfg);
        let targets = Bitmap::from_indices(4, &[0, 1, 2]);
        // All targets covered.
        assert_eq!(plan.covered.and_count(&targets), 3);
        // Cost beats both the paper's two-mask plan and the naive plan.
        let two_mask_cost = 2.0 * cost.inventory_cost(2); // S(11,3,2) + S(01,1,2)
        assert!(plan.est_cost <= two_mask_cost + 1e-12);
        assert!(plan.est_cost <= naive_cover(&epcs, &[0, 1, 2], &cost).est_cost + 1e-12);
        assert!(plan.masks.len() <= 2);
    }

    #[test]
    fn single_target_uses_one_mask() {
        let mut rng = StdRng::seed_from_u64(1);
        let epcs: Vec<Epc> = (0..40).map(|_| Epc::random(&mut rng)).collect();
        let plan = select_cover(&epcs, &[7], &paper_cost(), &CoverConfig::default());
        assert_eq!(plan.masks.len(), 1);
        assert!(plan.covered.get(7));
        // With random 96-bit EPCs, a short distinguishing prefix exists;
        // cost should be far below a full coupon round.
        assert!(plan.est_cost < paper_cost().inventory_cost(40));
    }

    #[test]
    fn cover_invariant_random_populations() {
        // Property-style check across several seeds: every target covered,
        // plan cost never exceeds the naive fallback's cost.
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 60;
            let epcs: Vec<Epc> = (0..n).map(|_| Epc::random(&mut rng)).collect();
            let targets: Vec<usize> = (0..n).step_by(11).collect();
            let cost = paper_cost();
            let plan = select_cover(&epcs, &targets, &cost, &CoverConfig::default());
            for &t in &targets {
                assert!(plan.covered.get(t), "seed {seed}: target {t} uncovered");
            }
            let naive = naive_cover(&epcs, &targets, &cost);
            assert!(
                plan.est_cost <= naive.est_cost + 1e-12,
                "seed {seed}: plan {} > naive {}",
                plan.est_cost,
                naive.est_cost
            );
        }
    }

    #[test]
    fn greedy_merges_targets_sharing_prefixes() {
        // Two targets sharing a long prefix: one mask should cover both,
        // beating two exact-EPC rounds.
        let base = 0xABCD_EF01_2345_6789_u128 << 32;
        let epcs = vec![
            Epc::from_bits(base | 0x1),
            Epc::from_bits(base | 0x2),
            Epc::from_bits(0x1111_u128),
            Epc::from_bits(0x2222_u128),
        ];
        let plan = select_cover(&epcs, &[0, 1], &paper_cost(), &CoverConfig::default());
        assert_eq!(plan.masks.len(), 1, "prefix mask should cover both");
        assert_eq!(plan.strategy, CoverStrategy::Greedy);
        let targets = Bitmap::from_indices(4, &[0, 1]);
        assert_eq!(plan.collateral(&targets), 0);
        // One round of 2 tags vs two rounds of 1: must be cheaper.
        assert!(plan.est_cost < naive_cover(&epcs, &[0, 1], &paper_cost()).est_cost);
    }

    #[test]
    fn empty_targets_yield_empty_plan() {
        let epcs = toy_epcs();
        let plan = select_cover(&epcs, &[], &paper_cost(), &CoverConfig::default());
        assert!(plan.masks.is_empty());
        assert_eq!(plan.est_cost, 0.0);
    }

    #[test]
    fn naive_cover_shape() {
        let epcs = toy_epcs();
        let cost = paper_cost();
        let plan = naive_cover(&epcs, &[0, 2], &cost);
        assert_eq!(plan.masks.len(), 2);
        assert_eq!(plan.strategy, CoverStrategy::NaivePerEpc);
        assert!((plan.est_cost - 2.0 * cost.inventory_cost(1)).abs() < 1e-12);
        let targets = Bitmap::from_indices(4, &[0, 2]);
        assert_eq!(plan.collateral(&targets), 0);
    }

    #[test]
    fn restricted_lengths_still_cover_when_possible() {
        // Only long masks allowed: greedy degenerates toward per-EPC but
        // must still cover.
        let mut rng = StdRng::seed_from_u64(5);
        let epcs: Vec<Epc> = (0..20).map(|_| Epc::random(&mut rng)).collect();
        let cfg = CoverConfig {
            min_len: 90,
            max_len: 96,
        };
        let plan = select_cover(&epcs, &[3, 9], &paper_cost(), &cfg);
        assert!(plan.covered.get(3) && plan.covered.get(9));
    }

    #[test]
    fn collateral_counting() {
        // Targets 0 and 3 of the toy set share bits [3,5) = "11" with no
        // others? tag0=001110 bits[3..5)=11, tag3=110110 bits[3..5)=11;
        // a mask covering both is collateral-free w.r.t. {0,3}.
        let epcs = toy_epcs();
        let plan = select_cover(&epcs, &[0, 3], &paper_cost(), &CoverConfig::default());
        let targets = Bitmap::from_indices(4, &[0, 3]);
        assert_eq!(plan.covered.and_count(&targets), 2);
        assert_eq!(plan.collateral(&targets), 0);
        assert_eq!(plan.masks.len(), 1);
    }
}
