//! # tagwatch — rate-adaptive reading for COTS RFID systems
//!
//! The core contribution of the CoNEXT '17 paper *"Revisiting Reading Rate
//! with Mobility: Rate-Adaptive Reading in COTS RFID Systems"*: a
//! middleware that raises the individual reading rate (IRR) of *mobile*
//! tags by a two-phase cycle —
//!
//! 1. **Phase I — motion assessment** ([`motion`], [`gmm`]): inventory all
//!    tags once, classify each as mobile/stationary with a self-learning
//!    Gaussian-mixture immobility model over backscatter phase.
//! 2. **Phase II — target schedule** ([`cover`], [`scheduler`]): cover the
//!    mobile (and user-concerned) tags with Gen2 `Select` bitmasks chosen
//!    by greedy weighted set cover priced with the paper's inventory-cost
//!    model `C(n) = τ0 + n·e·τ̄·ln n`, then selectively read only those
//!    tags for a long interval.
//!
//! [`controller::Controller`] drives the loop against any
//! [`tagwatch_reader::Reader`]; [`metrics`] computes the quantities the
//! paper's evaluation reports.
//!
//! ```
//! use tagwatch::prelude::*;
//! use tagwatch_reader::{Reader, ReaderConfig};
//! use tagwatch_scene::presets;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 40 tags, 2 of them riding a turntable.
//! let scene = presets::turntable(40, 2, 7);
//! let mut rng = StdRng::seed_from_u64(7);
//! let epcs: Vec<Epc> = (0..40).map(|_| Epc::random(&mut rng)).collect();
//! let mut reader = Reader::new(scene, &epcs, ReaderConfig::default(), 7);
//!
//! let mut tagwatch = Controller::new(TagwatchConfig::default());
//! let report = tagwatch.run_cycle(&mut reader).unwrap();
//! assert_eq!(report.census.len(), 40);
//! ```

#![forbid(unsafe_code)]
pub mod bitmap;
pub mod config;
pub mod controller;
pub mod cover;
pub mod gaussian;
pub mod gmm;
pub mod history;
pub mod metrics;
pub mod motion;
pub mod scheduler;

pub use bitmap::Bitmap;
pub use config::{DetectorKind, SchedulingMode, TagwatchConfig};
pub use controller::{Controller, ControllerSnapshot, CycleReport};
pub use cover::{
    greedy_cover, naive_cover, select_cover, CoverConfig, CoverPlan, CoverStrategy, IndexRow,
    IndexTable,
};
pub use gaussian::{circular_mean, circular_std, fit_phase, Gaussian};
pub use gmm::{Gmm, GmmConfig, Mode, Observation};
pub use history::{History, ReadingSample, TagRecord};
pub use motion::{AnyDetector, Detector, DiffDetector, Feature, MogDetector, MotionAssessor};
pub use scheduler::{build_schedule, ReadAllReason, Schedule, ScheduleMode};

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use crate::config::{DetectorKind, SchedulingMode, TagwatchConfig};
    pub use crate::controller::{Controller, CycleReport};
    pub use crate::cover::{select_cover, CoverConfig, CoverPlan};
    pub use crate::gmm::{Gmm, GmmConfig, Observation};
    pub use crate::metrics;
    pub use crate::motion::{Detector, DiffDetector, MogDetector, MotionAssessor};
    pub use crate::scheduler::ScheduleMode;
    pub use tagwatch_gen2::{BitMask, CostModel, Epc};
}
