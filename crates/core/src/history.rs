//! The reading-history database (§3: "all readings should be delivered to
//! upper applications and contribute to the history database").
//!
//! Keeps a bounded per-tag ring of recent readings, powering IRR
//! accounting, eviction of long-absent tags (§4.3 "reading exceptions"),
//! and re-training after environment changes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use tagwatch_gen2::Epc;
use tagwatch_reader::TagReport;
use tagwatch_rf::RfMeasurement;

/// One stored reading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadingSample {
    /// The RF measurement (includes the timestamp).
    pub rf: RfMeasurement,
}

/// Per-tag history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TagRecord {
    /// The tag's EPC.
    pub epc: Epc,
    /// Recent readings, oldest first, bounded by the history capacity.
    readings: VecDeque<ReadingSample>,
    /// Time of first reading ever.
    pub first_seen: f64,
    /// Time of most recent reading.
    pub last_seen: f64,
    /// Total readings ever recorded (not bounded).
    pub total_reads: u64,
}

impl TagRecord {
    /// The retained readings, oldest first.
    pub fn readings(&self) -> impl Iterator<Item = &ReadingSample> {
        self.readings.iter()
    }

    /// Number of retained readings.
    pub fn len(&self) -> usize {
        self.readings.len()
    }

    /// Whether no readings are retained.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }

    /// Readings within the last `window` seconds before `now`.
    pub fn reads_in_window(&self, now: f64, window: f64) -> usize {
        self.readings
            .iter()
            .filter(|s| s.rf.t > now - window && s.rf.t <= now)
            .count()
    }

    /// Individual reading rate over the trailing `window` seconds.
    pub fn irr(&self, now: f64, window: f64) -> f64 {
        if window <= 0.0 {
            return 0.0;
        }
        self.reads_in_window(now, window) as f64 / window
    }
}

/// The history database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct History {
    tags: BTreeMap<Epc, TagRecord>,
    /// Per-tag retained-reading cap.
    pub capacity_per_tag: usize,
}

impl History {
    /// A database retaining up to `capacity_per_tag` readings per tag.
    pub fn new(capacity_per_tag: usize) -> Self {
        assert!(capacity_per_tag > 0, "capacity must be positive");
        History {
            tags: BTreeMap::new(),
            capacity_per_tag,
        }
    }

    /// Records one reader report.
    pub fn record(&mut self, report: &TagReport) {
        let cap = self.capacity_per_tag;
        let rec = self.tags.entry(report.epc).or_insert_with(|| TagRecord {
            epc: report.epc,
            readings: VecDeque::with_capacity(cap.min(256)),
            first_seen: report.rf.t,
            last_seen: report.rf.t,
            total_reads: 0,
        });
        if rec.readings.len() == cap {
            rec.readings.pop_front();
        }
        rec.readings.push_back(ReadingSample { rf: report.rf });
        rec.last_seen = report.rf.t;
        rec.total_reads += 1;
    }

    /// Record of one tag, if known.
    pub fn tag(&self, epc: &Epc) -> Option<&TagRecord> {
        self.tags.get(epc)
    }

    /// All known EPCs (arbitrary order).
    pub fn known_epcs(&self) -> impl Iterator<Item = &Epc> {
        self.tags.keys()
    }

    /// Number of known tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Drops tags not seen for `timeout` seconds ("If one tag leaves for a
    /// long while, the system will remove its models for saving memory").
    /// Returns the evicted EPCs.
    pub fn evict_absent(&mut self, now: f64, timeout: f64) -> Vec<Epc> {
        let stale: Vec<Epc> = self
            .tags
            .iter()
            .filter(|(_, r)| now - r.last_seen > timeout)
            .map(|(e, _)| *e)
            .collect();
        for e in &stale {
            self.tags.remove(e);
        }
        stale
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact literals that the code stores or copies
    // untouched; approximate comparison would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    fn report(epc: u128, t: f64) -> TagReport {
        TagReport {
            epc: Epc::from_bits(epc),
            tag_idx: 0,
            rf: RfMeasurement {
                phase: 1.0,
                rss_dbm: -50.0,
                channel: 0,
                freq_hz: 922.5e6,
                antenna: 1,
                t,
            },
        }
    }

    #[test]
    fn record_and_irr() {
        let mut h = History::new(100);
        for k in 0..10 {
            h.record(&report(5, k as f64 * 0.1));
        }
        let rec = h.tag(&Epc::from_bits(5)).unwrap();
        assert_eq!(rec.total_reads, 10);
        assert_eq!(rec.first_seen, 0.0);
        assert!((rec.last_seen - 0.9).abs() < 1e-12);
        // 10 reads in the trailing 1 s window ending just after the last
        // read (the window is half-open (now−w, now], so a window ending
        // exactly at t=1.0 would exclude the t=0.0 read).
        assert!((rec.irr(0.95, 1.0) - 10.0).abs() < 1e-9);
        assert_eq!(rec.reads_in_window(1.0, 1.0), 9);
        // Only the last 5 fall in a 0.45 s window ending at 0.9.
        assert_eq!(rec.reads_in_window(0.9, 0.45), 5);
    }

    #[test]
    fn capacity_bounds_memory_but_not_totals() {
        let mut h = History::new(4);
        for k in 0..10 {
            h.record(&report(7, k as f64));
        }
        let rec = h.tag(&Epc::from_bits(7)).unwrap();
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.total_reads, 10);
        // Oldest retained reading is t = 6.
        assert_eq!(rec.readings().next().unwrap().rf.t, 6.0);
    }

    #[test]
    fn eviction_removes_stale_tags() {
        let mut h = History::new(10);
        h.record(&report(1, 0.0));
        h.record(&report(2, 50.0));
        let evicted = h.evict_absent(60.0, 30.0);
        assert_eq!(evicted, vec![Epc::from_bits(1)]);
        assert_eq!(h.len(), 1);
        assert!(h.tag(&Epc::from_bits(2)).is_some());
    }

    #[test]
    fn zero_window_irr_is_zero() {
        let mut h = History::new(10);
        h.record(&report(1, 0.0));
        assert_eq!(h.tag(&Epc::from_bits(1)).unwrap().irr(1.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        History::new(0);
    }
}
