//! Phase-I motion assessment: per-tag detectors over reader reports.
//!
//! A detector consumes the stream of [`RfMeasurement`]s of *one tag* and
//! emits, per reading, whether that reading is evidence of motion. Four
//! detector families reproduce the paper's Fig. 12 comparison:
//!
//! * **Phase-MoG** — the paper's design: a self-learning [`Gmm`] per RF
//!   link (antenna × channel), since hardware phase offsets differ per
//!   link (§4.1's Gaussian models are implicitly per-link; with 16-channel
//!   hopping a single mixture would thrash).
//! * **RSS-MoG** — same machinery over RSS.
//! * **Phase-differencing / RSS-differencing** — the naive baselines that
//!   compare each reading with the previous one.
//!
//! [`MotionAssessor`] aggregates per-reading evidence into the per-cycle
//! mobile/stationary decision Phase II consumes.

use crate::gmm::{Gmm, GmmConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tagwatch_rf::{circ_dist, RfMeasurement};

/// Which physical quantity a detector watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Feature {
    /// RF phase (radians, circular).
    Phase,
    /// RSS (dBm, linear).
    Rss,
}

/// A per-tag, per-reading motion detector.
pub trait Detector {
    /// Consumes one reading of the tag; returns `true` if it is evidence
    /// of motion.
    fn observe(&mut self, m: &RfMeasurement) -> bool;

    /// Classifies without updating internal state (for held-out testing).
    fn classify(&self, m: &RfMeasurement) -> bool;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// RF link identity: measurements from different (antenna, channel) pairs
/// have unrelated phase offsets and must be modelled separately. Packed
/// into a single integer (`antenna << 8 | channel`) so detector state
/// serializes to JSON (map keys must be strings or integers).
type LinkKey = u16;

fn link_key(m: &RfMeasurement) -> LinkKey {
    pack_link(m.antenna, m.channel)
}

#[inline]
fn pack_link(antenna: u8, channel: u8) -> LinkKey {
    (antenna as u16) << 8 | channel as u16
}

fn feature_value(feature: Feature, m: &RfMeasurement) -> f64 {
    match feature {
        Feature::Phase => m.phase,
        Feature::Rss => m.rss_dbm,
    }
}

/// Mixture-of-Gaussians detector (the paper's Phase-MoG / RSS-MoG).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MogDetector {
    feature: Feature,
    cfg: GmmConfig,
    links: BTreeMap<LinkKey, Gmm>,
}

impl MogDetector {
    /// The paper's default detector: Phase-MoG with §6 parameters.
    pub fn phase() -> Self {
        MogDetector {
            feature: Feature::Phase,
            cfg: GmmConfig::phase_defaults(),
            links: BTreeMap::new(),
        }
    }

    /// RSS-MoG baseline.
    pub fn rss() -> Self {
        MogDetector {
            feature: Feature::Rss,
            cfg: GmmConfig::rss_defaults(),
            links: BTreeMap::new(),
        }
    }

    /// Phase-MoG with explicit mixture parameters.
    pub fn phase_with(cfg: GmmConfig) -> Self {
        MogDetector {
            feature: Feature::Phase,
            cfg,
            links: BTreeMap::new(),
        }
    }

    /// RSS-MoG with explicit mixture parameters. Note the caller is
    /// responsible for dB-scale σ values (see [`GmmConfig::rss_defaults`]).
    pub fn rss_with(cfg: GmmConfig) -> Self {
        MogDetector {
            feature: Feature::Rss,
            cfg,
            links: BTreeMap::new(),
        }
    }

    /// Override the match threshold ξ (the ROC sweep variable).
    pub fn with_xi(mut self, xi: f64) -> Self {
        self.cfg.xi = xi;
        for gmm in self.links.values_mut() {
            // Keep already-created links consistent.
            *gmm = match self.feature {
                Feature::Phase => Gmm::phase(self.cfg),
                Feature::Rss => Gmm::rss(self.cfg),
            };
        }
        self
    }

    /// The GMM for one link, if created.
    pub fn link(&self, antenna: u8, channel: u8) -> Option<&Gmm> {
        self.links.get(&pack_link(antenna, channel))
    }

    /// Number of per-link mixtures currently held.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    fn gmm_for(&mut self, key: LinkKey) -> &mut Gmm {
        let (feature, cfg) = (self.feature, self.cfg);
        self.links.entry(key).or_insert_with(|| match feature {
            Feature::Phase => Gmm::phase(cfg),
            Feature::Rss => Gmm::rss(cfg),
        })
    }
}

impl Detector for MogDetector {
    fn observe(&mut self, m: &RfMeasurement) -> bool {
        let x = feature_value(self.feature, m);
        self.gmm_for(link_key(m)).observe(x).is_motion()
    }

    fn classify(&self, m: &RfMeasurement) -> bool {
        let x = feature_value(self.feature, m);
        match self.links.get(&link_key(m)) {
            Some(gmm) => gmm.classify(x).is_motion(),
            None => true, // unseen link: assume motion (paper's prior)
        }
    }

    fn name(&self) -> &'static str {
        match self.feature {
            Feature::Phase => "Phase-MoG",
            Feature::Rss => "RSS-MoG",
        }
    }
}

/// Naive differencing detector: compare each reading with the previous one
/// on the same link (the paper's Phase/RSS-differencing baselines).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiffDetector {
    feature: Feature,
    /// Motion threshold: radians for phase, dB for RSS.
    pub threshold: f64,
    last: BTreeMap<LinkKey, f64>,
}

impl DiffDetector {
    /// Phase differencing with threshold in radians.
    pub fn phase(threshold: f64) -> Self {
        DiffDetector {
            feature: Feature::Phase,
            threshold,
            last: BTreeMap::new(),
        }
    }

    /// RSS differencing with threshold in dB.
    pub fn rss(threshold: f64) -> Self {
        DiffDetector {
            feature: Feature::Rss,
            threshold,
            last: BTreeMap::new(),
        }
    }

    fn delta(&self, m: &RfMeasurement) -> Option<f64> {
        let x = feature_value(self.feature, m);
        self.last.get(&link_key(m)).map(|&prev| match self.feature {
            Feature::Phase => circ_dist(x, prev),
            Feature::Rss => (x - prev).abs(),
        })
    }
}

impl Detector for DiffDetector {
    fn observe(&mut self, m: &RfMeasurement) -> bool {
        let verdict = self.classify(m);
        self.last
            .insert(link_key(m), feature_value(self.feature, m));
        verdict
    }

    fn classify(&self, m: &RfMeasurement) -> bool {
        match self.delta(m) {
            Some(d) => d > self.threshold,
            None => true, // first reading on a link: assume motion
        }
    }

    fn name(&self) -> &'static str {
        match self.feature {
            Feature::Phase => "Phase-differencing",
            Feature::Rss => "RSS-differencing",
        }
    }
}

/// A concrete, serializable detector — the closed set of detector
/// families the middleware ships. (An enum rather than a trait object so
/// that per-tag state can be snapshotted and restored across process
/// restarts; see [`crate::Controller::snapshot`].)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AnyDetector {
    /// Mixture-of-Gaussians over phase or RSS.
    Mog(MogDetector),
    /// Naive differencing over phase or RSS.
    Diff(DiffDetector),
}

impl Detector for AnyDetector {
    fn observe(&mut self, m: &RfMeasurement) -> bool {
        match self {
            AnyDetector::Mog(d) => d.observe(m),
            AnyDetector::Diff(d) => d.observe(m),
        }
    }

    fn classify(&self, m: &RfMeasurement) -> bool {
        match self {
            AnyDetector::Mog(d) => d.classify(m),
            AnyDetector::Diff(d) => d.classify(m),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyDetector::Mog(d) => d.name(),
            AnyDetector::Diff(d) => d.name(),
        }
    }
}

impl From<MogDetector> for AnyDetector {
    fn from(d: MogDetector) -> Self {
        AnyDetector::Mog(d)
    }
}

impl From<DiffDetector> for AnyDetector {
    fn from(d: DiffDetector) -> Self {
        AnyDetector::Diff(d)
    }
}

/// Per-tag assessment state driving the Phase-I decision.
///
/// Evidence is aggregated per cycle: a tag is declared mobile if at least
/// `min_votes` of its readings in the current assessment window were motion
/// evidence. The default (1) matches the paper's urgency bias — any
/// unexplained phase is enough to schedule the tag.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MotionAssessor {
    detector: AnyDetector,
    votes: usize,
    readings: usize,
    /// Minimum motion votes per assessment window to declare the tag
    /// mobile.
    pub min_votes: usize,
    /// Minimum fraction of the window's readings that must be motion
    /// evidence. Filters out the occasional false-positive reading of a
    /// heavily read (e.g. collateral) stationary tag. The default (0.25)
    /// sits above the per-reading FPR of the ξ = 3 operating point in a
    /// busy environment (~0.1–0.16) and below a genuine mover's typical
    /// vote share (≥ 0.4); it also still catches a once-displaced tag
    /// seen only in Phase I (1 vote in ≤ 4 reads).
    pub min_fraction: f64,
    /// Absolute time of the last reading fed (for eviction).
    pub last_seen: f64,
}

impl MotionAssessor {
    /// The paper's default assessor (Phase-MoG).
    pub fn new() -> Self {
        Self::with_detector(MogDetector::phase().into())
    }

    /// An assessor around any detector (for baselines).
    pub fn with_detector(detector: AnyDetector) -> Self {
        MotionAssessor {
            detector,
            votes: 0,
            readings: 0,
            min_votes: 1,
            min_fraction: 0.25,
            last_seen: 0.0,
        }
    }

    /// Starts a new assessment window (beginning of Phase I).
    pub fn begin_cycle(&mut self) {
        self.votes = 0;
        self.readings = 0;
    }

    /// Feeds one reading; returns this reading's motion verdict.
    pub fn feed(&mut self, m: &RfMeasurement) -> bool {
        let motion = self.detector.observe(m);
        self.readings += 1;
        if motion {
            self.votes += 1;
        }
        self.last_seen = m.t;
        motion
    }

    /// The cycle decision: is the tag mobile?
    ///
    /// A tag with no readings this cycle yields `false` — it cannot be
    /// scheduled from silence (the controller handles disappearance
    /// separately).
    pub fn assess(&self) -> bool {
        self.readings > 0
            && self.votes >= self.min_votes
            && self.votes as f64 / self.readings as f64 >= self.min_fraction
    }

    /// Readings seen this cycle.
    pub fn readings_this_cycle(&self) -> usize {
        self.readings
    }

    /// Motion votes this cycle.
    pub fn votes_this_cycle(&self) -> usize {
        self.votes
    }
}

impl Default for MotionAssessor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tagwatch_rf::{sample_normal, wrap_2pi};

    fn meas(phase: f64, rss: f64, antenna: u8, channel: u8, t: f64) -> RfMeasurement {
        RfMeasurement {
            phase: wrap_2pi(phase),
            rss_dbm: rss,
            channel,
            freq_hz: 922.5e6,
            antenna,
            t,
        }
    }

    fn train_static(det: &mut dyn Detector, center: f64, n: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for k in 0..n {
            let p = sample_normal(&mut rng, center, 0.08);
            det.observe(&meas(p, -50.0, 1, 0, k as f64 * 0.02));
        }
    }

    #[test]
    fn phase_mog_detects_displacement_after_training() {
        let mut det = MogDetector::phase();
        train_static(&mut det, 1.5, 400, 1);
        // In-cluster reading: stationary.
        assert!(!det.classify(&meas(1.55, -50.0, 1, 0, 10.0)));
        // 0.4 rad away (≈1 cm displacement): motion.
        assert!(det.classify(&meas(1.5 + 0.4, -50.0, 1, 0, 10.0)));
    }

    #[test]
    fn per_link_models_are_independent() {
        let mut det = MogDetector::phase();
        train_static(&mut det, 1.0, 400, 2);
        assert_eq!(det.link_count(), 1);
        // Same tag, different channel: fresh model → motion (unknown link).
        assert!(det.classify(&meas(1.0, -50.0, 1, 5, 10.0)));
        // Observing on the new link creates a second mixture.
        det.observe(&meas(2.5, -50.0, 1, 5, 10.0));
        assert_eq!(det.link_count(), 2);
        // The original link's model is untouched.
        assert!(!det.classify(&meas(1.0, -50.0, 1, 0, 11.0)));
    }

    #[test]
    fn rss_mog_is_insensitive_to_small_phase_changes() {
        let mut det = MogDetector::rss();
        train_static(&mut det, 1.0, 400, 3);
        // Phase swings wildly but RSS constant → no motion.
        assert!(!det.classify(&meas(4.0, -50.0, 1, 0, 10.0)));
        // Large RSS jump → motion.
        assert!(det.classify(&meas(1.0, -20.0, 1, 0, 10.0)));
    }

    #[test]
    fn diff_detectors_flag_jumps_only() {
        let mut det = DiffDetector::phase(0.3);
        assert!(det.observe(&meas(1.0, -50.0, 1, 0, 0.0))); // first: motion
        assert!(!det.observe(&meas(1.05, -50.0, 1, 0, 0.1)));
        assert!(det.observe(&meas(2.0, -50.0, 1, 0, 0.2)));
        // Wrap-aware: 2π−0.01 vs 0.02 is a small step.
        let mut det = DiffDetector::phase(0.3);
        det.observe(&meas(std::f64::consts::TAU - 0.01, -50.0, 1, 0, 0.0));
        assert!(!det.observe(&meas(0.02, -50.0, 1, 0, 0.1)));
    }

    #[test]
    fn diff_rss_uses_db_threshold() {
        let mut det = DiffDetector::rss(2.0);
        det.observe(&meas(1.0, -50.0, 1, 0, 0.0));
        assert!(!det.observe(&meas(1.0, -51.0, 1, 0, 0.1)));
        assert!(det.observe(&meas(1.0, -55.0, 1, 0, 0.2)));
    }

    #[test]
    fn assessor_aggregates_cycle_votes() {
        let mut assessor = MotionAssessor::new();
        // Train the underlying detector through the assessor.
        let mut rng = StdRng::seed_from_u64(4);
        for k in 0..300 {
            let p = sample_normal(&mut rng, 2.0, 0.08);
            assessor.feed(&meas(p, -50.0, 1, 0, k as f64 * 0.02));
        }
        // New cycle, stationary readings → not mobile.
        assessor.begin_cycle();
        for k in 0..3 {
            let p = sample_normal(&mut rng, 2.0, 0.08);
            assessor.feed(&meas(p, -50.0, 1, 0, 10.0 + k as f64 * 0.02));
        }
        assert!(!assessor.assess(), "stationary cycle flagged mobile");
        // New cycle with a displaced reading → mobile.
        assessor.begin_cycle();
        assessor.feed(&meas(2.0 + 0.8, -50.0, 1, 0, 11.0));
        assert!(assessor.assess());
        assert_eq!(assessor.votes_this_cycle(), 1);
    }

    #[test]
    fn assessor_empty_cycle_is_not_mobile() {
        let mut assessor = MotionAssessor::new();
        assessor.begin_cycle();
        assert!(!assessor.assess());
        assert_eq!(assessor.readings_this_cycle(), 0);
    }

    #[test]
    fn brand_new_tag_is_mobile() {
        // Paper: "Initially, we assume all the tags are in motion".
        let mut assessor = MotionAssessor::new();
        assessor.begin_cycle();
        assessor.feed(&meas(1.0, -50.0, 1, 0, 0.0));
        assert!(assessor.assess());
    }

    #[test]
    fn xi_controls_sensitivity() {
        // Larger ξ → wider match band → less motion evidence.
        let mk = |xi: f64| {
            let mut det = MogDetector::phase().with_xi(xi);
            train_static(&mut det, 1.0, 400, 5);
            det
        };
        let strict = mk(1.0);
        let loose = mk(8.0);
        let probe = meas(1.0 + 0.35, -50.0, 1, 0, 10.0);
        assert!(strict.classify(&probe));
        assert!(!loose.classify(&probe));
    }

    #[test]
    fn detector_names() {
        assert_eq!(MogDetector::phase().name(), "Phase-MoG");
        assert_eq!(MogDetector::rss().name(), "RSS-MoG");
        assert_eq!(DiffDetector::phase(0.1).name(), "Phase-differencing");
        assert_eq!(DiffDetector::rss(1.0).name(), "RSS-differencing");
    }
}
