//! Single-Gaussian phase statistics (§4.1, Eqn. 7–9) with circular
//! arithmetic.
//!
//! RF phase lives on a circle: §4.3 of the paper ("How to deal with phase
//! jumps?") prescribes the *minimum distance* rule, which we apply in the
//! density, the matching test, and the mean updates. RSS statistics use the
//! same code with the circular flag off.

use serde::{Deserialize, Serialize};
use tagwatch_rf::{circ_diff, circ_dist, wrap_2pi};

/// A single Gaussian over phase (circular) or RSS (linear).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    /// Mean (radians if circular, dB if linear).
    pub mean: f64,
    /// Standard deviation.
    pub sigma: f64,
    /// Whether the variable lives on `[0, 2π)`.
    pub circular: bool,
}

impl Gaussian {
    /// A circular (phase) Gaussian.
    pub fn phase(mean: f64, sigma: f64) -> Self {
        Gaussian {
            mean: wrap_2pi(mean),
            sigma,
            circular: true,
        }
    }

    /// A linear (RSS) Gaussian.
    pub fn linear(mean: f64, sigma: f64) -> Self {
        Gaussian {
            mean,
            sigma,
            circular: false,
        }
    }

    /// Distance from `x` to the mean, respecting circularity.
    #[inline]
    pub fn distance(&self, x: f64) -> f64 {
        if self.circular {
            circ_dist(x, self.mean)
        } else {
            (x - self.mean).abs()
        }
    }

    /// Signed deviation `x - mean` (shortest way around if circular).
    #[inline]
    pub fn deviation(&self, x: f64) -> f64 {
        if self.circular {
            circ_diff(x, self.mean)
        } else {
            x - self.mean
        }
    }

    /// The paper's match rule: `|x − μ| < ξ·δ` (Eqn. after 9).
    #[inline]
    pub fn matches(&self, x: f64, xi: f64) -> bool {
        self.distance(x) < xi * self.sigma
    }

    /// The probability density `η(x; μ, δ)` (Eqn. 9), using the circular
    /// minimum distance in the exponent.
    pub fn density(&self, x: f64) -> f64 {
        if self.sigma <= 0.0 {
            return 0.0;
        }
        let d = self.distance(x);
        (-(d * d) / (2.0 * self.sigma * self.sigma)).exp()
            / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Moves the mean a fraction `rho` of the way toward `x` (Eqn. 11,
    /// second line), staying on the circle when circular.
    pub fn nudge_mean(&mut self, x: f64, rho: f64) {
        let step = rho * self.deviation(x);
        self.mean = if self.circular {
            wrap_2pi(self.mean + step)
        } else {
            self.mean + step
        };
    }
}

/// Circular mean of phase samples (resultant-vector direction). Returns 0
/// for an empty slice.
pub fn circular_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let (mut c, mut s) = (0.0, 0.0);
    for &v in values {
        c += v.cos();
        s += v.sin();
    }
    wrap_2pi(s.atan2(c))
}

/// Circular standard deviation around `mean` via minimum distances —
/// the sample version of Eqn. 8 with the §4.3 wrap fix.
pub fn circular_std(values: &[f64], mean: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let ss: f64 = values
        .iter()
        .map(|&v| {
            let d = circ_dist(v, mean);
            d * d
        })
        .sum();
    (ss / values.len() as f64).sqrt()
}

/// Batch-fits a phase Gaussian from history samples (Eqn. 8).
pub fn fit_phase(values: &[f64]) -> Gaussian {
    let mean = circular_mean(values);
    Gaussian::phase(mean, circular_std(values, mean))
}

#[cfg(test)]
mod tests {
    // Tests assert exact literals that the code stores or copies
    // untouched; approximate comparison would weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use std::f64::consts::TAU;

    #[test]
    fn match_rule_examples_from_paper() {
        // §4.3's worked example: μ = 0.02, δ = 0.1, ξ = 3; the measurement
        // 2π − 0.01 must match (min distance 0.03 < 0.3).
        let g = Gaussian::phase(0.02, 0.1);
        assert!(g.matches(TAU - 0.01, 3.0));
        // A genuinely distant value must not.
        assert!(!g.matches(1.0, 3.0));
    }

    #[test]
    fn linear_gaussian_does_not_wrap() {
        let g = Gaussian::linear(0.02, 0.1);
        assert!(!g.matches(TAU - 0.01, 3.0));
        assert!(g.matches(0.05, 3.0));
    }

    #[test]
    fn density_peaks_at_mean() {
        let g = Gaussian::phase(1.0, 0.2);
        assert!(g.density(1.0) > g.density(1.3));
        assert!(g.density(1.3) > g.density(2.0));
        // Density respects circular distance: a point just below 2π is
        // close to a mean just above 0.
        let g = Gaussian::phase(0.05, 0.2);
        assert!(g.density(TAU - 0.05) > g.density(1.0));
    }

    #[test]
    fn density_zero_sigma_guard() {
        let g = Gaussian::phase(1.0, 0.0);
        assert_eq!(g.density(1.0), 0.0);
    }

    #[test]
    fn nudge_wraps_correctly() {
        let mut g = Gaussian::phase(0.1, 0.1);
        // Target just below 2π: the shortest way is backwards through 0.
        g.nudge_mean(TAU - 0.1, 0.5);
        assert!(
            g.mean > TAU - 0.2 || g.mean < 0.1,
            "mean moved the short way: {}",
            g.mean
        );
        let mut lin = Gaussian::linear(0.0, 1.0);
        lin.nudge_mean(10.0, 0.1);
        assert!((lin.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circular_mean_handles_wrap_cluster() {
        // Samples straddling 0: naive mean would be ~π, circular mean ~0.
        let vals = [0.1, TAU - 0.1, 0.05, TAU - 0.05];
        let m = circular_mean(&vals);
        assert!(!(0.1..=TAU - 0.1).contains(&m), "mean {m}");
        let sd = circular_std(&vals, m);
        assert!(sd < 0.15, "std {sd}");
    }

    #[test]
    fn fit_phase_recovers_cluster() {
        let vals: Vec<f64> = (0..100)
            .map(|k| 2.0 + 0.05 * ((k as f64) * 0.7).sin())
            .collect();
        let g = fit_phase(&vals);
        assert!((g.mean - 2.0).abs() < 0.05);
        assert!(g.sigma < 0.06);
        assert!(g.circular);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(circular_mean(&[]), 0.0);
        assert_eq!(circular_std(&[], 0.0), 0.0);
    }
}
