//! # tagwatch-monitor — the live observability plane
//!
//! Online, single-pass counterparts of the `tagwatch-obs` batch analyzers
//! plus the machinery to run them *while* a simulation is writing its
//! telemetry stream:
//!
//! * **Verdicts** ([`verdict`]) — the per-tag IRR, starvation, detector
//!   confusion, Q-adaptation, and fault-attribution result types shared
//!   with the batch analyzers. `tagwatch-obs` re-exports them, so a batch
//!   [`TagSummary`] and an online one are literally the same type.
//! * **Incremental analyzers** ([`online`]) — accumulators that consume
//!   one [`Event`](tagwatch_telemetry::Event) at a time and finalize into
//!   the shared verdicts. On a closed trace the finalized verdicts are
//!   byte-identical (as serialized JSON) to the batch analyzers', because
//!   both paths run the *same* accumulator + finalize code.
//! * **Snapshots** ([`snapshot`]) — a schema-versioned [`MonitorSnapshot`]
//!   written atomically (`tmp` + rename) so an external watcher never
//!   reads a half-written status file, plus a Prometheus-style text
//!   exposition ([`exposition`]).
//! * **The tee sink** ([`sink`]) — [`MonitorSink`] wraps any inner
//!   [`Sink`](tagwatch_telemetry::Sink), forwards every event unmodified,
//!   and drives the online analyzers from the sim-deterministic subset.
//!   Flushes are keyed to the *simulated* clock, so enabling monitoring
//!   cannot perturb a deterministic run.
//! * **The watchdog** ([`watchdog`]) — staleness, ring-drop, sampling
//!   starvation, and fault-envelope early-warning alarms, fed back into
//!   the trace as `alarm.*` tag events that the batch analyzers ignore
//!   but a human reading the trace (or `obs tail`) sees in place.
//! * **Following** ([`follow`]) — [`TraceFollower`] incrementally reads a
//!   growing JSONL trace, tolerating a mid-record tail that has not been
//!   fully written yet (`obs tail`'s engine).
//!
//! Std-only: serde/serde_json for the wire forms, `tagwatch-telemetry`
//! for the event model, `tagwatch-fault` for the degradation envelope.

#![forbid(unsafe_code)]
pub mod exposition;
pub mod follow;
pub mod online;
pub mod sink;
pub mod snapshot;
pub mod verdict;
pub mod watchdog;

pub use follow::{FollowError, TraceFollower};
pub use online::{
    ConfusionAccum, FaultAccum, OnlineAnalyzers, OnlineConfig, OnlineVerdicts, QAccum,
    SimWindowAccum, TagAccum, WindowStats,
};
pub use sink::{MonitorConfig, MonitorSink};
pub use snapshot::{
    MonitorSnapshot, SnapshotError, EXPOSITION_FILE, MONITOR_SCHEMA_VERSION, STATUS_FILE,
};
pub use verdict::{
    epc_hex, ConfusionSummary, FaultReport, FaultWindow, QDiagnostics, StarvationEvent,
    StarvationReport, TagStats, TagSummary,
};
pub use watchdog::{Alarm, Watchdog, WatchdogConfig};
