//! Run health watchdog: watches the live event stream for conditions a
//! human staring at `obs tail` would want flagged *now* rather than in
//! the post-run report:
//!
//! * **Staleness** — the simulated clock jumped by more than the
//!   configured gap between consecutive events, i.e. a stretch of the
//!   run produced no telemetry at all.
//! * **Ring drop rate** — a flight-recorder [`RingSink`]
//!   (`tagwatch_telemetry::RingSink`) is shedding more than the
//!   configured fraction of events, so its dump will have holes.
//! * **Sampling starvation** — with 1-in-n round sampling enabled,
//!   several consecutive cycles closed without a single round-level
//!   event: round visibility has starved out of the stream.
//! * **Envelope early warning** — during a `fault-run`, a closing fault
//!   window's reading rate has already fallen through the plan's
//!   whole-run degradation floor ([`Envelope::early_warning`]).
//!
//! Alarms are deterministic functions of the (deterministic) event
//! stream and configuration, so feeding them back into the trace as
//! `alarm.*` tag events keeps the trace reproducible run over run.

use serde::{Deserialize, Serialize};
use tagwatch_fault::Envelope;

/// One raised alarm. Serialized into [`MonitorSnapshot`]
/// (crate::snapshot::MonitorSnapshot) and mirrored into the trace as an
/// `alarm.<kind>` tag event whose `epc` is `seq` and whose `t` is the
/// trace's simulated edge when the alarm fired.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// Alarm kind slug: `stale`, `ring_drop`, `sampling_starvation`,
    /// or `envelope`.
    pub kind: String,
    /// Sequence number (0-based, firing order).
    pub seq: u64,
    /// Simulated time at the trace edge when the alarm fired.
    pub t: f64,
    /// Human-readable one-liner.
    pub detail: String,
}

#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Simulated seconds without any sim-clocked event before a `stale`
    /// alarm fires.
    pub stale_after: f64,
    /// `dropped / seen` fraction above which the ring-drop alarm fires
    /// (latched: at most once per run).
    pub ring_drop_rate: f64,
    /// The stream's 1-in-n round sampling factor (1 = unsampled). With
    /// n > 1, `n.max(2)` consecutive cycles without a single round
    /// event raise the sampling-starvation alarm (latched).
    pub sample_every_n_rounds: u32,
    /// Degradation envelope for fault-window early warnings; `None`
    /// outside fault runs.
    pub envelope: Option<Envelope>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stale_after: 30.0,
            ring_drop_rate: 0.01,
            sample_every_n_rounds: 1,
            envelope: None,
        }
    }
}

#[derive(Debug, Clone, Default)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    last_sim: Option<f64>,
    cycles_without_rounds: u32,
    rounds_in_cycle: bool,
    ring_latched: bool,
    sampling_latched: bool,
    alarms: Vec<Alarm>,
    drained: usize,
}

impl Watchdog {
    pub fn new(cfg: WatchdogConfig) -> Watchdog {
        Watchdog {
            cfg,
            ..Watchdog::default()
        }
    }

    fn raise(&mut self, kind: &str, t: f64, detail: String) {
        self.alarms.push(Alarm {
            kind: kind.to_string(),
            seq: self.alarms.len() as u64,
            t,
            detail,
        });
    }

    /// A sim-clocked event landed at simulated time `t` (span end or
    /// tag timestamp). Detects retrospective staleness: the gap since
    /// the previous sim instant exceeded the threshold.
    pub fn on_sim_instant(&mut self, t: f64) {
        if let Some(last) = self.last_sim {
            let gap = t - last;
            if gap > self.cfg.stale_after {
                self.raise(
                    "stale",
                    t,
                    format!(
                        "no events for {gap:.3} sim-s (> {:.3})",
                        self.cfg.stale_after
                    ),
                );
            }
            if t > last {
                self.last_sim = Some(t);
            }
        } else {
            self.last_sim = Some(t);
        }
    }

    /// A round-level event (round span) was delivered.
    pub fn on_round(&mut self) {
        self.rounds_in_cycle = true;
    }

    /// A cycle span closed. With sampling enabled, counts consecutive
    /// cycles that delivered no round events.
    pub fn on_cycle(&mut self, t: f64) {
        if self.cfg.sample_every_n_rounds <= 1 || self.sampling_latched {
            self.rounds_in_cycle = false;
            return;
        }
        if self.rounds_in_cycle {
            self.cycles_without_rounds = 0;
        } else {
            self.cycles_without_rounds += 1;
            let bar = self.cfg.sample_every_n_rounds.max(2);
            if self.cycles_without_rounds >= bar {
                self.sampling_latched = true;
                self.raise(
                    "sampling_starvation",
                    t,
                    format!(
                        "{} consecutive cycles with no round events (1-in-{} sampling)",
                        self.cycles_without_rounds, self.cfg.sample_every_n_rounds
                    ),
                );
            }
        }
        self.rounds_in_cycle = false;
    }

    /// Flight-recorder occupancy poll (call at flush time).
    pub fn on_ring(&mut self, dropped: u64, seen: u64, t: f64) {
        if self.ring_latched || seen == 0 {
            return;
        }
        let rate = dropped as f64 / seen as f64;
        if rate > self.cfg.ring_drop_rate {
            self.ring_latched = true;
            self.raise(
                "ring_drop",
                t,
                format!(
                    "ring sink dropping {:.1}% of events (> {:.1}%)",
                    rate * 100.0,
                    self.cfg.ring_drop_rate * 100.0
                ),
            );
        }
    }

    /// A fault window just closed with aggregate rate `faulted_irr`
    /// against the clean-time rate `clean_irr`. Fires when the window
    /// has already fallen through the envelope's whole-run floor.
    pub fn on_fault_close(&mut self, slug: &str, faulted_irr: f64, clean_irr: f64, t: f64) {
        let Some(env) = &self.cfg.envelope else {
            return;
        };
        if let Some(ratio) = env.early_warning(faulted_irr, clean_irr) {
            self.raise(
                "envelope",
                t,
                format!(
                    "{slug}: window IRR at {:.1}% of clean (< {:.1}% floor)",
                    ratio * 100.0,
                    env.irr_floor_ratio * 100.0
                ),
            );
        }
    }

    /// All alarms raised so far, in firing order.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Alarms raised since the previous drain (for trace injection).
    pub fn drain_new(&mut self) -> Vec<Alarm> {
        let new = self.alarms[self.drained..].to_vec();
        self.drained = self.alarms.len();
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_gap_raises_and_clock_never_rewinds() {
        let mut w = Watchdog::new(WatchdogConfig {
            stale_after: 5.0,
            ..WatchdogConfig::default()
        });
        w.on_sim_instant(0.0);
        w.on_sim_instant(4.0);
        assert!(w.alarms().is_empty());
        w.on_sim_instant(10.0);
        assert_eq!(w.alarms().len(), 1);
        assert_eq!(w.alarms()[0].kind, "stale");
        // An out-of-order instant must not rewind the reference point.
        w.on_sim_instant(2.0);
        w.on_sim_instant(12.0);
        assert_eq!(w.alarms().len(), 1, "10→12 is not stale");
    }

    #[test]
    fn sampling_starvation_needs_consecutive_empty_cycles() {
        let mut w = Watchdog::new(WatchdogConfig {
            sample_every_n_rounds: 3,
            ..WatchdogConfig::default()
        });
        w.on_cycle(1.0);
        w.on_cycle(2.0);
        w.on_round(); // cycle 3 has a round → streak resets
        w.on_cycle(3.0);
        w.on_cycle(4.0);
        w.on_cycle(5.0);
        assert!(w.alarms().is_empty(), "streak is 2 of 3");
        w.on_cycle(6.0);
        assert_eq!(w.alarms().len(), 1);
        assert_eq!(w.alarms()[0].kind, "sampling_starvation");
        // Latched: further empty cycles stay quiet.
        w.on_cycle(7.0);
        assert_eq!(w.alarms().len(), 1);
    }

    #[test]
    fn unsampled_streams_never_raise_sampling_starvation() {
        let mut w = Watchdog::default();
        for k in 0..10 {
            w.on_cycle(k as f64);
        }
        assert!(w.alarms().is_empty());
    }

    #[test]
    fn ring_drop_latches_once() {
        let mut w = Watchdog::default();
        w.on_ring(0, 100, 1.0);
        assert!(w.alarms().is_empty());
        w.on_ring(5, 100, 2.0);
        w.on_ring(50, 100, 3.0);
        assert_eq!(w.alarms().len(), 1);
        assert_eq!(w.alarms()[0].kind, "ring_drop");
    }

    #[test]
    fn envelope_early_warning_fires_below_floor() {
        let mut w = Watchdog::new(WatchdogConfig {
            envelope: Some(Envelope::default()),
            ..WatchdogConfig::default()
        });
        w.on_fault_close("burst_noise", 0.9, 1.0, 5.0);
        assert!(w.alarms().is_empty(), "90% of clean is above the floor");
        w.on_fault_close("antenna_outage", 0.1, 1.0, 6.0);
        assert_eq!(w.alarms().len(), 1);
        assert_eq!(w.alarms()[0].kind, "envelope");
        assert!(w.alarms()[0].detail.contains("antenna_outage"));
    }

    #[test]
    fn drain_returns_only_new_alarms() {
        let mut w = Watchdog::new(WatchdogConfig {
            stale_after: 1.0,
            ..WatchdogConfig::default()
        });
        w.on_sim_instant(0.0);
        w.on_sim_instant(5.0);
        assert_eq!(w.drain_new().len(), 1);
        assert!(w.drain_new().is_empty());
        w.on_sim_instant(20.0);
        let new = w.drain_new();
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].seq, 1);
        assert_eq!(w.alarms().len(), 2);
    }
}
