//! The live status artifact: a schema-versioned [`MonitorSnapshot`]
//! written atomically (temp file + rename in the same directory) so a
//! concurrent reader — `obs watch`, a dashboard scraper, a human with
//! `cat` — never observes a half-written JSON document. Mirrors the
//! `BenchSnapshot` pattern in `tagwatch-obs`: bump
//! [`MONITOR_SCHEMA_VERSION`] on any breaking field change, and refuse
//! to load snapshots from a different schema generation.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::online::{OnlineAnalyzers, WindowStats};
use crate::verdict::{ConfusionSummary, FaultReport, QDiagnostics, StarvationReport, TagSummary};
use crate::watchdog::Alarm;

/// Bump on breaking changes to [`MonitorSnapshot`]'s serialized form.
pub const MONITOR_SCHEMA_VERSION: u32 = 1;

/// File name of the JSON snapshot inside a monitor directory.
pub const STATUS_FILE: &str = "status.json";
/// File name of the Prometheus-style exposition inside a monitor
/// directory.
pub const EXPOSITION_FILE: &str = "metrics.prom";

/// Point-in-time state of the online analyzers, periodically flushed by
/// [`MonitorSink`](crate::sink::MonitorSink). The final snapshot of a
/// completed run (`footer_seen: true`) carries whole-trace verdicts
/// byte-identical to the batch analyzers' — `obs watch --check` gates
/// on exactly that.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorSnapshot {
    pub schema_version: u32,
    /// Monotonic flush counter (1-based).
    pub seq: u64,
    /// Events the online analyzers have consumed (the sim-deterministic
    /// subset of the stream — wall-clock spans tee through uncounted).
    pub events: u64,
    /// Leading edge of the simulated window, once any sim time exists.
    pub sim_now: Option<f64>,
    pub sim_seconds: f64,
    pub cycles: usize,
    /// Whether the closing [`FooterRecord`](tagwatch_telemetry::FooterRecord)
    /// has been observed — i.e. whether this snapshot is final.
    pub footer_seen: bool,
    /// Sliding-window display statistics at the trace edge.
    pub window: WindowStats,
    pub tags: TagSummary,
    pub starvation: StarvationReport,
    pub confusion: Option<ConfusionSummary>,
    pub q: QDiagnostics,
    pub fault: Option<FaultReport>,
    /// Latest deterministic work-counter totals (`perf.work.*`, keyed by
    /// unit — `slots`, `channel_evals`, …). Defaulted so pre-work-counter
    /// snapshots still load; display-only, excluded from the
    /// `obs watch --check` batch-equality comparison.
    #[serde(default)]
    pub work: std::collections::BTreeMap<String, u64>,
    /// Watchdog alarms raised so far, in firing order.
    pub alarms: Vec<Alarm>,
    /// Snapshot/exposition writes that failed (counted, never fatal —
    /// a broken status directory must not kill the run it observes).
    pub write_errors: u64,
}

impl MonitorSnapshot {
    /// Captures the analyzers' current state. `seq` is the flush
    /// counter; alarms and write-error count come from the sink.
    pub fn capture(
        online: &OnlineAnalyzers,
        seq: u64,
        alarms: Vec<Alarm>,
        write_errors: u64,
    ) -> MonitorSnapshot {
        let v = online.verdicts();
        MonitorSnapshot {
            schema_version: MONITOR_SCHEMA_VERSION,
            seq,
            events: online.events(),
            sim_now: online.sim_window().map(|(_, hi)| hi),
            sim_seconds: v.sim_seconds,
            cycles: online.cycles(),
            footer_seen: online.footer().is_some(),
            window: online.window_stats(),
            tags: v.tags,
            starvation: v.starvation,
            confusion: v.confusion,
            q: v.q,
            fault: v.fault,
            work: online.work().clone(),
            alarms,
            write_errors,
        }
    }

    pub fn to_json(&self) -> String {
        // Infallible for this type (no maps with non-string keys).
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Writes atomically: temp file in the same directory, then rename.
    pub fn save_atomic(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, &(self.to_json() + "\n"))
    }

    pub fn load(path: &Path) -> Result<MonitorSnapshot, SnapshotError> {
        let text = fs::read_to_string(path).map_err(|source| SnapshotError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let snap: MonitorSnapshot =
            serde_json::from_str(&text).map_err(|source| SnapshotError::Parse {
                path: path.to_path_buf(),
                source,
            })?;
        if snap.schema_version != MONITOR_SCHEMA_VERSION {
            return Err(SnapshotError::SchemaVersion {
                path: path.to_path_buf(),
                found: snap.schema_version,
            });
        }
        Ok(snap)
    }
}

/// Atomic replace: write `<path>.tmp`, then rename over `path`. Both
/// live in the same directory, so the rename cannot cross filesystems.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

#[derive(Debug)]
pub enum SnapshotError {
    Io {
        path: PathBuf,
        source: io::Error,
    },
    Parse {
        path: PathBuf,
        source: serde_json::Error,
    },
    /// The snapshot is from a different schema generation.
    SchemaVersion {
        path: PathBuf,
        found: u32,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            SnapshotError::Parse { path, source } => {
                write!(f, "{}: not a monitor snapshot: {source}", path.display())
            }
            SnapshotError::SchemaVersion { path, found } => write!(
                f,
                "{}: monitor schema v{found}, this build reads v{MONITOR_SCHEMA_VERSION}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            SnapshotError::Parse { source, .. } => Some(source),
            SnapshotError::SchemaVersion { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static SEQ: AtomicUsize = AtomicUsize::new(0);

    fn scratch(name: &str) -> PathBuf {
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "tagwatch-monitor-{}-{n}-{name}",
            std::process::id()
        ))
    }

    fn sample() -> MonitorSnapshot {
        MonitorSnapshot::capture(&OnlineAnalyzers::default(), 1, Vec::new(), 0)
    }

    #[test]
    fn snapshot_roundtrips_through_the_status_file() {
        let path = scratch("status.json");
        let snap = sample();
        snap.save_atomic(&path).unwrap();
        let back = MonitorSnapshot::load(&path).unwrap();
        assert_eq!(back.schema_version, MONITOR_SCHEMA_VERSION);
        assert_eq!(back.seq, 1);
        assert!(!back.footer_seen);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_save_leaves_no_temp_file() {
        let path = scratch("atomic.json");
        sample().save_atomic(&path).unwrap();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_schema_version_is_refused() {
        let path = scratch("old.json");
        let mut snap = sample();
        snap.schema_version = 99;
        fs::write(&path, snap.to_json()).unwrap();
        match MonitorSnapshot::load(&path) {
            Err(SnapshotError::SchemaVersion { found, .. }) => assert_eq!(found, 99),
            other => panic!("expected schema error, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_is_a_parse_error() {
        let path = scratch("garbage.json");
        fs::write(&path, "{not json").unwrap();
        assert!(matches!(
            MonitorSnapshot::load(&path),
            Err(SnapshotError::Parse { .. })
        ));
        fs::remove_file(&path).ok();
    }
}
