//! Incremental analyzers: accumulators that consume one telemetry
//! [`Event`] at a time and finalize into the shared [`crate::verdict`]
//! types. The batch analyzers in `tagwatch-obs` feed the *same*
//! accumulators from a validated `Trace`, so on a closed trace the
//! online path's final verdicts are byte-identical (as serialized JSON)
//! to the batch path's — equality by construction, not by parallel
//! implementation.
//!
//! Memory discipline: every accumulator keeps O(distinct tags + reads)
//! state at worst (the per-tag timelines needed for exact gap and
//! fault-window math), while the live display statistics
//! ([`WindowStats`]) ride a true sliding window and stay O(window).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};
use tagwatch_telemetry::{ClockKind, Event, FooterRecord, WORK_PREFIX};

use crate::verdict::{
    epc_hex, mean_of, ConfusionSummary, FaultReport, FaultWindow, QDiagnostics, StarvationEvent,
    StarvationReport, TagStats, TagSummary, ALARM_PREFIX, ASSESS_MOBILE, FAULT_CLOSE_PREFIX,
    FAULT_OPEN_PREFIX, READ_PHASE1, READ_PHASE2, TRUTH_MOBILE,
};

/// Knobs for the online analyzers.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Starvation gap threshold in simulated seconds. Must match the
    /// batch `AnalyzeConfig::starvation_gap` for verdict equality; both
    /// default to 10.0.
    pub starvation_gap: f64,
    /// Width of the sliding display window in simulated seconds.
    pub window_seconds: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            starvation_gap: 10.0,
            window_seconds: 5.0,
        }
    }
}

/// Incremental replica of `Trace::sim_window`: the lo/hi envelope over
/// simulated-clock span extents and tag-event timestamps. min/max folds
/// are exact and order-independent, so interleaving does not matter.
#[derive(Debug, Clone, Copy)]
pub struct SimWindowAccum {
    lo: f64,
    hi: f64,
}

impl Default for SimWindowAccum {
    fn default() -> Self {
        SimWindowAccum {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
        }
    }
}

impl SimWindowAccum {
    /// Folds a simulated-clock span `[start, start + duration]`.
    pub fn span(&mut self, start: f64, duration: f64) {
        self.lo = self.lo.min(start);
        self.hi = self.hi.max(start + duration);
    }

    /// Folds a point-in-time event (tag-event timestamp).
    pub fn instant(&mut self, t: f64) {
        self.lo = self.lo.min(t);
        self.hi = self.hi.max(t);
    }

    /// `Some((lo, hi))` once any simulated time has been observed.
    pub fn window(&self) -> Option<(f64, f64)> {
        (self.lo.is_finite() && self.hi.is_finite()).then_some((self.lo, self.hi))
    }

    /// Span of the window, 0.0 before any simulated time exists —
    /// matches `Trace::sim_seconds`.
    pub fn seconds(&self) -> f64 {
        self.window().map_or(0.0, |(lo, hi)| (hi - lo).max(0.0))
    }
}

/// Per-tag read timelines (`read.phase1` / `read.phase2`), kept sorted.
///
/// The batch path collects timestamps in stream order and sorts with
/// `f64::total_cmp`; this accumulator keeps each timeline sorted as it
/// grows (a plain push for the in-order common case). Timestamps equal
/// under `total_cmp` are bit-identical, so insertion position among
/// equals cannot change the finalized output.
#[derive(Debug, Clone, Default)]
pub struct TagAccum {
    times: BTreeMap<u128, Vec<f64>>,
}

impl TagAccum {
    pub fn push(&mut self, epc: u128, t: f64) {
        let ts = self.times.entry(epc).or_default();
        match ts.last() {
            Some(last) if t.total_cmp(last).is_lt() => {
                let at = ts.partition_point(|x| x.total_cmp(&t).is_le());
                ts.insert(at, t);
            }
            _ => ts.push(t),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Aggregate per-tag statistics; expression-identical to the batch
    /// `tag_summary` analyzer.
    pub fn summary(&self, sim_seconds: f64) -> TagSummary {
        if self.times.is_empty() || sim_seconds <= 0.0 {
            return TagSummary::default();
        }
        let mut per_tag = Vec::with_capacity(self.times.len());
        let mut reads_total = 0;
        for (&epc, ts) in &self.times {
            reads_total += ts.len();
            let max_gap = ts.windows(2).map(|w| w[1] - w[0]).fold(0.0, f64::max);
            let (Some(&first), Some(&last)) = (ts.first(), ts.last()) else {
                continue; // unreachable: timelines are created non-empty
            };
            per_tag.push(TagStats {
                epc: epc_hex(epc),
                reads: ts.len(),
                first,
                last,
                irr: ts.len() as f64 / sim_seconds,
                max_gap,
            });
        }
        let irrs: Vec<f64> = per_tag.iter().map(|t| t.irr).collect();
        TagSummary {
            tags: per_tag.len(),
            reads_total,
            irr_mean: mean_of(&irrs),
            irr_min: irrs.iter().copied().fold(f64::INFINITY, f64::min),
            irr_max: irrs.iter().copied().fold(0.0, f64::max),
            per_tag,
        }
    }

    /// Internal read gaps above the threshold; expression-identical to
    /// the batch `starvation` analyzer. Gaps are measured between
    /// consecutive reads of the same tag — the window where the tag was
    /// demonstrably present yet unread — so a tag that left the scene
    /// does not register a phantom starvation tail.
    pub fn starvation(&self, gap_threshold: f64) -> StarvationReport {
        let mut events = Vec::new();
        let mut starved: BTreeSet<u128> = BTreeSet::new();
        for (&epc, ts) in &self.times {
            for w in ts.windows(2) {
                let gap = w[1] - w[0];
                if gap > gap_threshold {
                    starved.insert(epc);
                    events.push(StarvationEvent {
                        epc: epc_hex(epc),
                        from: w[0],
                        to: w[1],
                        gap,
                    });
                }
            }
        }
        events.sort_by(|a, b| a.from.total_cmp(&b.from));
        StarvationReport {
            gap_threshold,
            starved_tags: starved.len(),
            events,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct CycleBucket {
    census: BTreeSet<u128>,
    mobile: BTreeSet<u128>,
}

/// Detector-confusion accumulator. Cycle buckets rotate on each `cycle`
/// span, reproducing the batch path's by-stream-position attribution
/// (a cycle's tag events are emitted after its span closes and before
/// the next cycle's). Tags seen before the first cycle span carry no
/// census weight, exactly as in the batch analyzer; `truth.mobile`
/// annotations are global and counted wherever they appear.
#[derive(Debug, Clone, Default)]
pub struct ConfusionAccum {
    truth: BTreeSet<u128>,
    /// Per-EPC (flagged-mobile, not-flagged) census appearances over
    /// closed buckets.
    preds: BTreeMap<u128, (usize, usize)>,
    cycles: usize,
    bucket: Option<CycleBucket>,
}

impl ConfusionAccum {
    /// Feeds one tag event (any name; non-confusion names are ignored).
    pub fn tag(&mut self, name: &str, epc: u128) {
        match name {
            TRUTH_MOBILE => {
                self.truth.insert(epc);
            }
            READ_PHASE1 => {
                if let Some(b) = &mut self.bucket {
                    b.census.insert(epc);
                }
            }
            ASSESS_MOBILE => {
                if let Some(b) = &mut self.bucket {
                    b.mobile.insert(epc);
                }
            }
            _ => {}
        }
    }

    /// A `cycle` span arrived: close the previous bucket, open a new one.
    pub fn cycle_open(&mut self) {
        self.close_bucket();
        self.bucket = Some(CycleBucket::default());
    }

    fn close_bucket(&mut self) {
        let Some(b) = self.bucket.take() else { return };
        if b.census.is_empty() {
            return;
        }
        self.cycles += 1;
        for &epc in &b.census {
            let slot = self.preds.entry(epc).or_insert((0, 0));
            if b.mobile.contains(&epc) {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
    }

    /// Finalizes without consuming: the still-open bucket is counted
    /// (tags after the last cycle span belong to that cycle), matching
    /// the batch analyzer's whole-trace view.
    pub fn finalize(&self) -> Option<ConfusionSummary> {
        let mut done = self.clone();
        done.close_bucket();
        if done.truth.is_empty() {
            return None;
        }
        let (mut tp, mut fp, mut tn, mut fn_) = (0usize, 0usize, 0usize, 0usize);
        for (&epc, &(flagged, unflagged)) in &done.preds {
            if done.truth.contains(&epc) {
                tp += flagged;
                fn_ += unflagged;
            } else {
                fp += flagged;
                tn += unflagged;
            }
        }
        let total = tp + fp + tn + fn_;
        (total > 0).then(|| ConfusionSummary::from_counts(tp, fp, tn, fn_, done.cycles))
    }
}

/// Q-adaptation accumulator over the `round.q_final` series, streaming
/// the batch analyzer's delta/reversal math: nonzero deltas between
/// consecutive *reported* Q values, reversals between consecutive
/// nonzero deltas.
#[derive(Debug, Clone, Default)]
pub struct QAccum {
    pending: Option<f64>,
    qs_len: usize,
    sum_q: f64,
    last_q: Option<f64>,
    last_delta: Option<f64>,
    nonzero_deltas: usize,
    reversals: usize,
    rounds_total: usize,
    adjusts_total: u64,
}

impl QAccum {
    /// A `round.q_final` observe arrived; it attaches to the next round
    /// span (later observes before that span overwrite, matching the
    /// trace builder's pending-stats semantics).
    pub fn observe(&mut self, q: f64) {
        self.pending = Some(q);
    }

    /// A round span arrived: consume the pending Q, if any.
    pub fn round(&mut self) {
        let q = self.pending.take();
        self.push_round(q);
    }

    /// Batch entry point: one round with its (already attributed) Q.
    pub fn push_round(&mut self, q: Option<f64>) {
        self.rounds_total += 1;
        let Some(q) = q else { return };
        if let Some(prev) = self.last_q {
            let d = q - prev;
            if d != 0.0 {
                if let Some(pd) = self.last_delta {
                    if pd.signum() != d.signum() {
                        self.reversals += 1;
                    }
                }
                self.last_delta = Some(d);
                self.nonzero_deltas += 1;
            }
        }
        self.sum_q += q;
        self.qs_len += 1;
        self.last_q = Some(q);
    }

    /// Latest running total of the `round.adjusts` counter.
    pub fn set_adjusts_total(&mut self, total: u64) {
        self.adjusts_total = total;
    }

    pub fn finalize(&self) -> QDiagnostics {
        QDiagnostics {
            rounds: self.qs_len,
            mean_q: if self.qs_len == 0 {
                0.0
            } else {
                self.sum_q / self.qs_len as f64
            },
            reversals: self.reversals,
            oscillation: if self.nonzero_deltas > 1 {
                self.reversals as f64 / (self.nonzero_deltas - 1) as f64
            } else {
                0.0
            },
            adjusts_per_round: if self.rounds_total > 0 {
                self.adjusts_total as f64 / self.rounds_total as f64
            } else {
                0.0
            },
        }
    }
}

#[derive(Debug, Clone)]
struct OpenWindow {
    event_idx: u128,
    slug: String,
    start: f64,
    close: Option<f64>,
}

/// Fault-window attribution accumulator. Markers pair up as they
/// arrive; the in/out IRR split is computed at finalize time against
/// the then-current end of trace, so an unclosed window tracks the
/// live trace edge exactly as the batch analyzer extends it.
#[derive(Debug, Clone, Default)]
pub struct FaultAccum {
    windows: Vec<OpenWindow>,
    read_ts: Vec<f64>,
    reader_restarts: u64,
    selects_lost: u64,
    antenna_out_rounds: u64,
}

impl FaultAccum {
    /// One `read.*` tag-event timestamp.
    pub fn read(&mut self, t: f64) {
        self.read_ts.push(t);
    }

    /// Feeds one tag event; only `fault.open.*` / `fault.close.*`
    /// markers are consumed.
    pub fn marker(&mut self, name: &str, epc: u128, t: f64) {
        if let Some(slug) = name.strip_prefix(FAULT_OPEN_PREFIX) {
            self.windows.push(OpenWindow {
                event_idx: epc,
                slug: slug.to_string(),
                start: t,
                close: None,
            });
        } else if let Some(slug) = name.strip_prefix(FAULT_CLOSE_PREFIX) {
            if let Some(w) = self
                .windows
                .iter_mut()
                .rev()
                .find(|w| w.event_idx == epc && w.slug == slug && w.close.is_none())
            {
                w.close = Some(t);
            }
        }
    }

    /// Latest running total for one of [`FAULT_COUNTERS`].
    pub fn counter(&mut self, name: &str, total: u64) {
        match name {
            "fault.reader_restarts" => self.reader_restarts = total,
            "fault.selects_lost" => self.selects_lost = total,
            "fault.antenna_out_rounds" => self.antenna_out_rounds = total,
            _ => {}
        }
    }

    pub fn has_activity(&self) -> bool {
        !self.windows.is_empty()
            || self.reader_restarts != 0
            || self.selects_lost != 0
            || self.antenna_out_rounds != 0
    }

    /// `None` for traces with no trace of fault activity at all, so
    /// clean-run verdicts are unchanged by the fault machinery's
    /// existence. Expression-identical to the batch `fault_report`.
    pub fn finalize(&self, sim_seconds: f64) -> Option<FaultReport> {
        if !self.has_activity() {
            return None;
        }
        let trace_end = sim_seconds.max(0.0);
        let mut windows: Vec<FaultWindow> = self
            .windows
            .iter()
            .map(|w| FaultWindow {
                event_idx: w.event_idx,
                slug: w.slug.clone(),
                start: w.start,
                // Until (unless) the close marker arrives, the window
                // runs to the end of the trace.
                end: w.close.unwrap_or(trace_end.max(w.start)),
                closed: w.close.is_some(),
                reads: 0,
                irr: 0.0,
            })
            .collect();
        for w in &mut windows {
            w.reads = self
                .read_ts
                .iter()
                .filter(|&&t| t >= w.start && t < w.end)
                .count();
            w.irr = if w.end > w.start {
                w.reads as f64 / (w.end - w.start)
            } else {
                0.0
            };
        }

        // Union of windows (overlaps merged) for the in/out split.
        let mut ivs: Vec<(f64, f64)> = windows
            .iter()
            .filter(|w| w.end > w.start)
            .map(|w| (w.start, w.end))
            .collect();
        ivs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut merged: Vec<(f64, f64)> = Vec::new();
        for (s, e) in ivs {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        let faulted_seconds: f64 = merged.iter().map(|(s, e)| e - s).sum();
        let clean_seconds = (trace_end - faulted_seconds).max(0.0);
        let faulted_reads = self
            .read_ts
            .iter()
            .filter(|&&t| merged.iter().any(|&(s, e)| t >= s && t < e))
            .count();
        let clean_reads = self.read_ts.len() - faulted_reads;
        let irr_faulted = if faulted_seconds > 0.0 {
            faulted_reads as f64 / faulted_seconds
        } else {
            0.0
        };
        let irr_clean = if clean_seconds > 0.0 {
            clean_reads as f64 / clean_seconds
        } else {
            0.0
        };
        Some(FaultReport {
            windows,
            reader_restarts: self.reader_restarts,
            selects_lost: self.selects_lost,
            antenna_out_rounds: self.antenna_out_rounds,
            faulted_seconds,
            irr_faulted,
            irr_clean,
            degradation: if irr_clean > 0.0 && faulted_seconds > 0.0 {
                irr_faulted / irr_clean
            } else {
                1.0
            },
        })
    }
}

/// Sliding-window display statistics over the last `window_seconds` of
/// simulated time. Purely informational (never compared against batch
/// verdicts); state is O(events inside the window).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Configured window width in simulated seconds.
    pub seconds: f64,
    /// Actual window edges `[from, to]` (to = current trace edge).
    pub from: f64,
    pub to: f64,
    pub reads: usize,
    /// Distinct EPCs read inside the window.
    pub tags: usize,
    pub rounds: usize,
    /// Reads per second over the effective window width.
    pub irr: f64,
}

#[derive(Debug, Clone, Default)]
struct Rolling {
    reads: VecDeque<(f64, u128)>,
    rounds: VecDeque<f64>,
}

impl Rolling {
    fn prune(&mut self, cutoff: f64) {
        while self.reads.front().is_some_and(|&(t, _)| t < cutoff) {
            self.reads.pop_front();
        }
        while self.rounds.front().is_some_and(|&t| t < cutoff) {
            self.rounds.pop_front();
        }
    }
}

/// The full set of online analyzers, fed one [`Event`] at a time.
#[derive(Debug, Clone, Default)]
pub struct OnlineAnalyzers {
    cfg: OnlineConfig,
    window: SimWindowAccum,
    tags: TagAccum,
    confusion: ConfusionAccum,
    q: QAccum,
    fault: FaultAccum,
    rolling: Rolling,
    events: u64,
    cycles: usize,
    alarms_seen: u64,
    /// Latest `perf.work.*` counter totals, keyed by unit (the name with
    /// the prefix stripped: `slots`, `channel_evals`, …). Counter events
    /// carry their running total, so this is last-write-wins.
    work: BTreeMap<String, u64>,
    footer: Option<FooterRecord>,
}

/// Final window-aggregate verdicts — the five analyzer outputs whose
/// serialized forms must equal the batch analyzers' on a closed trace,
/// plus the shared `sim_seconds` denominator.
#[derive(Debug, Clone, Serialize)]
pub struct OnlineVerdicts {
    pub sim_seconds: f64,
    pub tags: TagSummary,
    pub starvation: StarvationReport,
    pub confusion: Option<ConfusionSummary>,
    pub q: QDiagnostics,
    pub fault: Option<FaultReport>,
}

impl OnlineAnalyzers {
    pub fn new(cfg: OnlineConfig) -> Self {
        OnlineAnalyzers {
            cfg,
            ..OnlineAnalyzers::default()
        }
    }

    /// Consumes one event. Wall-clock events may be passed freely — the
    /// analyzers key off simulated-clock spans and tag events only, so
    /// feeding a full mixed trace and feeding its sim-deterministic
    /// subset produce identical verdicts.
    pub fn push(&mut self, event: &Event) {
        self.events += 1;
        match event {
            Event::Span(s) => {
                if s.clock == ClockKind::Sim {
                    self.window.span(s.start, s.duration);
                }
                match s.name.as_str() {
                    "round" => {
                        self.q.round();
                        self.rolling.rounds.push_back(s.start + s.duration);
                    }
                    "cycle" => {
                        self.cycles += 1;
                        self.confusion.cycle_open();
                    }
                    _ => {}
                }
            }
            Event::Counter(c) => {
                if c.name == "round.adjusts" {
                    self.q.set_adjusts_total(c.total);
                }
                if let Some(unit) = c.name.strip_prefix(WORK_PREFIX) {
                    self.work.insert(unit.to_string(), c.total);
                }
                self.fault.counter(&c.name, c.total);
            }
            Event::Observe(o) => {
                if o.name == "round.q_final" {
                    self.q.observe(o.value);
                }
            }
            Event::Gauge(_) => {}
            Event::Tag(t) => {
                self.window.instant(t.t);
                if t.name == READ_PHASE1 || t.name == READ_PHASE2 {
                    self.tags.push(t.epc, t.t);
                    self.fault.read(t.t);
                    self.rolling.reads.push_back((t.t, t.epc));
                }
                if t.name.starts_with(ALARM_PREFIX) {
                    self.alarms_seen += 1;
                }
                self.confusion.tag(&t.name, t.epc);
                self.fault.marker(&t.name, t.epc, t.t);
            }
            Event::Footer(f) => {
                self.footer = Some(f.clone());
            }
        }
        if let Some((_, hi)) = self.window.window() {
            self.rolling.prune(hi - self.cfg.window_seconds);
        }
    }

    pub fn events(&self) -> u64 {
        self.events
    }

    pub fn cycles(&self) -> usize {
        self.cycles
    }

    pub fn alarms_seen(&self) -> u64 {
        self.alarms_seen
    }

    /// Latest deterministic work-counter totals (`perf.work.*`, keyed by
    /// unit). Empty until the first flush event arrives.
    pub fn work(&self) -> &BTreeMap<String, u64> {
        &self.work
    }

    pub fn footer(&self) -> Option<&FooterRecord> {
        self.footer.as_ref()
    }

    pub fn config(&self) -> &OnlineConfig {
        &self.cfg
    }

    /// Current simulated window, if any time has been observed.
    pub fn sim_window(&self) -> Option<(f64, f64)> {
        self.window.window()
    }

    pub fn sim_seconds(&self) -> f64 {
        self.window.seconds()
    }

    /// Current fault attribution against the live trace edge (`None`
    /// on clean traces) — the watchdog's envelope early-warning input.
    pub fn fault_report(&self) -> Option<FaultReport> {
        self.fault.finalize(self.window.seconds())
    }

    /// Sliding-window display statistics at the current trace edge.
    pub fn window_stats(&self) -> WindowStats {
        let Some((lo, hi)) = self.window.window() else {
            return WindowStats {
                seconds: self.cfg.window_seconds,
                ..WindowStats::default()
            };
        };
        let from = lo.max(hi - self.cfg.window_seconds);
        let width = hi - from;
        let distinct: BTreeSet<u128> = self.rolling.reads.iter().map(|&(_, epc)| epc).collect();
        WindowStats {
            seconds: self.cfg.window_seconds,
            from,
            to: hi,
            reads: self.rolling.reads.len(),
            tags: distinct.len(),
            rounds: self.rolling.rounds.len(),
            irr: if width > 0.0 {
                self.rolling.reads.len() as f64 / width
            } else {
                0.0
            },
        }
    }

    /// Finalizes the whole-trace verdicts at the current edge. Cheap
    /// enough to call per flush; does not consume the accumulators.
    pub fn verdicts(&self) -> OnlineVerdicts {
        let sim_seconds = self.window.seconds();
        OnlineVerdicts {
            sim_seconds,
            tags: self.tags.summary(sim_seconds),
            starvation: self.tags.starvation(self.cfg.starvation_gap),
            confusion: self.confusion.finalize(),
            q: self.q.finalize(),
            fault: self.fault.finalize(sim_seconds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagwatch_telemetry::{CounterRecord, ObserveRecord, SpanRecord, TagRecord};

    fn span(name: &str, id: u64, start: f64, dur: f64) -> Event {
        Event::Span(SpanRecord {
            name: name.into(),
            id,
            parent: None,
            start,
            duration: dur,
            clock: ClockKind::Sim,
        })
    }

    fn tag(name: &str, epc: u128, t: f64) -> Event {
        Event::Tag(TagRecord {
            name: name.into(),
            epc,
            t,
        })
    }

    fn observe(name: &str, value: f64) -> Event {
        Event::Observe(ObserveRecord {
            name: name.into(),
            value,
        })
    }

    fn counter(name: &str, delta: u64, total: u64) -> Event {
        Event::Counter(CounterRecord {
            name: name.into(),
            delta,
            total,
        })
    }

    #[test]
    fn tag_accum_sorts_out_of_order_reads() {
        let mut acc = TagAccum::default();
        for t in [5.0, 1.0, 3.0, 3.0, 9.0] {
            acc.push(7, t);
        }
        let s = acc.summary(10.0);
        assert_eq!(s.reads_total, 5);
        let t7 = &s.per_tag[0];
        assert!((t7.first - 1.0).abs() < 1e-12 && (t7.last - 9.0).abs() < 1e-12);
        assert!((t7.max_gap - 4.0).abs() < 1e-12, "gap 5→9");
        assert!((t7.irr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tag_summary_empty_or_zero_window_is_default() {
        let acc = TagAccum::default();
        assert_eq!(acc.summary(10.0), TagSummary::default());
        let mut acc = TagAccum::default();
        acc.push(1, 0.0);
        assert_eq!(acc.summary(0.0), TagSummary::default());
    }

    #[test]
    fn starvation_is_strictly_greater_than_threshold() {
        let mut acc = TagAccum::default();
        acc.push(3, 0.7);
        acc.push(3, 10.7);
        let r = acc.starvation(10.0);
        assert_eq!(r.events.len(), 0, "10.0 s gap is not > 10.0");
        let r = acc.starvation(9.0);
        assert_eq!((r.starved_tags, r.events.len()), (1, 1));
        assert_eq!(r.events[0].epc, "0x3");
    }

    #[test]
    fn confusion_buckets_rotate_on_cycle_spans() {
        let mut acc = ConfusionAccum::default();
        acc.tag(TRUTH_MOBILE, 1);
        // Census before the first cycle span is dropped.
        acc.tag(READ_PHASE1, 9);
        acc.cycle_open();
        acc.tag(READ_PHASE1, 1);
        acc.tag(READ_PHASE1, 2);
        acc.tag(ASSESS_MOBILE, 1);
        acc.cycle_open();
        acc.tag(READ_PHASE1, 1);
        acc.tag(READ_PHASE1, 2);
        acc.tag(ASSESS_MOBILE, 2);
        let c = acc.finalize().expect("truth present");
        // Cycle 1: 1 tp, 2 tn. Cycle 2 (open bucket): 1 fn, 2 fp.
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (1, 1, 1, 1));
        assert_eq!(c.cycles, 2);
    }

    #[test]
    fn confusion_without_truth_or_census_is_none() {
        let acc = ConfusionAccum::default();
        assert!(acc.finalize().is_none());
        let mut acc = ConfusionAccum::default();
        acc.tag(TRUTH_MOBILE, 1);
        assert!(acc.finalize().is_none(), "no census → no samples");
    }

    #[test]
    fn q_accum_counts_reversals_like_batch() {
        let mut acc = QAccum::default();
        // Series 3, 2, 4, 5 → deltas -1, +2, +1 → one reversal over two
        // delta pairs (the batch fixture's expectation).
        for q in [3.0, 2.0, 4.0, 5.0] {
            acc.observe(q);
            acc.round();
        }
        let d = acc.finalize();
        assert_eq!((d.rounds, d.reversals), (4, 1));
        assert!((d.oscillation - 0.5).abs() < 1e-12);
        assert!((d.mean_q - 3.5).abs() < 1e-12);
    }

    #[test]
    fn q_pending_overwrites_and_unclaimed_is_dropped() {
        let mut acc = QAccum::default();
        acc.observe(3.0);
        acc.observe(4.0); // overwrites
        acc.round();
        acc.observe(9.0); // never claimed by a round
        let d = acc.finalize();
        assert_eq!(d.rounds, 1);
        assert!((d.mean_q - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fault_accum_matches_batch_window_math() {
        let mut acc = FaultAccum::default();
        for t in [1.0, 3.0, 3.5, 5.0, 7.0, 9.0] {
            acc.read(t);
        }
        acc.marker("fault.open.burst_noise", 0, 2.0);
        acc.marker("fault.close.burst_noise", 0, 4.0);
        let fr = acc.finalize(10.0).expect("markers present");
        let w = &fr.windows[0];
        assert!(w.closed);
        assert_eq!(w.reads, 2);
        assert!((w.irr - 1.0).abs() < 1e-12);
        assert!((fr.irr_clean - 0.5).abs() < 1e-12);
        assert!((fr.degradation - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unclosed_fault_window_tracks_the_live_edge() {
        let mut acc = FaultAccum::default();
        acc.marker("fault.open.antenna_outage", 3, 6.0);
        let fr = acc.finalize(8.0).expect("open marker");
        assert!(!fr.windows[0].closed);
        assert!((fr.windows[0].end - 8.0).abs() < 1e-12);
        // The edge advances; a later finalize extends the window.
        let fr = acc.finalize(10.0).expect("open marker");
        assert!((fr.windows[0].end - 10.0).abs() < 1e-12);
        assert!((fr.faulted_seconds - 4.0).abs() < 1e-12);
    }

    #[test]
    fn clean_accum_finalizes_to_none() {
        let mut acc = FaultAccum::default();
        acc.read(1.0);
        acc.counter("fault.reader_restarts", 0);
        assert!(acc.finalize(10.0).is_none());
    }

    #[test]
    fn online_analyzers_wire_events_to_the_right_accums() {
        let mut on = OnlineAnalyzers::default();
        on.push(&tag(TRUTH_MOBILE, 1, 0.0));
        on.push(&observe("round.q_final", 3.0));
        on.push(&span("round", 1, 0.0, 2.0));
        on.push(&span("cycle", 2, 0.0, 10.0));
        on.push(&counter("round.adjusts", 1, 1));
        on.push(&tag(READ_PHASE1, 1, 10.5));
        on.push(&tag(ASSESS_MOBILE, 1, 10.6));
        let v = on.verdicts();
        assert!((v.sim_seconds - 10.6).abs() < 1e-12);
        assert_eq!(v.tags.reads_total, 1);
        assert_eq!(v.q.rounds, 1);
        let c = v.confusion.expect("truth + census");
        assert_eq!((c.tp, c.cycles), (1, 1));
        assert_eq!(on.cycles(), 1);
        assert!(on.footer().is_none());
    }

    #[test]
    fn window_stats_slide_with_sim_time() {
        let mut on = OnlineAnalyzers::new(OnlineConfig {
            window_seconds: 5.0,
            ..OnlineConfig::default()
        });
        on.push(&tag(READ_PHASE1, 1, 0.0));
        on.push(&tag(READ_PHASE1, 2, 1.0));
        let w = on.window_stats();
        assert_eq!((w.reads, w.tags), (2, 2));
        // Advance the edge to 10.0: both reads fall out of [5, 10].
        on.push(&tag(READ_PHASE1, 3, 10.0));
        let w = on.window_stats();
        assert_eq!((w.reads, w.tags), (1, 1));
        assert!((w.from - 5.0).abs() < 1e-12 && (w.to - 10.0).abs() < 1e-12);
        assert!((w.irr - 0.2).abs() < 1e-12);
    }

    #[test]
    fn work_counters_track_latest_totals_without_touching_verdicts() {
        let mut on = OnlineAnalyzers::default();
        on.push(&tag(READ_PHASE1, 1, 1.0));
        let before = serde_json::to_string(&on.verdicts()).unwrap();
        on.push(&counter("perf.work.slots", 120, 120));
        on.push(&counter("perf.work.channel_evals", 40, 40));
        on.push(&counter("perf.work.slots", 80, 200));
        on.push(&counter("cycle.count", 1, 1)); // not a work counter
        assert_eq!(on.work().get("slots"), Some(&200), "last total wins");
        assert_eq!(on.work().get("channel_evals"), Some(&40));
        assert_eq!(on.work().len(), 2);
        let after = serde_json::to_string(&on.verdicts()).unwrap();
        assert_eq!(before, after, "work accounting is display-only");
    }

    #[test]
    fn alarm_tags_are_counted_but_change_no_verdict() {
        let mut on = OnlineAnalyzers::default();
        on.push(&tag(READ_PHASE1, 1, 1.0));
        let before = serde_json::to_string(&on.verdicts()).unwrap();
        on.push(&tag("alarm.stale", 0, 1.0));
        let after = serde_json::to_string(&on.verdicts()).unwrap();
        assert_eq!(before, after);
        assert_eq!(on.alarms_seen(), 1);
    }
}
