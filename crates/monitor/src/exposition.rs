//! Prometheus-style text exposition of a [`MonitorSnapshot`]: one
//! `# HELP`/`# TYPE`-annotated sample per line, suitable for a file
//! scraper (`node_exporter`'s textfile collector convention) or a plain
//! `watch cat`. The writer emits only the subset of the format we need
//! — flat names, an optional single label set, `name{label="v"} value`
//! — and [`validate`] checks exactly that subset, so CI can assert the
//! artifact stays parseable without a real Prometheus in the container.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::snapshot::MonitorSnapshot;

/// Renders the exposition document for one snapshot.
pub fn render(snap: &MonitorSnapshot) -> String {
    let mut out = String::new();
    let mut gauge = |name: &str, help: &str, value: f64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    };
    gauge(
        "tagwatch_monitor_seq",
        "Monotonic snapshot flush counter.",
        snap.seq as f64,
    );
    gauge(
        "tagwatch_events_total",
        "Sim-deterministic events consumed by the online analyzers.",
        snap.events as f64,
    );
    gauge(
        "tagwatch_sim_seconds",
        "Simulated seconds covered by the trace so far.",
        snap.sim_seconds,
    );
    gauge(
        "tagwatch_cycles_total",
        "Controller cycles observed.",
        snap.cycles as f64,
    );
    gauge(
        "tagwatch_footer_seen",
        "1 once the closing footer arrived (run complete).",
        f64::from(u8::from(snap.footer_seen)),
    );
    gauge(
        "tagwatch_reads_total",
        "Tag read events over the whole trace.",
        snap.tags.reads_total as f64,
    );
    gauge(
        "tagwatch_tags_seen",
        "Distinct EPCs read over the whole trace.",
        snap.tags.tags as f64,
    );
    gauge(
        "tagwatch_irr_mean",
        "Mean per-tag individual reading rate, reads/s.",
        snap.tags.irr_mean,
    );
    gauge(
        "tagwatch_irr_min",
        "Minimum per-tag individual reading rate, reads/s.",
        snap.tags.irr_min,
    );
    gauge(
        "tagwatch_starved_tags",
        "Tags with at least one starvation window.",
        snap.starvation.starved_tags as f64,
    );
    gauge(
        "tagwatch_starvation_events",
        "Starvation windows over the whole trace.",
        snap.starvation.events.len() as f64,
    );
    gauge(
        "tagwatch_q_mean",
        "Mean final Q over reported rounds.",
        snap.q.mean_q,
    );
    gauge(
        "tagwatch_q_oscillation",
        "Q-delta reversals per Q change (1.0 = thrashing).",
        snap.q.oscillation,
    );
    gauge(
        "tagwatch_window_reads",
        "Reads inside the sliding display window.",
        snap.window.reads as f64,
    );
    gauge(
        "tagwatch_window_irr",
        "Aggregate reads/s inside the sliding display window.",
        snap.window.irr,
    );
    if let Some(c) = &snap.confusion {
        gauge(
            "tagwatch_confusion_tpr",
            "Mobile-detector true positive rate.",
            c.tpr,
        );
        gauge(
            "tagwatch_confusion_fpr",
            "Mobile-detector false positive rate.",
            c.fpr,
        );
        gauge(
            "tagwatch_confusion_accuracy",
            "Mobile-detector accuracy.",
            c.accuracy,
        );
    }
    if let Some(fr) = &snap.fault {
        gauge(
            "tagwatch_fault_windows",
            "Reconstructed fault-injection windows.",
            fr.windows.len() as f64,
        );
        gauge(
            "tagwatch_fault_seconds",
            "Simulated seconds under at least one fault window.",
            fr.faulted_seconds,
        );
        gauge(
            "tagwatch_fault_degradation",
            "Faulted/clean IRR ratio (below 1.0 = attributable dip).",
            fr.degradation,
        );
    }
    gauge(
        "tagwatch_monitor_write_errors",
        "Snapshot/exposition writes that failed.",
        snap.write_errors as f64,
    );

    // Labeled families: per-tag IRR and alarm counts by kind.
    if !snap.tags.per_tag.is_empty() {
        let _ = writeln!(
            out,
            "# HELP tagwatch_tag_irr Per-tag individual reading rate, reads/s."
        );
        let _ = writeln!(out, "# TYPE tagwatch_tag_irr gauge");
        for t in &snap.tags.per_tag {
            let _ = writeln!(out, "tagwatch_tag_irr{{epc=\"{}\"}} {}", t.epc, t.irr);
        }
    }
    // Deterministic work counters, one labeled series per unit (the
    // dotted `perf.work.<unit>` names are not valid exposition metric
    // names, so the unit moves into a label).
    if !snap.work.is_empty() {
        let _ = writeln!(
            out,
            "# HELP tagwatch_work_total Deterministic sim work counters (perf.work.*) by unit."
        );
        let _ = writeln!(out, "# TYPE tagwatch_work_total gauge");
        for (unit, n) in &snap.work {
            let _ = writeln!(out, "tagwatch_work_total{{unit=\"{unit}\"}} {n}");
        }
    }
    let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
    for a in &snap.alarms {
        *by_kind.entry(a.kind.as_str()).or_insert(0) += 1;
    }
    if !by_kind.is_empty() {
        let _ = writeln!(out, "# HELP tagwatch_alarms_total Watchdog alarms by kind.");
        let _ = writeln!(out, "# TYPE tagwatch_alarms_total gauge");
        for (kind, n) in by_kind {
            let _ = writeln!(out, "tagwatch_alarms_total{{kind=\"{kind}\"}} {n}");
        }
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validates the exposition subset this module writes. Returns the
/// number of samples, or a description of the first malformed line.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {line_no}: no sample value: {line:?}"));
        };
        if value.parse::<f64>().is_err() {
            return Err(format!("line {line_no}: unparseable value {value:?}"));
        }
        let name = match series.split_once('{') {
            Some((name, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {line_no}: unclosed label set: {series:?}"));
                }
                name
            }
            None => series,
        };
        if !valid_metric_name(name) {
            return Err(format!("line {line_no}: bad metric name {name:?}"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineAnalyzers;
    use crate::verdict::READ_PHASE1;
    use crate::watchdog::Alarm;
    use tagwatch_telemetry::{Event, TagRecord};

    fn snapshot_with_data() -> MonitorSnapshot {
        let mut on = OnlineAnalyzers::default();
        for (epc, t) in [(1u128, 0.5), (2, 1.0), (1, 2.5)] {
            on.push(&Event::Tag(TagRecord {
                name: READ_PHASE1.into(),
                epc,
                t,
            }));
        }
        on.push(&Event::Counter(tagwatch_telemetry::CounterRecord {
            name: "perf.work.slots".into(),
            delta: 120,
            total: 120,
        }));
        let alarms = vec![Alarm {
            kind: "stale".into(),
            seq: 0,
            t: 2.5,
            detail: "gap".into(),
        }];
        MonitorSnapshot::capture(&on, 3, alarms, 0)
    }

    #[test]
    fn rendered_exposition_validates_and_carries_series() {
        let text = render(&snapshot_with_data());
        let samples = validate(&text).expect("own output must parse");
        assert!(samples > 10, "got {samples} samples:\n{text}");
        assert!(text.contains("tagwatch_tag_irr{epc=\"0x1\"}"), "{text}");
        assert!(text.contains("tagwatch_alarms_total{kind=\"stale\"} 1"));
        assert!(
            text.contains("tagwatch_work_total{unit=\"slots\"} 120"),
            "{text}"
        );
        assert!(text.contains("# TYPE tagwatch_sim_seconds gauge"));
    }

    #[test]
    fn empty_snapshot_still_renders_core_series() {
        let snap = MonitorSnapshot::capture(&OnlineAnalyzers::default(), 1, Vec::new(), 0);
        let text = render(&snap);
        validate(&text).expect("minimal exposition parses");
        assert!(!text.contains("tagwatch_confusion_tpr"));
        assert!(!text.contains("tagwatch_fault_windows"));
        assert!(!text.contains("tagwatch_work_total"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate("tagwatch_x 1.5\n").is_ok());
        assert!(validate("").is_err(), "empty document has no samples");
        assert!(validate("tagwatch_x\n").is_err(), "no value");
        assert!(validate("tagwatch_x notanumber\n").is_err());
        assert!(validate("9bad_name 1\n").is_err());
        assert!(
            validate("tagwatch_x{epc=\"1\" 1\n").is_err(),
            "unclosed label"
        );
    }
}
