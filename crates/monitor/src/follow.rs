//! Incremental trace following: [`TraceFollower`] reads a trace that
//! another process is still appending to — JSONL or binary `.twb`,
//! sniffed from the first bytes — yielding complete events as they
//! land. The defining property is *truncated-tail tolerance*: the
//! writer's buffer can flush mid-record, so whatever sits after the
//! last complete record is held back as pending bytes and re-examined
//! on the next poll instead of being reported as a parse error — the
//! streaming analogue of `tagwatch_telemetry::format::read_events`
//! classifying an unterminated tail as `TruncatedTail`. For JSONL the
//! record boundary is the newline; for `.twb` the incremental
//! [`StreamDecoder`] commits whole records only.
//!
//! A *committed* record that fails to parse is a real error: waiting
//! will not repair a newline-terminated garbage line or a corrupt
//! binary record.

use std::fmt;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use tagwatch_telemetry::jsonl::parse_line;
use tagwatch_telemetry::{DecodeError, Event, StreamDecoder, TraceFormat};

/// How the followed file turned out to be encoded. Undecided until the
/// first byte arrives, then fixed for the follower's lifetime (a trace
/// file never changes format mid-stream).
#[derive(Debug)]
enum Mode {
    Undecided,
    Jsonl,
    Binary(Box<StreamDecoder>),
}

/// Follows one growing trace file (JSONL or `.twb`) across
/// [`TraceFollower::poll`] calls, tracking a byte offset so each poll
/// reads only new data.
#[derive(Debug)]
pub struct TraceFollower {
    path: PathBuf,
    offset: u64,
    line_no: usize,
    pending: Vec<u8>,
    mode: Mode,
}

#[derive(Debug)]
pub enum FollowError {
    Io {
        path: PathBuf,
        source: io::Error,
    },
    /// The file shrank below the follower's offset — rotated or
    /// truncated underneath us; incremental state is unrecoverable.
    Shrunk {
        path: PathBuf,
        len: u64,
        offset: u64,
    },
    /// A newline-terminated line failed to parse (not a tail artifact).
    Line {
        line: usize,
        message: String,
    },
}

impl fmt::Display for FollowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FollowError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            FollowError::Shrunk { path, len, offset } => write!(
                f,
                "{}: file shrank to {len} bytes below follow offset {offset} (rotated?)",
                path.display()
            ),
            FollowError::Line { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for FollowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FollowError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl TraceFollower {
    pub fn new<P: AsRef<Path>>(path: P) -> TraceFollower {
        TraceFollower {
            path: path.as_ref().to_path_buf(),
            offset: 0,
            line_no: 0,
            pending: Vec::new(),
            mode: Mode::Undecided,
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes consumed from the file so far (including the pending tail).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// 1-based number of the last *completed* record (JSONL line, or
    /// binary record — the two count identically for the same run).
    pub fn line(&self) -> usize {
        self.line_no
    }

    /// Bytes held back waiting for their record to complete (the rest
    /// of a JSONL line, or of a binary record).
    pub fn pending_bytes(&self) -> usize {
        match &self.mode {
            Mode::Binary(dec) => dec.pending(),
            _ => self.pending.len(),
        }
    }

    /// Reads everything new since the last poll and returns the events
    /// from completed lines, each with its 1-based line number. A file
    /// that does not exist yet yields an empty batch (the writer may
    /// not have created it); an unterminated tail is held as pending.
    pub fn poll(&mut self) -> Result<Vec<(usize, Event)>, FollowError> {
        let io_err = |path: &Path, source: io::Error| FollowError::Io {
            path: path.to_path_buf(),
            source,
        };
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(&self.path, e)),
        };
        let len = file.metadata().map_err(|e| io_err(&self.path, e))?.len();
        if len < self.offset {
            return Err(FollowError::Shrunk {
                path: self.path.clone(),
                len,
                offset: self.offset,
            });
        }
        if len > self.offset {
            file.seek(SeekFrom::Start(self.offset))
                .map_err(|e| io_err(&self.path, e))?;
            let mut fresh = Vec::new();
            file.read_to_end(&mut fresh)
                .map_err(|e| io_err(&self.path, e))?;
            self.offset += fresh.len() as u64;
            self.pending.extend_from_slice(&fresh);
        }

        // The first byte fixes the format for the follower's lifetime;
        // sniffing tolerates a partial magic (a `.twb` writer can flush
        // mid-magic, and no JSONL event line starts with a magic byte).
        if matches!(self.mode, Mode::Undecided) && !self.pending.is_empty() {
            self.mode = match tagwatch_telemetry::format::sniff(&self.pending) {
                TraceFormat::Binary => Mode::Binary(Box::new(StreamDecoder::new())),
                TraceFormat::Jsonl => Mode::Jsonl,
            };
        }

        if let Mode::Binary(dec) = &mut self.mode {
            // The decoder keeps its own mid-record pending buffer; hand
            // everything over and let it commit whole records only.
            let fed = std::mem::take(&mut self.pending);
            let mut decoded = Vec::new();
            dec.feed(&fed, &mut decoded).map_err(|e| match e {
                // feed() holds incomplete records back rather than
                // reporting truncation, so an error here is corruption:
                // committed bytes that can never parse.
                DecodeError::Corrupt { record, message } => FollowError::Line {
                    line: record,
                    message,
                },
                DecodeError::Truncated { record } => FollowError::Line {
                    line: record,
                    message: "binary stream truncated".to_string(),
                },
            })?;
            self.line_no = dec.events_decoded();
            return Ok(decoded.into_iter().map(|d| (d.record, d.event)).collect());
        }

        let mut events = Vec::new();
        while let Some(nl) = self.pending.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = self.pending.drain(..=nl).collect();
            line.pop(); // the newline
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            self.line_no += 1;
            let text = std::str::from_utf8(&line).map_err(|e| FollowError::Line {
                line: self.line_no,
                message: format!("invalid UTF-8: {e}"),
            })?;
            if text.trim().is_empty() {
                continue;
            }
            let event = parse_line(text).map_err(|e| FollowError::Line {
                line: self.line_no,
                message: e.to_string(),
            })?;
            events.push((self.line_no, event));
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::{self, OpenOptions};
    use std::io::Write;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tagwatch_telemetry::FooterRecord;

    static SEQ: AtomicUsize = AtomicUsize::new(0);

    fn scratch(name: &str) -> PathBuf {
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("tagwatch-follow-{}-{n}-{name}", std::process::id()))
    }

    fn append(path: &Path, bytes: &[u8]) {
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap();
        f.write_all(bytes).unwrap();
    }

    fn gauge_line(name: &str, value: f64) -> String {
        let ev = Event::Gauge(tagwatch_telemetry::GaugeRecord {
            name: name.into(),
            value,
        });
        serde_json::to_string(&ev).unwrap()
    }

    #[test]
    fn missing_file_yields_empty_batches() {
        let mut f = TraceFollower::new(scratch("missing.jsonl"));
        assert!(f.poll().unwrap().is_empty());
        assert!(f.poll().unwrap().is_empty());
    }

    #[test]
    fn split_writes_reassemble_across_polls() {
        let path = scratch("split.jsonl");
        let line = gauge_line("round.sim_now", 1.5);
        let bytes = format!("{line}\n");
        let (head, tail) = bytes.as_bytes().split_at(bytes.len() / 2);

        let mut f = TraceFollower::new(&path);
        append(&path, head);
        assert!(f.poll().unwrap().is_empty(), "half a record is pending");
        assert!(f.pending_bytes() > 0);
        append(&path, tail);
        let events = f.poll().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, 1);
        assert!(matches!(&events[0].1, Event::Gauge(g) if g.name == "round.sim_now"));
        assert_eq!(f.pending_bytes(), 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn multibyte_utf8_split_at_every_offset_is_tolerated() {
        let path = scratch("utf8.jsonl");
        let line = gauge_line("round.µ_latency", 2.0);
        let bytes = format!("{line}\n").into_bytes();
        // Feed the line one byte at a time: no prefix may error, and
        // exactly the final byte completes the event.
        let mut f = TraceFollower::new(&path);
        for (i, b) in bytes.iter().enumerate() {
            append(&path, &[*b]);
            let events = f.poll().unwrap_or_else(|e| panic!("byte {i}: {e}"));
            if i + 1 == bytes.len() {
                assert_eq!(events.len(), 1);
            } else {
                assert!(events.is_empty(), "byte {i} completed early");
            }
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn terminated_garbage_is_a_line_error() {
        let path = scratch("garbage.jsonl");
        append(&path, b"{\"not\": \"an event\"}\n");
        let mut f = TraceFollower::new(&path);
        match f.poll() {
            Err(FollowError::Line { line: 1, .. }) => {}
            other => panic!("expected line error, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn shrinking_file_is_detected() {
        let path = scratch("shrink.jsonl");
        append(&path, format!("{}\n", gauge_line("g", 1.0)).as_bytes());
        let mut f = TraceFollower::new(&path);
        assert_eq!(f.poll().unwrap().len(), 1);
        fs::write(&path, b"").unwrap();
        assert!(matches!(f.poll(), Err(FollowError::Shrunk { .. })));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_trace_split_at_every_offset_is_tolerated() {
        use tagwatch_telemetry::binary::encode_stream;
        let events: Vec<Event> = (0..4)
            .map(|k| {
                Event::Gauge(tagwatch_telemetry::GaugeRecord {
                    name: format!("g{k}"),
                    value: k as f64,
                })
            })
            .collect();
        let bytes = encode_stream(&events);
        let path = scratch("bin.twb");
        // Feed byte-at-a-time: no prefix may error, every event arrives
        // exactly once, and record numbers match the emission order.
        let mut f = TraceFollower::new(&path);
        let mut got = Vec::new();
        for (i, b) in bytes.iter().enumerate() {
            append(&path, &[*b]);
            let batch = f.poll().unwrap_or_else(|e| panic!("byte {i}: {e}"));
            got.extend(batch);
        }
        assert_eq!(f.pending_bytes(), 0);
        assert_eq!(got.len(), events.len());
        for (k, ((n, ev), want)) in got.iter().zip(&events).enumerate() {
            assert_eq!(*n, k + 1);
            assert_eq!(ev, want);
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_corruption_is_a_line_error() {
        use tagwatch_telemetry::binary::{Encoder, ShardHeader};
        let mut bytes = Vec::new();
        Encoder::header(&ShardHeader::single(), &mut bytes);
        // A string definition claiming ~2^28 bytes: committed, terminated
        // varint, but far over the decoder's corruption cap.
        bytes.extend_from_slice(&[0x00, 0xff, 0xff, 0xff, 0x7f]);
        let path = scratch("corrupt.twb");
        append(&path, &bytes);
        let mut f = TraceFollower::new(&path);
        match f.poll() {
            Err(FollowError::Line { .. }) => {}
            other => panic!("expected line error, got {other:?}"),
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn footer_arrives_last_and_blank_lines_skip() {
        let path = scratch("footer.jsonl");
        let footer = Event::Footer(FooterRecord {
            emitted: 1,
            sampled_out: 0,
            dropped: 0,
            sample_every_n_rounds: 1,
            max_events: 0,
        });
        let text = format!(
            "{}\n\n{}\n",
            gauge_line("g", 1.0),
            serde_json::to_string(&footer).unwrap()
        );
        append(&path, text.as_bytes());
        let mut f = TraceFollower::new(&path);
        let events = f.poll().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].0, 3, "blank line still advances numbering");
        assert!(matches!(events[1].1, Event::Footer(_)));
        fs::remove_file(&path).ok();
    }
}
