//! [`MonitorSink`]: a tee that forwards every telemetry event to an
//! inner sink unchanged while driving the online analyzers, the health
//! watchdog, and the periodic snapshot/exposition writes.
//!
//! Determinism contract (the reason `--monitor` can be enabled on a
//! benchmarked run): every event reaches the inner sink byte-identical
//! and in order; flush cadence is keyed to the *simulated* clock, never
//! the wall clock; watchdog alarms are pure functions of the event
//! stream and configuration, injected as `alarm.*` tag events whose
//! timestamp is the trace's current simulated edge (so they cannot
//! widen the sim window or shift any analyzer verdict); and the metrics
//! registry is bypassed entirely, so `BenchSnapshot`s are unaffected.
//! File-write failures are counted in the next snapshot, never
//! propagated — a broken status directory must not kill the run.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use tagwatch_telemetry::{is_sim_deterministic, ClockKind, Event, RingSink, Sink, TagRecord};

use crate::exposition;
use crate::online::{OnlineAnalyzers, OnlineConfig};
use crate::snapshot::{write_atomic, MonitorSnapshot, EXPOSITION_FILE, STATUS_FILE};
use crate::verdict::FAULT_CLOSE_PREFIX;
use crate::watchdog::{Watchdog, WatchdogConfig};

/// Configuration for a [`MonitorSink`].
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Simulated seconds between snapshot/exposition flushes.
    pub flush_every_sim_seconds: f64,
    /// Online analyzer knobs (starvation gap must match the batch
    /// config used for any equality check).
    pub online: OnlineConfig,
    /// Watchdog thresholds.
    pub watchdog: WatchdogConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            flush_every_sim_seconds: 1.0,
            online: OnlineConfig::default(),
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// The monitoring tee. Wraps any inner sink; see the module docs for
/// the determinism contract.
pub struct MonitorSink {
    inner: Box<dyn Sink + Send>,
    dir: PathBuf,
    cfg: MonitorConfig,
    online: OnlineAnalyzers,
    watchdog: Watchdog,
    /// Optional flight-recorder handle polled for drop-rate alarms.
    ring: Option<RingSink>,
    seq: u64,
    last_flush: Option<f64>,
    footer_seen: bool,
    write_errors: u64,
}

impl MonitorSink {
    /// Creates the status directory and wraps `inner`.
    pub fn create<P: AsRef<Path>>(
        dir: P,
        inner: Box<dyn Sink + Send>,
        cfg: MonitorConfig,
    ) -> io::Result<MonitorSink> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(MonitorSink {
            inner,
            dir,
            online: OnlineAnalyzers::new(cfg.online),
            watchdog: Watchdog::new(cfg.watchdog.clone()),
            cfg,
            ring: None,
            seq: 0,
            last_flush: None,
            footer_seen: false,
            write_errors: 0,
        })
    }

    /// Attaches a flight-recorder handle to poll for drop-rate alarms.
    /// The ring is observed, not written to — install it as (part of)
    /// the inner sink separately if its contents should fill.
    pub fn watch_ring(&mut self, ring: RingSink) {
        self.ring = Some(ring);
    }

    pub fn status_path(&self) -> PathBuf {
        self.dir.join(STATUS_FILE)
    }

    pub fn exposition_path(&self) -> PathBuf {
        self.dir.join(EXPOSITION_FILE)
    }

    /// Snapshot/exposition writes that have failed so far.
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }

    /// Point-in-time snapshot of the analyzers (does not write files).
    pub fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot::capture(
            &self.online,
            self.seq,
            self.watchdog.alarms().to_vec(),
            self.write_errors,
        )
    }

    fn write_out(&mut self) {
        self.seq += 1;
        let snap = self.snapshot();
        if snap.save_atomic(&self.status_path()).is_err() {
            self.write_errors += 1;
        }
        if write_atomic(&self.exposition_path(), &exposition::render(&snap)).is_err() {
            self.write_errors += 1;
        }
    }

    /// The simulated instant an event contributes, if any: a sim span's
    /// end, a tag event's timestamp, or a `*.sim_now` heartbeat gauge
    /// (emitted by the reader/controller so staleness detection keeps
    /// pace while the enclosing spans are still open). Heartbeats feed
    /// only the watchdog — the online analyzers' sim window stays
    /// span/tag-derived, exactly like the batch path's.
    fn sim_instant(event: &Event) -> Option<f64> {
        match event {
            Event::Span(s) if s.clock == ClockKind::Sim => Some(s.start + s.duration),
            Event::Tag(t) => Some(t.t),
            Event::Gauge(g) if g.name.ends_with(".sim_now") => Some(g.value),
            _ => None,
        }
    }

    fn run_watchdog(&mut self, event: &Event) {
        if let Some(t) = Self::sim_instant(event) {
            self.watchdog.on_sim_instant(t);
        }
        // Alarm timestamps pin to the trace edge, which only exists
        // once some sim time has been observed.
        let Some((_, edge)) = self.online.sim_window() else {
            return;
        };
        match event {
            Event::Span(s) if s.name == "round" => self.watchdog.on_round(),
            Event::Span(s) if s.name == "cycle" => self.watchdog.on_cycle(edge),
            Event::Tag(t) if t.name.starts_with(FAULT_CLOSE_PREFIX) => {
                // The close marker has already been fed to the online
                // fault accumulator, so the just-closed window is the
                // last closed one matching (epc, slug).
                let slug = t.name[FAULT_CLOSE_PREFIX.len()..].to_string();
                if let Some(fr) = self.online.fault_report() {
                    if let Some(w) = fr
                        .windows
                        .iter()
                        .rev()
                        .find(|w| w.event_idx == t.epc && w.slug == slug && w.closed)
                    {
                        self.watchdog
                            .on_fault_close(&slug, w.irr, fr.irr_clean, edge);
                    }
                }
            }
            _ => {}
        }
        if let Some(ring) = &self.ring {
            self.watchdog.on_ring(ring.dropped(), ring.seen(), edge);
        }
        // Feed fresh alarms back into the trace (pre-footer only: a
        // closed trace must not grow events after its footer).
        for alarm in self.watchdog.drain_new() {
            if !self.footer_seen {
                self.inner.record(&Event::Tag(TagRecord {
                    name: format!("alarm.{}", alarm.kind),
                    epc: u128::from(alarm.seq),
                    t: alarm.t,
                }));
            }
        }
    }
}

impl Sink for MonitorSink {
    fn record(&mut self, event: &Event) {
        self.inner.record(event);
        if matches!(event, Event::Footer(_)) {
            self.footer_seen = true;
        }
        if is_sim_deterministic(event) {
            self.online.push(event);
            self.run_watchdog(event);
        }
        if let Some((_, hi)) = self.online.sim_window() {
            let due = self
                .last_flush
                .is_none_or(|lf| hi - lf >= self.cfg.flush_every_sim_seconds);
            if due {
                self.last_flush = Some(hi);
                self.write_out();
            }
        }
    }

    fn flush(&mut self) {
        // `Telemetry::finish` records the footer into every sink and
        // then flushes it, so this final write carries the complete
        // whole-trace verdicts (`footer_seen: true`).
        self.write_out();
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tagwatch_telemetry::{
        jsonl, FooterRecord, JsonlSink, MemorySink, NullSink, SpanRecord, Telemetry,
    };

    static SEQ: AtomicUsize = AtomicUsize::new(0);

    fn scratch_dir(name: &str) -> PathBuf {
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "tagwatch-monitor-sink-{}-{n}-{name}",
            std::process::id()
        ))
    }

    fn sim_span(name: &str, id: u64, start: f64, dur: f64) -> Event {
        Event::Span(SpanRecord {
            name: name.into(),
            id,
            parent: None,
            start,
            duration: dur,
            clock: ClockKind::Sim,
        })
    }

    fn tag(name: &str, epc: u128, t: f64) -> Event {
        Event::Tag(TagRecord {
            name: name.into(),
            epc,
            t,
        })
    }

    fn footer() -> Event {
        Event::Footer(FooterRecord {
            emitted: 0,
            sampled_out: 0,
            dropped: 0,
            sample_every_n_rounds: 1,
            max_events: 0,
        })
    }

    #[test]
    fn tee_forwards_every_event_in_order() {
        let dir = scratch_dir("tee");
        let mem = MemorySink::new(64);
        let mut sink =
            MonitorSink::create(&dir, Box::new(mem.clone()), MonitorConfig::default()).unwrap();
        let events = [
            sim_span("cycle", 1, 0.0, 10.0),
            tag("read.phase1", 1, 0.5),
            footer(),
        ];
        for e in &events {
            sink.record(e);
        }
        sink.flush();
        assert_eq!(mem.events().len(), 3, "no alarms, nothing reordered");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sim_clock_flushes_write_snapshot_and_exposition() {
        let dir = scratch_dir("flush");
        let mut sink = MonitorSink::create(
            &dir,
            Box::new(NullSink),
            MonitorConfig {
                flush_every_sim_seconds: 1.0,
                ..MonitorConfig::default()
            },
        )
        .unwrap();
        sink.record(&tag("read.phase1", 1, 0.0));
        assert!(sink.status_path().exists(), "first sim instant flushes");
        sink.record(&tag("read.phase1", 1, 5.0));
        let snap = MonitorSnapshot::load(&sink.status_path()).unwrap();
        assert_eq!(snap.seq, 2);
        assert_eq!(snap.tags.reads_total, 2);
        assert!(!snap.footer_seen);
        exposition::validate(&fs::read_to_string(sink.exposition_path()).unwrap()).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn final_flush_is_complete_even_without_sim_activity_since() {
        let dir = scratch_dir("final");
        let mut sink =
            MonitorSink::create(&dir, Box::new(NullSink), MonitorConfig::default()).unwrap();
        sink.record(&sim_span("cycle", 1, 0.0, 10.0));
        sink.record(&footer());
        sink.flush();
        let snap = MonitorSnapshot::load(&sink.status_path()).unwrap();
        assert!(snap.footer_seen);
        assert!((snap.sim_seconds - 10.0).abs() < 1e-12);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_watchdog_alarm_lands_in_the_trace_pre_footer() {
        let dir = scratch_dir("alarm");
        let mem = MemorySink::new(64);
        let mut sink = MonitorSink::create(
            &dir,
            Box::new(mem.clone()),
            MonitorConfig {
                watchdog: WatchdogConfig {
                    stale_after: 1.0,
                    ..WatchdogConfig::default()
                },
                ..MonitorConfig::default()
            },
        )
        .unwrap();
        sink.record(&tag("read.phase1", 1, 0.0));
        sink.record(&tag("read.phase1", 1, 5.0)); // 5 s gap > 1 s bar
        sink.record(&footer());
        sink.flush();
        let events = mem.events();
        let alarm = events
            .iter()
            .find_map(|e| match e {
                Event::Tag(t) if t.name == "alarm.stale" => Some(t.clone()),
                _ => None,
            })
            .expect("stale alarm injected");
        assert!((alarm.t - 5.0).abs() < 1e-12, "pinned to the trace edge");
        let snap = MonitorSnapshot::load(&sink.status_path()).unwrap();
        assert_eq!(snap.alarms.len(), 1);
        assert_eq!(snap.alarms[0].kind, "stale");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn alarms_after_the_footer_stay_out_of_the_trace() {
        let dir = scratch_dir("postfooter");
        let mem = MemorySink::new(64);
        let mut sink = MonitorSink::create(
            &dir,
            Box::new(mem.clone()),
            MonitorConfig {
                watchdog: WatchdogConfig {
                    stale_after: 1.0,
                    ..WatchdogConfig::default()
                },
                ..MonitorConfig::default()
            },
        )
        .unwrap();
        sink.record(&tag("read.phase1", 1, 0.0));
        sink.record(&footer());
        sink.record(&tag("read.phase1", 1, 9.0)); // would alarm
        sink.flush();
        assert!(
            !mem.events()
                .iter()
                .any(|e| matches!(e, Event::Tag(t) if t.name.starts_with("alarm."))),
            "no trace growth after the footer"
        );
        // …but the snapshot still reports it.
        assert_eq!(sink.snapshot().alarms.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ring_drop_alarm_fires_from_the_watched_ring() {
        let dir = scratch_dir("ring");
        let ring = RingSink::new(2);
        let mut sink =
            MonitorSink::create(&dir, Box::new(NullSink), MonitorConfig::default()).unwrap();
        sink.watch_ring(ring.clone());
        // Overfill the ring out-of-band (in production it is part of
        // the installed sink stack).
        let mut r = ring.clone();
        for i in 0..10 {
            r.record(&tag("read.phase1", 1, i as f64));
        }
        sink.record(&tag("read.phase1", 1, 0.0));
        let kinds: Vec<String> = sink
            .snapshot()
            .alarms
            .iter()
            .map(|a| a.kind.clone())
            .collect();
        assert!(kinds.contains(&"ring_drop".to_string()), "{kinds:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn monitored_jsonl_trace_stays_valid_and_alarm_free_runs_match() {
        // End-to-end through a real Telemetry handle: the teed JSONL
        // must re-ingest cleanly.
        let dir = scratch_dir("roundtrip");
        fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.jsonl");
        let tel = Telemetry::new();
        let jsonl_sink = JsonlSink::create(&trace_path).unwrap();
        let monitor = MonitorSink::create(
            dir.join("mon"),
            Box::new(jsonl_sink),
            MonitorConfig::default(),
        )
        .unwrap();
        tel.install(Box::new(monitor));
        let span = tel.sim_span("cycle", 0.0);
        tel.tag_event("read.phase1", 1, 0.5);
        span.end(2.0);
        tel.finish();
        let events = jsonl::read_events_path(&trace_path).unwrap();
        assert!(matches!(events.last(), Some((_, Event::Footer(_)))));
        assert_eq!(events.len(), 3);
        fs::remove_dir_all(&dir).ok();
    }
}
