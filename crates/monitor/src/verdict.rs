//! Analyzer verdict types, shared verbatim between the batch analyzers in
//! `tagwatch-obs` and the online analyzers in [`crate::online`]. The
//! structs (and their serde field order) moved here unchanged from
//! `tagwatch-obs`, which re-exports them — serialized output is identical
//! to what the batch analyzers always produced, and "online equals batch"
//! can be asserted with a plain string comparison of the JSON forms.
//!
//! The derived-rate helpers ([`mean_of`], [`ConfusionSummary::from_counts`])
//! reproduce `tagwatch::metrics::{mean, Confusion}` expression-for-
//! expression; this crate cannot depend on `tagwatch` (the simulation
//! core) without dragging the whole stack into the monitoring plane.

use serde::{Deserialize, Serialize};

/// Tag-event names the controller emits (see `tagwatch-telemetry`
/// [`TagRecord`](tagwatch_telemetry::TagRecord)).
pub const READ_PHASE1: &str = "read.phase1";
pub const READ_PHASE2: &str = "read.phase2";
pub const ASSESS_MOBILE: &str = "assess.mobile";
/// Ground-truth annotation the experiment harness emits for tags that
/// actually move in the scene.
pub const TRUTH_MOBILE: &str = "truth.mobile";
/// Fault-window edge markers the reader emits when a `tagwatch-fault`
/// injector is installed. The suffix is the fault kind's slug; the
/// marker's `epc` is the plan-event index and its `t` the canonical
/// window edge.
pub const FAULT_OPEN_PREFIX: &str = "fault.open.";
pub const FAULT_CLOSE_PREFIX: &str = "fault.close.";
/// Watchdog alarms the live monitor feeds back into the trace (see
/// [`crate::watchdog`]). The suffix is the alarm kind; the marker's
/// `epc` is the alarm sequence number and its `t` the sim time of the
/// trace when the alarm fired. Every analyzer ignores the prefix.
pub const ALARM_PREFIX: &str = "alarm.";

/// The fault-machinery counters that participate in fault attribution.
pub const FAULT_COUNTERS: [&str; 3] = [
    "fault.reader_restarts",
    "fault.selects_lost",
    "fault.antenna_out_rounds",
];

/// EPC bits rendered as hex — JSON numbers above 2^53 lose precision in
/// many consumers, so the wire form is a string.
pub fn epc_hex(bits: u128) -> String {
    format!("{bits:#x}")
}

/// Arithmetic mean, `0.0` on an empty sample. Must stay expression-
/// identical to `tagwatch::metrics::mean` — the batch analyzers used
/// that helper before the verdict types moved here.
pub fn mean_of(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// One tag's reading history over the whole trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TagStats {
    /// EPC bits rendered as hex — JSON numbers above 2^53 lose precision
    /// in many consumers, so the wire form is a string.
    pub epc: String,
    pub reads: usize,
    pub first: f64,
    pub last: f64,
    /// Reads per second over the trace's simulated window.
    pub irr: f64,
    /// Longest gap between consecutive reads (0 with fewer than 2 reads).
    pub max_gap: f64,
}

/// Aggregate per-tag reading statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TagSummary {
    /// Distinct EPCs seen in `read.*` events.
    pub tags: usize,
    pub reads_total: usize,
    pub irr_mean: f64,
    pub irr_min: f64,
    pub irr_max: f64,
    /// Per-tag detail, sorted by EPC.
    pub per_tag: Vec<TagStats>,
}

/// One starvation window: a tag went unread for longer than the
/// configured gap while the reader was active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StarvationEvent {
    pub epc: String,
    pub from: f64,
    pub to: f64,
    pub gap: f64,
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StarvationReport {
    pub gap_threshold: f64,
    /// Tags with at least one starvation window.
    pub starved_tags: usize,
    pub events: Vec<StarvationEvent>,
}

/// Mobile/stationary detector confusion versus `truth.mobile` ground
/// truth, accumulated per cycle over that cycle's census.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfusionSummary {
    pub tp: usize,
    pub fp: usize,
    pub tn: usize,
    #[serde(rename = "fn")]
    pub fn_: usize,
    pub tpr: f64,
    pub fpr: f64,
    pub accuracy: f64,
    /// Cycles that contributed samples.
    pub cycles: usize,
}

impl ConfusionSummary {
    /// Derived rates from raw counts, expression-identical to
    /// `tagwatch::metrics::Confusion::{tpr, fpr, accuracy}`.
    pub fn from_counts(tp: usize, fp: usize, tn: usize, fn_: usize, cycles: usize) -> Self {
        let pos = tp + fn_;
        let neg = fp + tn;
        let total = tp + fp + tn + fn_;
        ConfusionSummary {
            tp,
            fp,
            tn,
            fn_,
            tpr: if pos == 0 {
                0.0
            } else {
                tp as f64 / pos as f64
            },
            fpr: if neg == 0 {
                0.0
            } else {
                fp as f64 / neg as f64
            },
            accuracy: if total == 0 {
                0.0
            } else {
                (tp + tn) as f64 / total as f64
            },
            cycles,
        }
    }
}

/// Q-adaptation diagnostics over the `round.q_final` series.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QDiagnostics {
    /// Rounds that reported a final Q.
    pub rounds: usize,
    pub mean_q: f64,
    /// Direction reversals in consecutive Q deltas (up→down or down→up).
    pub reversals: usize,
    /// Reversals per Q change — near 1.0 means Q is thrashing between
    /// values instead of converging.
    pub oscillation: f64,
    /// Mid-round Qfp adjustments per round.
    pub adjusts_per_round: f64,
}

/// One reconstructed fault-injection window: a `fault.open.<slug>`
/// marker paired with its `fault.close.<slug>` partner (same plan-event
/// index). A window the run ended inside stays `closed: false` and
/// extends to the end of the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Plan-event index (the marker's `epc`).
    pub event_idx: u128,
    /// Fault-kind slug, e.g. `antenna_outage`.
    pub slug: String,
    pub start: f64,
    pub end: f64,
    pub closed: bool,
    /// `read.*` events landing inside `[start, end)`.
    pub reads: usize,
    /// Aggregate reads per second inside the window.
    pub irr: f64,
}

/// Degradation attribution for a fault-injected run: how much of the
/// trace sat under an injection window, and how the aggregate reading
/// rate inside those windows compares to the clean remainder.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    pub windows: Vec<FaultWindow>,
    pub reader_restarts: u64,
    pub selects_lost: u64,
    pub antenna_out_rounds: u64,
    /// Simulated seconds under at least one window (union, overlaps
    /// merged).
    pub faulted_seconds: f64,
    /// Aggregate reads/s inside the union of windows.
    pub irr_faulted: f64,
    /// Aggregate reads/s outside every window.
    pub irr_clean: f64,
    /// `irr_faulted / irr_clean` — below 1.0 means the injection windows
    /// carry measurably less reading, i.e. the dip is attributable to
    /// the faults. 1.0 when either side is empty.
    pub degradation: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epc_hex_renders_prefixed_lowercase() {
        assert_eq!(epc_hex(0x1), "0x1");
        assert_eq!(epc_hex(0xdead_beef), "0xdeadbeef");
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert!(mean_of(&[]).abs() < f64::EPSILON);
        assert!((mean_of(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_rates_guard_empty_denominators() {
        let c = ConfusionSummary::from_counts(0, 0, 0, 0, 0);
        assert!(c.tpr.abs() < f64::EPSILON && c.fpr.abs() < f64::EPSILON);
        let c = ConfusionSummary::from_counts(2, 1, 3, 0, 2);
        assert!((c.tpr - 1.0).abs() < 1e-12);
        assert!((c.fpr - 0.25).abs() < 1e-12);
        assert!((c.accuracy - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_fn_field_keeps_its_wire_name() {
        let c = ConfusionSummary::from_counts(1, 0, 0, 2, 1);
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("\"fn\":2"), "{json}");
        let back: ConfusionSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
