//! Synthetic TrackPoint trace generator (§2.4's motivating case study).
//!
//! The paper's trace is 4 hours of a real sorting-gate deployment: 527
//! tags, 367,536 readings, at most ~5.7% of tags simultaneously on the
//! conveyor, one parked tag (#271) read ~90,000 times because its package
//! sat right next to the gate. The raw trace is proprietary, so this
//! generator synthesises a trace matched to the published summary
//! statistics (see `repro_why` substitution note in DESIGN.md):
//!
//! * conveyor pieces arrive as a Poisson process and transit the gate in
//!   a few seconds, collecting a few reads each;
//! * parked (sorted) pieces sit near the gate for the whole trace and
//!   soak up reads in proportion to a proximity weight — heavy-tailed, so
//!   a handful of close tags dominate exactly like tag #271.
//!
//! Reads are allocated second-by-second from an aggregate budget derived
//! from the reader's cost model and an activity duty cycle, then split by
//! weight — the same physics, without simulating 14,400 seconds of slots.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tagwatch_gen2::CostModel;

/// Trace generation parameters (defaults calibrated to the paper's
/// published statistics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Trace duration in seconds (paper: ≈ 4 h).
    pub duration: f64,
    /// Total distinct tags (paper: 527).
    pub total_tags: usize,
    /// Parked tags continuously present near the gate.
    pub parked_tags: usize,
    /// Mean conveyor arrivals per second (Poisson).
    pub arrivals_per_s: f64,
    /// Transit time of a conveyor piece through the read zone, seconds.
    pub transit_s: f64,
    /// Fraction of each second the reader actually spends inventorying
    /// (gates trigger read sessions; they do not run saturated).
    pub duty_cycle: f64,
    /// Zipf-like exponent of the parked tags' proximity weights.
    pub proximity_skew: f64,
    /// Extra weight multiplier of the pathological closest tag (#271).
    pub hot_tag_boost: f64,
    /// Cost model for the aggregate read budget.
    pub cost: CostModel,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            duration: 4.0 * 3600.0,
            total_tags: 527,
            parked_tags: 130,
            arrivals_per_s: 0.0276, // ≈ 397 conveyor pieces in 4 h
            transit_s: 5.0,
            duty_cycle: 0.062,
            proximity_skew: 1.1,
            hot_tag_boost: 1.25,
            cost: CostModel::paper(),
        }
    }
}

/// One reading event in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceReading {
    /// Tag identifier, `0 .. total_tags`. Parked tags come first; tag 0 is
    /// the pathological hot tag.
    pub tag: u32,
    /// Reading time in seconds since trace start.
    pub t: f64,
    /// Whether the tag was on the conveyor (moving) at this reading.
    pub moving: bool,
}

/// A generated trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Configuration that produced it.
    pub config: TraceConfig,
    /// All readings, time-ordered.
    pub readings: Vec<TraceReading>,
    /// Number of parked tags (ids `0..parked`); the rest are conveyor.
    pub parked: usize,
}

impl Trace {
    /// Total readings.
    pub fn len(&self) -> usize {
        self.readings.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }
}

/// Generates a trace from `cfg` with the given seed.
pub fn generate(cfg: &TraceConfig, seed: u64) -> Trace {
    assert!(cfg.parked_tags <= cfg.total_tags);
    assert!(cfg.duty_cycle > 0.0 && cfg.duty_cycle <= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);

    // Parked-tag proximity weights: Zipf-ish, with the hot tag boosted.
    let mut weights: Vec<f64> = (0..cfg.parked_tags)
        .map(|k| 1.0 / ((k + 1) as f64).powf(cfg.proximity_skew))
        .collect();
    if let Some(w) = weights.first_mut() {
        *w *= cfg.hot_tag_boost;
    }

    // Conveyor arrival schedule: Poisson arrivals, each piece a new tag id
    // until the tag budget runs out (then ids recycle — re-circulated
    // totes, which real sorting systems have too).
    let conveyor_ids = cfg.total_tags - cfg.parked_tags;
    let mut arrivals: Vec<(f64, u32)> = Vec::new();
    if conveyor_ids > 0 {
        let mut t = 0.0;
        let mut next_id = 0usize;
        loop {
            // Exponential inter-arrival.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / cfg.arrivals_per_s;
            if t >= cfg.duration {
                break;
            }
            let id = cfg.parked_tags as u32 + (next_id % conveyor_ids) as u32;
            next_id += 1;
            arrivals.push((t, id));
        }
    }

    // Second-by-second read allocation.
    let mut readings: Vec<TraceReading> = Vec::new();
    let mut active_idx = 0usize; // first arrival not yet expired
    for sec in 0..cfg.duration as usize {
        let t0 = sec as f64;
        // Conveyor pieces in the zone this second.
        while active_idx < arrivals.len() && arrivals[active_idx].0 + cfg.transit_s < t0 {
            active_idx += 1;
        }
        let in_zone: Vec<u32> = arrivals[active_idx..]
            .iter()
            .take_while(|(at, _)| *at < t0 + 1.0)
            .filter(|(at, _)| at + cfg.transit_s >= t0)
            .map(|&(_, id)| id)
            .collect();

        let n_present = cfg.parked_tags + in_zone.len();
        if n_present == 0 {
            continue;
        }
        // Aggregate budget: n/C(n) reads per active second, derated by the
        // duty cycle.
        let budget = (n_present as f64 / cfg.cost.inventory_cost(n_present) * cfg.duty_cycle)
            .round() as usize;

        // Weighted allocation: movers carry the mean parked weight ×4 —
        // they sit directly under the gate antennas while in the zone.
        let mover_weight = weights.iter().sum::<f64>() / weights.len().max(1) as f64 * 4.0;
        let total_weight = weights.iter().sum::<f64>() + mover_weight * in_zone.len() as f64;
        for _ in 0..budget {
            let mut pick = rng.gen_range(0.0..total_weight);
            let t_read = t0 + rng.gen_range(0.0..1.0);
            let mut chosen: Option<(u32, bool)> = None;
            for (k, w) in weights.iter().enumerate() {
                if pick < *w {
                    chosen = Some((k as u32, false));
                    break;
                }
                pick -= w;
            }
            if chosen.is_none() {
                let idx = (pick / mover_weight) as usize;
                let id = in_zone[idx.min(in_zone.len() - 1)];
                chosen = Some((id, true));
            }
            let (tag, moving) = chosen.expect("allocation always picks"); // lint:allow(panic-policy): the fallback above always picks a tag
            readings.push(TraceReading {
                tag,
                t: t_read,
                moving,
            });
        }
    }
    readings.sort_by(|a, b| a.t.partial_cmp(&b.t).expect("times are finite")); // lint:allow(panic-policy): read times are finite by construction

    Trace {
        config: *cfg,
        readings,
        parked: cfg.parked_tags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TraceConfig {
        TraceConfig {
            duration: 600.0,
            total_tags: 80,
            parked_tags: 30,
            arrivals_per_s: 0.05,
            ..Default::default()
        }
    }

    #[test]
    fn all_parked_population_has_no_conveyor_readings() {
        // Degenerate but legal: every tag parked, none on the belt.
        let cfg = TraceConfig {
            duration: 120.0,
            total_tags: 10,
            parked_tags: 10,
            ..Default::default()
        };
        let tr = generate(&cfg, 3);
        assert!(!tr.is_empty());
        assert!(tr.readings.iter().all(|r| !r.moving));
        assert!(tr.readings.iter().all(|r| (r.tag as usize) < 10));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small(), 7);
        let b = generate(&small(), 7);
        assert_eq!(a, b);
        let c = generate(&small(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn readings_are_time_ordered_and_in_range() {
        let tr = generate(&small(), 1);
        assert!(!tr.is_empty());
        let mut prev = 0.0;
        for r in &tr.readings {
            assert!(r.t >= prev);
            assert!(r.t < 600.0 + 1.0);
            assert!((r.tag as usize) < 80);
            prev = r.t;
        }
    }

    #[test]
    fn moving_flags_match_id_ranges() {
        let tr = generate(&small(), 2);
        for r in &tr.readings {
            if r.moving {
                assert!(r.tag as usize >= tr.parked, "mover id in parked range");
            } else {
                assert!((r.tag as usize) < tr.parked, "parked id in mover range");
            }
        }
    }

    #[test]
    fn hot_tag_dominates() {
        let tr = generate(&small(), 3);
        let mut counts = vec![0usize; 80];
        for r in &tr.readings {
            counts[r.tag as usize] += 1;
        }
        let hot = counts[0];
        let second = *counts[1..].iter().max().unwrap();
        assert!(hot > 2 * second, "hot {hot} vs runner-up {second}");
    }

    #[test]
    fn movers_read_far_less_than_parked() {
        let tr = generate(&small(), 4);
        let mut parked_total = 0usize;
        let mut mover_total = 0usize;
        for r in &tr.readings {
            if r.moving {
                mover_total += 1;
            } else {
                parked_total += 1;
            }
        }
        assert!(parked_total > 5 * mover_total.max(1));
    }

    #[test]
    fn paper_scale_trace_matches_headline_stats() {
        // The full 4-hour configuration must land near the published
        // numbers: ~367k readings, hot tag ~90k.
        let tr = generate(&TraceConfig::default(), 42);
        let total = tr.len();
        assert!(
            (300_000..440_000).contains(&total),
            "total readings {total}"
        );
        let mut counts = vec![0usize; 527];
        for r in &tr.readings {
            counts[r.tag as usize] += 1;
        }
        let hot = counts[0];
        assert!((60_000..120_000).contains(&hot), "hot tag reads {hot}");
    }
}
