//! Trace persistence: CSV and JSON export/import.
//!
//! The CSV schema is one row per reading — `tag,t,moving` — the shape
//! analysis notebooks expect; JSON round-trips the full [`Trace`]
//! including its configuration. Import failures are typed
//! ([`RecordError`]) and carry 1-based line numbers where one exists, so
//! callers can point at the offending row instead of guessing.

use crate::generator::{Trace, TraceConfig, TraceReading};
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Why a persisted trace failed to re-import.
#[derive(Debug)]
pub enum RecordError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The CSV header row is not `tag,t,moving`.
    Header {
        /// The header actually found, abbreviated for display.
        found: String,
    },
    /// A CSV field failed to parse.
    Field {
        /// 1-based line number of the offending row.
        line: usize,
        /// Which column was malformed (`tag`, `t`, or `moving`).
        column: &'static str,
    },
    /// The JSON document is not a serialized [`Trace`].
    Json {
        /// The serde decode error, rendered.
        message: String,
    },
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Io(source) => write!(f, "I/O error: {source}"),
            RecordError::Header { found } => {
                write!(
                    f,
                    "unexpected CSV header: {found:?} (want \"tag,t,moving\")"
                )
            }
            RecordError::Field { line, column } => {
                write!(f, "line {line}: bad {column}")
            }
            RecordError::Json { message } => write!(f, "not a serialized trace: {message}"),
        }
    }
}

impl std::error::Error for RecordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecordError::Io(source) => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for RecordError {
    fn from(source: io::Error) -> Self {
        RecordError::Io(source)
    }
}

/// Writes a trace as CSV (`tag,t,moving` with a header row).
pub fn write_csv<W: Write>(trace: &Trace, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "tag,t,moving")?;
    for r in &trace.readings {
        writeln!(w, "{},{:.6},{}", r.tag, r.t, r.moving as u8)?;
    }
    w.flush()
}

/// Reads the readings back from CSV produced by [`write_csv`]. The trace
/// configuration is not stored in CSV; the caller supplies it.
pub fn read_csv<R: Read>(
    input: R,
    config: TraceConfig,
    parked: usize,
) -> Result<Trace, RecordError> {
    let reader = BufReader::new(input);
    let mut readings = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 {
            if line.trim() != "tag,t,moving" {
                return Err(RecordError::Header { found: line });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let field_err = |column: &'static str| RecordError::Field {
            line: lineno + 1,
            column,
        };
        let tag: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| field_err("tag"))?;
        let t: f64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| field_err("t"))?;
        let moving = match parts.next() {
            Some("0") => false,
            Some("1") => true,
            _ => return Err(field_err("moving")),
        };
        readings.push(TraceReading { tag, t, moving });
    }
    Ok(Trace {
        config,
        readings,
        parked,
    })
}

/// Serialises the full trace (config + readings) to JSON.
pub fn write_json<W: Write>(trace: &Trace, out: W) -> io::Result<()> {
    serde_json::to_writer(BufWriter::new(out), trace).map_err(io::Error::other)
}

/// Deserialises a trace from JSON.
pub fn read_json<R: Read>(input: R) -> Result<Trace, RecordError> {
    serde_json::from_reader(BufReader::new(input)).map_err(|e| RecordError::Json {
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::generator::{generate, TraceConfig};

    fn small_trace() -> Trace {
        generate(
            &TraceConfig {
                duration: 120.0,
                total_tags: 20,
                parked_tags: 8,
                ..Default::default()
            },
            9,
        )
    }

    #[test]
    fn csv_round_trip() {
        let tr = small_trace();
        let mut buf = Vec::new();
        write_csv(&tr, &mut buf).unwrap();
        let back = read_csv(buf.as_slice(), tr.config, tr.parked).unwrap();
        assert_eq!(back.readings.len(), tr.readings.len());
        for (a, b) in tr.readings.iter().zip(&back.readings) {
            assert_eq!(a.tag, b.tag);
            assert_eq!(a.moving, b.moving);
            assert!((a.t - b.t).abs() < 1e-5);
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let tr = small_trace();
        let mut buf = Vec::new();
        write_json(&tr, &mut buf).unwrap();
        let back = read_json(buf.as_slice()).unwrap();
        assert_eq!(back, tr);
    }

    #[test]
    fn csv_rejects_garbage_with_typed_errors() {
        let cfg = TraceConfig::default();
        match read_csv("nonsense header\n".as_bytes(), cfg, 0) {
            Err(RecordError::Header { found }) => assert_eq!(found, "nonsense header"),
            other => panic!("expected Header error, got {other:?}"),
        }
        match read_csv("tag,t,moving\nx,1.0,0\n".as_bytes(), cfg, 0) {
            Err(RecordError::Field { line: 2, column }) => assert_eq!(column, "tag"),
            other => panic!("expected Field error, got {other:?}"),
        }
        match read_csv("tag,t,moving\n1,huh,0\n".as_bytes(), cfg, 0) {
            Err(RecordError::Field { line: 2, column }) => assert_eq!(column, "t"),
            other => panic!("expected Field error, got {other:?}"),
        }
        match read_csv("tag,t,moving\n1,1.0,5\n".as_bytes(), cfg, 0) {
            Err(RecordError::Field { line: 2, column }) => assert_eq!(column, "moving"),
            other => panic!("expected Field error, got {other:?}"),
        }
    }

    #[test]
    fn bad_json_is_a_typed_error() {
        match read_json("{\"not\": \"a trace\"}".as_bytes()) {
            Err(RecordError::Json { .. }) => {}
            other => panic!("expected Json error, got {other:?}"),
        }
    }

    #[test]
    fn csv_tolerates_blank_lines() {
        let cfg = TraceConfig::default();
        let tr = read_csv("tag,t,moving\n1,0.5,1\n\n2,0.7,0\n".as_bytes(), cfg, 1).unwrap();
        assert_eq!(tr.readings.len(), 2);
        assert!(tr.readings[0].moving);
        assert!(!tr.readings[1].moving);
    }
}
