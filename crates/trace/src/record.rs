//! Trace persistence: CSV and JSON export/import.
//!
//! The CSV schema is one row per reading — `tag,t,moving` — the shape
//! analysis notebooks expect; JSON round-trips the full [`Trace`]
//! including its configuration.

use crate::generator::{Trace, TraceConfig, TraceReading};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Writes a trace as CSV (`tag,t,moving` with a header row).
pub fn write_csv<W: Write>(trace: &Trace, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "tag,t,moving")?;
    for r in &trace.readings {
        writeln!(w, "{},{:.6},{}", r.tag, r.t, r.moving as u8)?;
    }
    w.flush()
}

/// Reads the readings back from CSV produced by [`write_csv`]. The trace
/// configuration is not stored in CSV; the caller supplies it.
pub fn read_csv<R: Read>(input: R, config: TraceConfig, parked: usize) -> io::Result<Trace> {
    let reader = BufReader::new(input);
    let mut readings = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 {
            if line.trim() != "tag,t,moving" {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected CSV header: {line:?}"),
                ));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let parse_err = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad {what}", lineno + 1),
            )
        };
        let tag: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("tag"))?;
        let t: f64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("t"))?;
        let moving = match parts.next() {
            Some("0") => false,
            Some("1") => true,
            _ => return Err(parse_err("moving")),
        };
        readings.push(TraceReading { tag, t, moving });
    }
    Ok(Trace {
        config,
        readings,
        parked,
    })
}

/// Serialises the full trace (config + readings) to JSON.
pub fn write_json<W: Write>(trace: &Trace, out: W) -> io::Result<()> {
    serde_json::to_writer(BufWriter::new(out), trace).map_err(io::Error::other)
}

/// Deserialises a trace from JSON.
pub fn read_json<R: Read>(input: R) -> io::Result<Trace> {
    serde_json::from_reader(BufReader::new(input))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, TraceConfig};

    fn small_trace() -> Trace {
        generate(
            &TraceConfig {
                duration: 120.0,
                total_tags: 20,
                parked_tags: 8,
                ..Default::default()
            },
            9,
        )
    }

    #[test]
    fn csv_round_trip() {
        let tr = small_trace();
        let mut buf = Vec::new();
        write_csv(&tr, &mut buf).unwrap();
        let back = read_csv(buf.as_slice(), tr.config, tr.parked).unwrap();
        assert_eq!(back.readings.len(), tr.readings.len());
        for (a, b) in tr.readings.iter().zip(&back.readings) {
            assert_eq!(a.tag, b.tag);
            assert_eq!(a.moving, b.moving);
            assert!((a.t - b.t).abs() < 1e-5);
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let tr = small_trace();
        let mut buf = Vec::new();
        write_json(&tr, &mut buf).unwrap();
        let back = read_json(buf.as_slice()).unwrap();
        assert_eq!(back, tr);
    }

    #[test]
    fn csv_rejects_garbage() {
        let cfg = TraceConfig::default();
        assert!(read_csv("nonsense header\n".as_bytes(), cfg, 0).is_err());
        assert!(read_csv("tag,t,moving\nx,1.0,0\n".as_bytes(), cfg, 0).is_err());
        assert!(read_csv("tag,t,moving\n1,huh,0\n".as_bytes(), cfg, 0).is_err());
        assert!(read_csv("tag,t,moving\n1,1.0,5\n".as_bytes(), cfg, 0).is_err());
    }

    #[test]
    fn csv_tolerates_blank_lines() {
        let cfg = TraceConfig::default();
        let tr = read_csv("tag,t,moving\n1,0.5,1\n\n2,0.7,0\n".as_bytes(), cfg, 1).unwrap();
        assert_eq!(tr.readings.len(), 2);
        assert!(tr.readings[0].moving);
        assert!(!tr.readings[1].moving);
    }
}
