//! Trace statistics — the quantities Fig. 3 and Fig. 4 plot.

use crate::generator::Trace;
use serde::{Deserialize, Serialize};

/// Per-tag read counts, indexed by tag id.
pub fn read_counts(trace: &Trace) -> Vec<usize> {
    let mut counts = vec![0usize; trace.config.total_tags];
    for r in &trace.readings {
        counts[r.tag as usize] += 1;
    }
    counts
}

/// Readings per time bucket (Fig. 3's timeline), `bucket` seconds wide.
pub fn timeline(trace: &Trace, bucket: f64) -> Vec<usize> {
    assert!(bucket > 0.0, "bucket must be positive");
    let n = (trace.config.duration / bucket).ceil() as usize;
    let mut buckets = vec![0usize; n.max(1)];
    for r in &trace.readings {
        let i = ((r.t / bucket) as usize).min(buckets.len() - 1);
        buckets[i] += 1;
    }
    buckets
}

/// The fraction of tags whose read count exceeds `threshold` (Fig. 4's
/// complementary CDF points: "20% of the tags are read over 205 times").
pub fn fraction_above(counts: &[usize], threshold: usize) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    counts.iter().filter(|&&c| c > threshold).count() as f64 / counts.len() as f64
}

/// The read-count threshold exceeded by exactly the top `fraction` of
/// tags (inverse of [`fraction_above`]).
pub fn count_at_top_fraction(counts: &[usize], fraction: f64) -> usize {
    assert!((0.0..=1.0).contains(&fraction));
    if counts.is_empty() {
        return 0;
    }
    let mut sorted = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let k = ((counts.len() as f64 * fraction).ceil() as usize).clamp(1, counts.len());
    sorted[k - 1]
}

/// Maximum number of distinct *moving* tags observed within any single
/// window of `window` seconds — the paper's "30 tags at most are
/// simultaneously conveyed each second".
pub fn peak_simultaneous_movers(trace: &Trace, window: f64) -> usize {
    assert!(window > 0.0);
    let mut events: Vec<(u64, u32)> = trace
        .readings
        .iter()
        .filter(|r| r.moving)
        .map(|r| ((r.t / window) as u64, r.tag))
        .collect();
    events.sort_unstable();
    events.dedup();
    let mut best = 0usize;
    let mut i = 0;
    while i < events.len() {
        let bucket = events[i].0;
        let mut j = i;
        while j < events.len() && events[j].0 == bucket {
            j += 1;
        }
        best = best.max(j - i);
        i = j;
    }
    best
}

/// Headline summary of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    pub total_readings: usize,
    pub total_tags: usize,
    pub max_reads: usize,
    /// Reads of the top-20% tag (paper: 205).
    pub reads_at_top20: usize,
    /// Reads of the top-10% tag (paper: 655).
    pub reads_at_top10: usize,
    pub peak_simultaneous_movers: usize,
    /// Mean reads per conveyor transit.
    pub mean_mover_reads: f64,
}

/// Computes the summary of a trace.
pub fn summarize(trace: &Trace) -> TraceSummary {
    let counts = read_counts(trace);
    let mover_ids: std::collections::HashSet<u32> = trace
        .readings
        .iter()
        .filter(|r| r.moving)
        .map(|r| r.tag)
        .collect();
    let mover_reads: usize = trace.readings.iter().filter(|r| r.moving).count();
    TraceSummary {
        total_readings: trace.len(),
        total_tags: trace.config.total_tags,
        max_reads: counts.iter().copied().max().unwrap_or(0),
        reads_at_top20: count_at_top_fraction(&counts, 0.2),
        reads_at_top10: count_at_top_fraction(&counts, 0.1),
        peak_simultaneous_movers: peak_simultaneous_movers(trace, 1.0),
        mean_mover_reads: if mover_ids.is_empty() {
            0.0
        } else {
            mover_reads as f64 / mover_ids.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::generator::{generate, TraceConfig};

    fn trace() -> Trace {
        generate(
            &TraceConfig {
                duration: 1200.0,
                total_tags: 100,
                parked_tags: 40,
                ..Default::default()
            },
            5,
        )
    }

    #[test]
    fn counts_sum_to_total() {
        let tr = trace();
        let counts = read_counts(&tr);
        assert_eq!(counts.iter().sum::<usize>(), tr.len());
    }

    #[test]
    fn timeline_covers_all_readings() {
        let tr = trace();
        let buckets = timeline(&tr, 60.0);
        assert_eq!(buckets.len(), 20);
        assert_eq!(buckets.iter().sum::<usize>(), tr.len());
    }

    #[test]
    fn fraction_and_inverse_are_consistent() {
        let counts = vec![1000, 800, 600, 400, 200, 100, 50, 20, 10, 5];
        // Top 20% of 10 tags = 2 tags; the 2nd highest count is 800.
        assert_eq!(count_at_top_fraction(&counts, 0.2), 800);
        // Strictly more than 799 reads: exactly 2 of 10 tags.
        assert!((fraction_above(&counts, 799) - 0.2).abs() < 1e-12);
        assert_eq!(fraction_above(&[], 10), 0.0);
    }

    #[test]
    fn summary_shape() {
        let tr = trace();
        let s = summarize(&tr);
        assert_eq!(s.total_readings, tr.len());
        assert!(s.max_reads >= s.reads_at_top10);
        assert!(s.reads_at_top10 >= s.reads_at_top20);
        assert!(s.peak_simultaneous_movers >= 1);
        assert!(s.mean_mover_reads > 0.0);
        // Movers collect tens of reads, not hundreds (the §2.4 complaint).
        assert!(s.mean_mover_reads < 100.0);
    }

    #[test]
    fn paper_distribution_shape() {
        // Full-scale trace: heavy tail close to the published quantiles
        // (20% > 205 reads, 10% > 655 reads). Generous bands — the shape
        // is what matters.
        let tr = generate(&TraceConfig::default(), 42);
        let counts = read_counts(&tr);
        let top20 = count_at_top_fraction(&counts, 0.2);
        let top10 = count_at_top_fraction(&counts, 0.1);
        assert!((100..500).contains(&top20), "top-20% count {top20}");
        assert!((350..1400).contains(&top10), "top-10% count {top10}");
        assert!(
            top10 > 2 * top20 / 2,
            "tail must steepen: {top20} vs {top10}"
        );
        // ≤ ~5.7% simultaneous movers.
        let s = summarize(&tr);
        let frac = s.peak_simultaneous_movers as f64 / s.total_tags as f64;
        assert!(frac < 0.08, "peak mover fraction {frac}");
    }
}
