//! # tagwatch-trace — warehouse reading-trace synthesis and analysis
//!
//! Reproduces the paper's §2.4 motivating case study without the
//! proprietary 4-hour TrackPoint deployment trace: a seeded generator
//! matched to the published summary statistics (527 tags, ~367k readings,
//! a hot parked tag read ~90k times, ≤ ~5.7% simultaneous movers), plus
//! the statistics Fig. 3/4 plot and CSV/JSON persistence.

#![forbid(unsafe_code)]
pub mod generator;
pub mod record;
pub mod stats;

pub use generator::{generate, Trace, TraceConfig, TraceReading};
pub use record::{read_csv, read_json, write_csv, write_json, RecordError};
pub use stats::{
    count_at_top_fraction, fraction_above, peak_simultaneous_movers, read_counts, summarize,
    timeline, TraceSummary,
};
