//! 3-D geometry primitives shared by the channel model and the scene crate.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Neg, Sub};

/// A point or vector in 3-D space, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// The origin.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components (metres).
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Unit vector in the same direction. Returns `ZERO` for the zero vector.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            Vec3::ZERO
        } else {
            self * (1.0 / n)
        }
    }

    /// Linear interpolation `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn norms_and_distances() {
        let a = Vec3::new(1.0, 2.0, 2.0);
        assert_eq!(a.norm(), 3.0);
        assert_eq!(a.norm_sqr(), 9.0);
        assert_eq!(a.dist(Vec3::ZERO), 3.0);
        assert_eq!(Vec3::new(3.0, 0.0, 0.0).dist(Vec3::new(0.0, 4.0, 0.0)), 5.0);
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(y.cross(x), Vec3::new(0.0, 0.0, -1.0));
    }

    #[test]
    fn normalized_is_unit_or_zero() {
        assert!((Vec3::new(0.0, 3.0, 4.0).normalized().norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(3.0, -1.0, 0.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(2.0, 0.0, 0.5));
    }

    #[test]
    fn vector_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }
}
