//! # tagwatch-rf — backscatter RF channel model
//!
//! Physical-layer substrate for the Tagwatch reproduction: complex-baseband
//! multipath channel, per-read phase/RSS measurement synthesis, frequency
//! hopping, and Fresnel-zone geometry.
//!
//! The paper's motion detector consumes nothing but the `(phase, RSS)`
//! sequences that a COTS reader reports per tag read; this crate produces
//! those sequences from scene geometry with the phenomena that matter:
//!
//! * phase `θ = (4πd/λ + θ₀) mod 2π` on the LOS path (§4.3 of the paper),
//! * multipath superposition with static and *moving* reflectors, which is
//!   what makes a single Gaussian insufficient (§4.1, Fig. 7/8),
//! * per-(tag, antenna, channel) hardware phase offsets,
//! * Gaussian thermal noise on phase and RSS,
//! * two-way (`|g|⁴`) path loss, making RSS a poor motion indicator.
//!
//! Everything is deterministic given the caller's RNG; no wall clock, no OS
//! entropy.

#![forbid(unsafe_code)]
pub mod cache;
pub mod channel;
pub mod complex;
pub mod fresnel;
pub mod geometry;
pub mod hopping;
pub mod measurement;
pub mod noise;

pub use cache::{ChannelCache, ChannelCacheStats};
pub use channel::{ChannelModel, LinkGeometry, NoiseParams, Reflector};
pub use complex::{circ_diff, circ_dist, wrap_2pi, Complex};
pub use geometry::Vec3;
pub use hopping::{Channel, ChannelPlan, C_LIGHT};
pub use measurement::RfMeasurement;
pub use noise::sample_normal;
