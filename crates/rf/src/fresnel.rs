//! Fresnel-zone geometry.
//!
//! §4.1 of the paper motivates the Gaussian-mixture immobility model with
//! Fresnel zones: for a reader–tag pair at `R` and `T`, the k-th Fresnel
//! boundary is the ellipsoid of points `Q` with
//!
//! ```text
//! |RQ| + |QT| − |RT| = k·λ/2
//! ```
//!
//! A reflector anywhere inside one zone contributes an extra path of nearly
//! constant excess length, so the superposed signal occupies one of a small
//! number of quasi-stable modes — one Gaussian per mode. This module exists
//! so tests and examples can *verify* that claim against the channel model;
//! the detector itself never needs zone geometry (it is self-learning).

use crate::geometry::Vec3;

/// The excess path length of a reflection through `q` relative to the
/// direct path, in metres: `|rq| + |qt| − |rt|`. Always ≥ 0 by the triangle
/// inequality.
pub fn excess_path(reader: Vec3, tag: Vec3, q: Vec3) -> f64 {
    reader.dist(q) + q.dist(tag) - reader.dist(tag)
}

/// The Fresnel-zone index (1-based) of a reflector at `q`, i.e. the `k`
/// such that the excess path lies in `[(k−1)·λ/2, k·λ/2)`. A reflector on
/// the direct path itself is in zone 1.
pub fn zone_index(reader: Vec3, tag: Vec3, q: Vec3, wavelength: f64) -> u32 {
    let excess = excess_path(reader, tag, q);
    (excess / (wavelength / 2.0)).floor() as u32 + 1
}

/// The radius of the k-th Fresnel zone at a point along the direct path,
/// where `d1` and `d2` are the distances to the two endpoints:
/// `r_k = sqrt(k·λ·d1·d2 / (d1 + d2))`.
pub fn zone_radius(k: u32, wavelength: f64, d1: f64, d2: f64) -> f64 {
    assert!(k >= 1, "Fresnel zones are 1-based");
    (k as f64 * wavelength * d1 * d2 / (d1 + d2)).sqrt()
}

/// Whether the reflection path through `q` adds *in phase* with the direct
/// path (odd zone) or out of phase (even zone), ignoring the reflection
/// phase inversion.
pub fn is_constructive(reader: Vec3, tag: Vec3, q: Vec3, wavelength: f64) -> bool {
    zone_index(reader, tag, q, wavelength) % 2 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: f64 = 0.325;

    #[test]
    fn on_axis_reflector_is_zone_one() {
        let r = Vec3::ZERO;
        let t = Vec3::new(3.0, 0.0, 0.0);
        let q = Vec3::new(1.5, 0.0, 0.0);
        assert_eq!(zone_index(r, t, q, LAMBDA), 1);
        assert!(excess_path(r, t, q).abs() < 1e-12);
    }

    #[test]
    fn zone_boundary_crossing() {
        let r = Vec3::ZERO;
        let t = Vec3::new(3.0, 0.0, 0.0);
        // Exact first-zone boundary at the midpoint: the h solving
        // 2·sqrt(1.5² + h²) − 3 = λ/2.
        let half = (3.0 + LAMBDA / 2.0) / 2.0;
        let h1 = (half * half - 1.5 * 1.5).sqrt();
        let just_inside = Vec3::new(1.5, h1 * 0.999, 0.0);
        let just_outside = Vec3::new(1.5, h1 * 1.001, 0.0);
        assert_eq!(zone_index(r, t, just_inside, LAMBDA), 1);
        assert_eq!(zone_index(r, t, just_outside, LAMBDA), 2);
        // The classical radius formula is a paraxial approximation; at this
        // geometry it should be within a couple of percent of exact.
        let approx = zone_radius(1, LAMBDA, 1.5, 1.5);
        assert!(
            (approx - h1).abs() / h1 < 0.03,
            "approx {approx} exact {h1}"
        );
    }

    #[test]
    fn zone_radii_increase_with_k() {
        let mut prev = 0.0;
        for k in 1..=8 {
            let rk = zone_radius(k, LAMBDA, 2.0, 2.0);
            assert!(rk > prev);
            prev = rk;
        }
    }

    #[test]
    fn excess_path_nonnegative_everywhere() {
        let r = Vec3::new(-1.0, 0.5, 0.2);
        let t = Vec3::new(2.0, -0.3, 0.1);
        for i in 0..50 {
            let q = Vec3::new(
                (i as f64 * 0.37).sin() * 3.0,
                (i as f64 * 0.71).cos() * 3.0,
                (i as f64 * 0.13).sin(),
            );
            assert!(excess_path(r, t, q) >= -1e-12);
        }
    }

    #[test]
    fn constructive_alternates_with_zone() {
        let r = Vec3::ZERO;
        let t = Vec3::new(3.0, 0.0, 0.0);
        // Walk outward from the axis at the midpoint; parity must alternate
        // exactly when the zone index increments.
        let mut last_zone = 0;
        for i in 0..200 {
            let q = Vec3::new(1.5, i as f64 * 0.005, 0.0);
            let z = zone_index(r, t, q, LAMBDA);
            assert!(z >= last_zone, "zones grow monotonically moving outward");
            assert_eq!(is_constructive(r, t, q, LAMBDA), z % 2 == 1);
            last_zone = z;
        }
        assert!(last_zone > 3, "walk spans several zones");
    }
}
