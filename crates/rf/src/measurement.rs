//! The measurement types a COTS reader reports per tag read.

use serde::{Deserialize, Serialize};

/// One low-level RF observation of a tag, as reported by a COTS reader
/// alongside the EPC (ImpinJ readers expose these as `RF_PHASE_ANGLE` and
/// `PEAK_RSSI` in LLRP tag reports).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RfMeasurement {
    /// Backscatter phase angle in radians, wrapped to `[0, 2π)`.
    pub phase: f64,
    /// Received signal strength in dBm.
    pub rss_dbm: f64,
    /// Channel index the read happened on.
    pub channel: u8,
    /// Carrier frequency in Hz (so consumers don't need the channel plan).
    pub freq_hz: f64,
    /// Antenna port the read happened on (1-based, like LLRP).
    pub antenna: u8,
    /// Absolute time of the read, seconds since simulation start.
    pub t: f64,
}

impl RfMeasurement {
    /// Carrier wavelength for this read, in metres.
    #[inline]
    pub fn wavelength(&self) -> f64 {
        crate::hopping::C_LIGHT / self.freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_from_freq() {
        let m = RfMeasurement {
            phase: 1.0,
            rss_dbm: -50.0,
            channel: 3,
            freq_hz: 922.5e6,
            antenna: 1,
            t: 0.0,
        };
        assert!((m.wavelength() - 0.325).abs() < 1e-3);
    }
}
