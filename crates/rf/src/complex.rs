//! Minimal complex arithmetic for baseband channel modelling.
//!
//! The RF channel model only needs addition, multiplication, magnitude and
//! argument of complex numbers, so we implement a tiny `Complex` type here
//! instead of pulling in an external numerics crate.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number in Cartesian form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar coordinates `r * e^{i*theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{i*theta}` — a unit phasor at angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The magnitude (absolute value) `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared magnitude `|z|^2` (cheaper than [`Complex::abs`]).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument (angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

/// Wraps an angle into `[0, 2*pi)`.
///
/// RFID readers report phase in `[0, 2*pi)`; all phase values produced by
/// this crate are normalised with this helper.
#[inline]
pub fn wrap_2pi(theta: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut t = theta % two_pi;
    if t < 0.0 {
        t += two_pi;
    }
    // `% TAU` can return TAU itself for inputs just below a multiple of TAU
    // because of rounding; clamp so callers can rely on the half-open range.
    if t >= two_pi {
        t = 0.0;
    }
    t
}

/// The minimum circular distance between two angles, in `[0, pi]`.
///
/// This is the "minimum distance" rule of §4.3 of the paper: phase values
/// live in a base-2π system, so `0.02` and `2π − 0.01` are actually 0.03
/// apart, not ≈2π.
#[inline]
pub fn circ_dist(a: f64, b: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let d = (wrap_2pi(a) - wrap_2pi(b)).abs();
    if d <= std::f64::consts::PI {
        d
    } else {
        two_pi - d
    }
}

/// Signed shortest angular difference `a - b`, in `(-pi, pi]`.
#[inline]
pub fn circ_diff(a: f64, b: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut d = (wrap_2pi(a) - wrap_2pi(b)) % two_pi;
    if d > std::f64::consts::PI {
        d -= two_pi;
    } else if d <= -std::f64::consts::PI {
        d += two_pi;
    }
    d
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.5, 1.1);
        assert!(close(z.abs(), 2.5));
        assert!(close(z.arg(), 1.1));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..32 {
            let t = k as f64 * 0.4 - 6.0;
            assert!((Complex::cis(t).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert_eq!(a.scale(2.0), Complex::new(2.0, 4.0));
    }

    #[test]
    fn norm_sqr_matches_abs() {
        let z = Complex::new(-3.0, 4.0);
        assert!(close(z.norm_sqr(), 25.0));
        assert!(close(z.abs(), 5.0));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut acc = Complex::ZERO;
        for _ in 0..4 {
            acc += Complex::new(0.25, -0.5);
        }
        assert!(close(acc.re, 1.0));
        assert!(close(acc.im, -2.0));
    }

    #[test]
    fn wrap_2pi_range() {
        for k in -10..10 {
            let t = k as f64 * 1.7;
            let w = wrap_2pi(t);
            assert!((0.0..TAU).contains(&w), "wrap({t}) = {w}");
        }
        assert!(close(wrap_2pi(TAU + 0.5), 0.5));
        assert!(close(wrap_2pi(-0.5), TAU - 0.5));
    }

    #[test]
    fn circ_dist_handles_wraparound() {
        // The paper's own example: |2π − 0.01 − 0.02| measured naively is
        // ≈ 6.25 but the true circular distance is 0.03.
        let d = circ_dist(TAU - 0.01, 0.02);
        assert!((d - 0.03).abs() < 1e-9);
        assert!(close(circ_dist(0.0, PI), PI));
        assert!(close(circ_dist(FRAC_PI_2, FRAC_PI_2), 0.0));
    }

    #[test]
    fn circ_dist_is_symmetric() {
        for i in 0..16 {
            for j in 0..16 {
                let (a, b) = (i as f64 * 0.41, j as f64 * 0.73);
                assert!(close(circ_dist(a, b), circ_dist(b, a)));
            }
        }
    }

    #[test]
    fn circ_diff_sign() {
        assert!(circ_diff(0.1, TAU - 0.1) > 0.0);
        assert!((circ_diff(0.1, TAU - 0.1) - 0.2).abs() < 1e-9);
        assert!(circ_diff(TAU - 0.1, 0.1) < 0.0);
    }
}
