//! Per-(tag, antenna, channel) channel-state cache.
//!
//! The expensive half of [`crate::ChannelModel::observe`] is pure
//! geometry: the one-way field `g` (a complex sum over LOS plus
//! reflection paths) and the per-link hardware offset are deterministic
//! functions of (tag position, antenna position, channel). Geometry
//! changes slowly relative to slot time — a static tag read 500 times
//! recomputes the identical field 500 times — so the reader memoises
//! the reduced pair `(-2·arg(g) + offset, 40·log10|g|)` here and replays
//! it through [`crate::ChannelModel::measure_parts`], which draws the
//! same two noise samples a fresh evaluation would. A hit is therefore
//! *bit-identical* to a fresh evaluation, a property the channel-cache
//! proptests pin.
//!
//! Two staleness mechanisms compose:
//!
//! * **Geometry epoch** (coarse): the scene's structural version counter
//!   (`Scene::epoch`). On any mismatch the whole cache drops — covering
//!   trajectory swaps, added tags, moved antennas, in-place motion steps.
//! * **Position guard** (fine): each entry stores the exact tag and
//!   antenna positions it was computed from, compared bit-for-bit at
//!   lookup. Mobile tags therefore miss whenever they have actually
//!   moved (every observation instant, in practice) without any explicit
//!   invalidation call — motion can never serve a stale field.
//!
//! The cache stores *fields*, never measurements: noise stays downstream,
//! so cached and fresh paths consume the RNG stream identically.

use crate::channel::{ChannelModel, LinkGeometry};
use crate::geometry::Vec3;

/// One memoised link evaluation: the deterministic halves of a
/// measurement, pre-reduced to the exact sub-expressions
/// [`ChannelModel::measure_parts`] consumes (`-2·arg(g) + offset` and
/// `40·log10(|g|)`), so a hit skips the complex field sum *and* the
/// transcendental reductions.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    /// Noise-free backscatter phase: `-2·arg(g) + offset`.
    phase_base: f64,
    /// Path-loss term: `40·log10(|g|)`. The model's `rss_at_1m_dbm` is
    /// *not* folded in — fault injectors perturb it mid-run.
    forty_log: f64,
    /// Tag position the field was computed from (bit-exact guard).
    tag_pos: Vec3,
    /// Antenna position the field was computed from (bit-exact guard).
    antenna_pos: Vec3,
}

/// Hit/miss/invalidation accounting, for gates and the cache proptests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh evaluation.
    pub misses: u64,
    /// Whole-cache drops caused by a geometry-epoch change.
    pub invalidations: u64,
}

/// A fixed-dimension memo table over (tag index, antenna port, channel
/// index), keyed by the scene's geometry epoch.
///
/// Dimensions are fixed at construction (population size, max antenna
/// port + 1, channel count); the table is one flat allocation and the
/// steady-state lookup/store path never allocates.
#[derive(Debug, Clone)]
pub struct ChannelCache {
    n_ports: usize,
    n_channels: usize,
    entries: Vec<Option<CacheEntry>>,
    /// Geometry epoch the entries were computed under. `None` until the
    /// first [`ChannelCache::ensure_epoch`] — a fresh cache has nothing
    /// to invalidate.
    epoch: Option<u64>,
    stats: ChannelCacheStats,
}

impl ChannelCache {
    /// A cache for `n_tags` tags, antenna ports `0..n_ports`, and channel
    /// indices `0..n_channels`. Out-of-range keys are tolerated (they
    /// simply never hit), so a conservative upper bound is fine.
    pub fn new(n_tags: usize, n_ports: usize, n_channels: usize) -> Self {
        ChannelCache {
            n_ports,
            n_channels,
            entries: vec![None; n_tags * n_ports * n_channels],
            epoch: None,
            stats: ChannelCacheStats::default(),
        }
    }

    /// Synchronises the cache with the scene's geometry epoch: on a
    /// mismatch every entry drops (counted as one invalidation). Call
    /// once per observation batch, before [`ChannelCache::evaluate`].
    pub fn ensure_epoch(&mut self, epoch: u64) {
        match self.epoch {
            Some(e) if e == epoch => {}
            Some(_) => {
                self.entries.fill(None);
                self.stats.invalidations += 1;
                self.epoch = Some(epoch);
            }
            None => self.epoch = Some(epoch),
        }
    }

    fn slot(&self, tag_idx: usize, port: u8, channel: u8) -> Option<usize> {
        let (p, c) = (port as usize, channel as usize);
        if p >= self.n_ports || c >= self.n_channels {
            return None;
        }
        let idx = (tag_idx * self.n_ports + p) * self.n_channels + c;
        (idx < self.entries.len()).then_some(idx)
    }

    /// The memoised deterministic half of an observation: returns the
    /// cached `(phase_base, forty_log)` pair when the entry's positions
    /// match bit-for-bit, else recomputes via `model` and stores the
    /// result. Either way the caller feeds the pair into
    /// [`ChannelModel::measure_parts`], so hit and miss produce
    /// bit-identical measurements and identical RNG consumption.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate(
        &mut self,
        model: &ChannelModel,
        link: &LinkGeometry<'_>,
        tag_idx: usize,
        tag_key: u64,
        port: u8,
        channel_index: u8,
        wavelength: f64,
    ) -> (f64, f64) {
        debug_assert!(
            link.reflectors.is_empty(),
            "cacheable links carry no reflectors (reflector motion is not position-guarded)"
        );
        let slot = self.slot(tag_idx, port, channel_index);
        if let Some(i) = slot {
            if let Some(e) = self.entries[i] {
                if e.tag_pos == link.tag && e.antenna_pos == link.antenna {
                    self.stats.hits += 1;
                    return (e.phase_base, e.forty_log);
                }
            }
        }
        self.stats.misses += 1;
        let g = model.one_way_field(link, wavelength);
        let offset = model.link_offset(tag_key, port, channel_index);
        // The exact sub-expressions `ChannelModel::measure` computes from
        // (g, offset) — memoising the reduced form is bit-identical.
        let phase_base = -2.0 * g.arg() + offset;
        let forty_log = 40.0 * g.abs().log10();
        if let Some(i) = slot {
            self.entries[i] = Some(CacheEntry {
                phase_base,
                forty_log,
                tag_pos: link.tag,
                antenna_pos: link.antenna,
            });
        }
        (phase_base, forty_log)
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> ChannelCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    // Bit-identity is the property under test: cached results must equal
    // fresh evaluations exactly, so approximate comparison would be wrong.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::hopping::ChannelPlan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn link(d: f64) -> LinkGeometry<'static> {
        LinkGeometry {
            antenna: Vec3::ZERO,
            tag: Vec3::new(d, 0.0, 0.0),
            reflectors: &[],
        }
    }

    #[test]
    fn hit_replays_the_exact_fresh_measurement() {
        let model = ChannelModel::default();
        let ch = ChannelPlan::single(922.5e6).channel_at(0.0);
        let mut cache = ChannelCache::new(4, 2, 1);
        let l = link(1.7);

        cache.ensure_epoch(0);
        let mut rng_fresh = StdRng::seed_from_u64(5);
        let mut rng_cached = StdRng::seed_from_u64(5);
        let fresh = model.observe(&l, 42, 1, ch, 0.25, &mut rng_fresh);
        // Prime (miss), then hit; the hit must reproduce `observe` exactly.
        for _ in 0..2 {
            let (pb, fl) = cache.evaluate(&model, &l, 0, 42, 1, ch.index, ch.wavelength());
            let mut rng = StdRng::seed_from_u64(5);
            let m = model.measure_parts(pb, fl, ch, 1, 0.25, &mut rng);
            assert_eq!(m, fresh);
        }
        // The cached path consumed the same number of draws.
        let (pb, fl) = cache.evaluate(&model, &l, 0, 42, 1, ch.index, ch.wavelength());
        let _ = model.measure_parts(pb, fl, ch, 1, 0.25, &mut rng_cached);
        assert_eq!(
            rand::Rng::gen::<u64>(&mut rng_fresh),
            rand::Rng::gen::<u64>(&mut rng_cached)
        );
        assert_eq!(
            cache.stats(),
            ChannelCacheStats {
                hits: 2,
                misses: 1,
                invalidations: 0
            }
        );
    }

    #[test]
    fn epoch_change_drops_everything_once() {
        let model = ChannelModel::default();
        let ch = ChannelPlan::single(922.5e6).channel_at(0.0);
        let mut cache = ChannelCache::new(1, 2, 1);
        cache.ensure_epoch(3);
        let _ = cache.evaluate(&model, &link(1.0), 0, 7, 1, ch.index, ch.wavelength());
        cache.ensure_epoch(3); // unchanged: no invalidation
        assert_eq!(cache.stats().invalidations, 0);
        cache.ensure_epoch(4);
        assert_eq!(cache.stats().invalidations, 1);
        // Entry is gone: next evaluate misses.
        let _ = cache.evaluate(&model, &link(1.0), 0, 7, 1, ch.index, ch.wavelength());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn moved_tag_never_hits() {
        let model = ChannelModel::default();
        let ch = ChannelPlan::single(922.5e6).channel_at(0.0);
        let mut cache = ChannelCache::new(1, 2, 1);
        cache.ensure_epoch(0);
        let _ = cache.evaluate(&model, &link(1.0), 0, 7, 1, ch.index, ch.wavelength());
        let (pb, fl) = cache.evaluate(&model, &link(1.001), 0, 7, 1, ch.index, ch.wavelength());
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
        // And the recomputed parts are the fresh ones for the new position.
        let g = model.one_way_field(&link(1.001), ch.wavelength());
        assert_eq!(pb, -2.0 * g.arg() + model.link_offset(7, 1, ch.index));
        assert_eq!(fl, 40.0 * g.abs().log10());
    }

    #[test]
    fn out_of_range_keys_are_tolerated() {
        let model = ChannelModel::default();
        let ch = ChannelPlan::single(922.5e6).channel_at(0.0);
        let mut cache = ChannelCache::new(1, 2, 1);
        cache.ensure_epoch(0);
        // Port 9 and channel 5 exceed the dimensions: evaluates fresh,
        // never stores, never panics.
        let g = model.one_way_field(&link(1.0), ch.wavelength());
        for _ in 0..2 {
            let (pb, fl) = cache.evaluate(&model, &link(1.0), 0, 7, 9, 5, ch.wavelength());
            assert_eq!(pb, -2.0 * g.arg() + model.link_offset(7, 9, 5));
            assert_eq!(fl, 40.0 * g.abs().log10());
        }
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
    }
}
