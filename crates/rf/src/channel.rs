//! The backscatter channel model.
//!
//! A passive UHF tag does not transmit: it reflects the reader's carrier.
//! The signal observed by the reader therefore traverses every propagation
//! path **twice** (reader → tag, tag → reader). We model the one-way field
//!
//! ```text
//! g = Σ_k  a_k · e^{-j 2π d_k / λ}
//! ```
//!
//! over the line-of-sight path (`a = 1/d`) and first-order reflection paths
//! off scene reflectors (`a = Γ / (d₁ · d₂)` — a scatterer re-radiates, so
//! the field decays on both legs, the bistatic-radar scaling), and take
//! the backscatter response as `h = g²`. The reported phase is `arg(h) = 2·arg(g)` plus a
//! per-(tag, antenna, channel) hardware offset θ₀ (cable lengths, tag
//! reflection characteristics) plus thermal noise. For the pure LOS case
//! this reduces to the textbook `θ = (4πd/λ + θ₀) mod 2π` quoted in §4.3 of
//! the paper.
//!
//! Received power decays as `|g|⁴` (two-way free-space), which is what makes
//! RSS so much less sensitive to centimetre displacements than phase — the
//! effect the paper exploits in Fig. 13.

use crate::complex::{wrap_2pi, Complex};
use crate::geometry::Vec3;
use crate::hopping::Channel;
use crate::measurement::RfMeasurement;
use crate::noise::sample_normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A point reflector in the scene (a person, a cart, a metal shelf).
///
/// We model first-order scattering through the reflector position: the
/// extra path is `|antenna → reflector| + |reflector → tag|` and the
/// amplitude decays on both legs (`Γ/(d₁·d₂)`), so only reflectors close
/// to the link matter — people perturb a tag's phase when they *approach*
/// it, exactly the paper's observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reflector {
    /// Reflector position at the observation instant.
    pub position: Vec3,
    /// Scattering coefficient magnitude (field amplitude at 1 m × 1 m
    /// legs, relative to a 1 m LOS link). Humans are ≈ 0.2–0.4, metal
    /// surfaces ≈ 0.6–0.9.
    pub coefficient: f64,
}

/// Noise parameters of the receive chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseParams {
    /// Standard deviation of phase noise in radians. ImpinJ R420 phase
    /// jitter on a strong static link is on the order of 0.1 rad.
    pub phase_sigma: f64,
    /// Standard deviation of RSS noise in dB.
    pub rss_sigma_db: f64,
}

impl Default for NoiseParams {
    fn default() -> Self {
        NoiseParams {
            phase_sigma: 0.1,
            rss_sigma_db: 1.0,
        }
    }
}

/// Static parameters of the backscatter channel model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelModel {
    /// Receiver noise.
    pub noise: NoiseParams,
    /// RSS calibration constant: the RSS in dBm of a pure LOS link at 1 m.
    /// −45 dBm is a typical R420 figure at full transmit power.
    pub rss_at_1m_dbm: f64,
    /// Seed mixed into the per-link hardware phase offsets.
    pub offset_seed: u64,
}

impl Default for ChannelModel {
    fn default() -> Self {
        ChannelModel {
            noise: NoiseParams::default(),
            rss_at_1m_dbm: -45.0,
            offset_seed: 0x0074_6167_7761_7463, // "tagwatc", zero-padded
        }
    }
}

/// Everything geometric about one observation instant.
#[derive(Debug, Clone)]
pub struct LinkGeometry<'a> {
    /// Antenna position.
    pub antenna: Vec3,
    /// Tag position.
    pub tag: Vec3,
    /// Reflectors present in the scene at this instant.
    pub reflectors: &'a [Reflector],
}

impl ChannelModel {
    /// A noise-free model — handy in tests where phase must be an exact
    /// function of geometry.
    pub fn noiseless() -> Self {
        ChannelModel {
            noise: NoiseParams {
                phase_sigma: 0.0,
                rss_sigma_db: 0.0,
            },
            ..Default::default()
        }
    }

    /// The one-way complex field at the tag: LOS plus first-order
    /// reflections.
    pub fn one_way_field(&self, link: &LinkGeometry<'_>, wavelength: f64) -> Complex {
        let two_pi = std::f64::consts::TAU;
        let d_los = link.antenna.dist(link.tag).max(1e-6);
        let mut g = Complex::from_polar(1.0 / d_los, -two_pi * d_los / wavelength);
        for r in link.reflectors {
            let d1 = link.antenna.dist(r.position).max(1e-6);
            let d2 = r.position.dist(link.tag).max(1e-6);
            let d = d1 + d2;
            g += Complex::from_polar(r.coefficient / (d1 * d2), -two_pi * d / wavelength);
        }
        g
    }

    /// Deterministic per-(tag, antenna, channel) hardware phase offset in
    /// `[0, 2π)`. Real readers exhibit exactly this: a constant offset per
    /// link that differs between channels (cable group delay) and tags
    /// (reflection characteristics).
    pub fn link_offset(&self, tag_key: u64, antenna: u8, channel: u8) -> f64 {
        let mut x = self
            .offset_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(tag_key)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add((antenna as u64) << 32 | channel as u64);
        // splitmix64 finalizer
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x as f64 / u64::MAX as f64) * std::f64::consts::TAU
    }

    /// Produces the `RfMeasurement` a reader would report for one read of a
    /// tag, given the instantaneous geometry.
    ///
    /// `tag_key` identifies the tag for the purpose of its hardware offset
    /// (use a stable per-tag id, not its position).
    #[allow(clippy::too_many_arguments)]
    pub fn observe<R: Rng + ?Sized>(
        &self,
        link: &LinkGeometry<'_>,
        tag_key: u64,
        antenna: u8,
        chan: Channel,
        t: f64,
        rng: &mut R,
    ) -> RfMeasurement {
        let wavelength = chan.wavelength();
        let g = self.one_way_field(link, wavelength);
        let offset = self.link_offset(tag_key, antenna, chan.index);
        self.measure(g, offset, chan, antenna, t, rng)
    }

    /// The measurement tail shared by [`ChannelModel::observe`] and the
    /// cached evaluation path (see [`crate::ChannelCache`]): applies the
    /// receive-chain noise to a precomputed one-way field `g` and link
    /// offset. The two noise draws — phase first, then RSS — are part of
    /// the contract: a cached evaluation must consume the RNG stream
    /// exactly as a fresh one does, or traces stop being bit-identical
    /// across cache configurations.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        g: Complex,
        offset: f64,
        chan: Channel,
        antenna: u8,
        t: f64,
        rng: &mut R,
    ) -> RfMeasurement {
        // Backscatter: field traverses the channel twice, h = g². Readers
        // report the phase *lag*, which grows with distance — hence the
        // negation (for pure LOS this yields the textbook +4πd/λ).
        //
        // |h| = |g|²  →  P ∝ |g|⁴  →  dB: 40·log10(|g|). |g| is normalised
        // so that a 1 m LOS link has |g| = 1.
        self.measure_parts(
            -2.0 * g.arg() + offset,
            40.0 * g.abs().log10(),
            chan,
            antenna,
            t,
            rng,
        )
    }

    /// The noise-application tail of [`ChannelModel::measure`], split out
    /// so the channel cache can memoise the transcendental half. The two
    /// deterministic parts are exactly the sub-expressions `measure`
    /// computes — `phase_base = -2·arg(g) + offset` and
    /// `forty_log = 40·log10(|g|)` — and the additions here preserve the
    /// original left-to-right association, so feeding memoised parts in
    /// is bit-identical to a fresh `measure`. `rss_at_1m_dbm` is applied
    /// *here*, not memoised: fault injectors perturb it mid-run and a
    /// cached value would go stale.
    #[allow(clippy::too_many_arguments)]
    pub fn measure_parts<R: Rng + ?Sized>(
        &self,
        phase_base: f64,
        forty_log: f64,
        chan: Channel,
        antenna: u8,
        t: f64,
        rng: &mut R,
    ) -> RfMeasurement {
        let phase_noise = sample_normal(rng, 0.0, self.noise.phase_sigma);
        let rss_noise = sample_normal(rng, 0.0, self.noise.rss_sigma_db);

        let phase = wrap_2pi(phase_base + phase_noise);
        let rss_dbm = self.rss_at_1m_dbm + forty_log + rss_noise;

        RfMeasurement {
            phase,
            rss_dbm,
            channel: chan.index,
            freq_hz: chan.freq_hz,
            antenna,
            t,
        }
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use crate::hopping::ChannelPlan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chan() -> Channel {
        ChannelPlan::single(922.5e6).channel_at(0.0)
    }

    fn los_link(d: f64) -> LinkGeometry<'static> {
        LinkGeometry {
            antenna: Vec3::ZERO,
            tag: Vec3::new(d, 0.0, 0.0),
            reflectors: &[],
        }
    }

    #[test]
    fn pure_los_phase_matches_textbook_formula() {
        let model = ChannelModel::noiseless();
        let ch = chan();
        let mut rng = StdRng::seed_from_u64(1);
        for d in [0.7, 1.3, 2.9] {
            let m = model.observe(&los_link(d), 42, 1, ch, 0.0, &mut rng);
            let lambda = ch.wavelength();
            let offset = model.link_offset(42, 1, ch.index);
            let expected = wrap_2pi(4.0 * std::f64::consts::PI * d / lambda + offset);
            // arg(g²) may differ from the raw 4πd/λ by a multiple of 2π only.
            assert!(
                crate::complex::circ_dist(m.phase, expected) < 1e-9,
                "d={d}: got {} want {}",
                m.phase,
                expected
            );
        }
    }

    #[test]
    fn one_cm_displacement_moves_phase_much_more_than_noise() {
        // The physical basis of Fig. 13: at λ≈0.325 m, a 1 cm displacement
        // shifts the phase by 4π·0.01/λ ≈ 0.39 rad, ~4σ of phase noise.
        let model = ChannelModel::noiseless();
        let ch = chan();
        let mut rng = StdRng::seed_from_u64(2);
        let a = model.observe(&los_link(1.50), 7, 1, ch, 0.0, &mut rng);
        let b = model.observe(&los_link(1.51), 7, 1, ch, 0.0, &mut rng);
        let delta = crate::complex::circ_dist(a.phase, b.phase);
        assert!(delta > 0.3, "phase shift {delta}");
        // ... while RSS barely changes (< 0.2 dB).
        assert!((a.rss_dbm - b.rss_dbm).abs() < 0.2);
    }

    #[test]
    fn rss_follows_two_way_path_loss() {
        let model = ChannelModel::noiseless();
        let ch = chan();
        let mut rng = StdRng::seed_from_u64(3);
        let at1 = model.observe(&los_link(1.0), 7, 1, ch, 0.0, &mut rng);
        let at2 = model.observe(&los_link(2.0), 7, 1, ch, 0.0, &mut rng);
        assert!((at1.rss_dbm - model.rss_at_1m_dbm).abs() < 1e-9);
        // Doubling distance in a two-way channel costs 40·log10(2) ≈ 12 dB.
        assert!((at1.rss_dbm - at2.rss_dbm - 12.04).abs() < 0.1);
    }

    #[test]
    fn reflector_changes_phase() {
        let model = ChannelModel::noiseless();
        let ch = chan();
        let mut rng = StdRng::seed_from_u64(4);
        let base = model.observe(&los_link(2.0), 7, 1, ch, 0.0, &mut rng);
        let refl = [Reflector {
            position: Vec3::new(1.0, 0.9, 0.0),
            coefficient: 0.4,
        }];
        let link = LinkGeometry {
            antenna: Vec3::ZERO,
            tag: Vec3::new(2.0, 0.0, 0.0),
            reflectors: &refl,
        };
        let with = model.observe(&link, 7, 1, ch, 0.0, &mut rng);
        assert!(crate::complex::circ_dist(base.phase, with.phase) > 0.01);
    }

    #[test]
    fn offsets_differ_across_links_but_are_stable() {
        let model = ChannelModel::default();
        let a = model.link_offset(1, 1, 0);
        let b = model.link_offset(1, 1, 0);
        assert_eq!(a, b);
        assert_ne!(model.link_offset(1, 1, 0), model.link_offset(2, 1, 0));
        assert_ne!(model.link_offset(1, 1, 0), model.link_offset(1, 2, 0));
        assert_ne!(model.link_offset(1, 1, 0), model.link_offset(1, 1, 1));
        for k in 0..64 {
            let o = model.link_offset(k, (k % 4) as u8, (k % 16) as u8);
            assert!((0.0..std::f64::consts::TAU).contains(&o));
        }
    }

    #[test]
    fn noise_is_seeded_and_reproducible() {
        let model = ChannelModel::default();
        let ch = chan();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = model.observe(&los_link(1.7), 3, 1, ch, 0.5, &mut r1);
        let b = model.observe(&los_link(1.7), 3, 1, ch, 0.5, &mut r2);
        assert_eq!(a, b);
    }
}
