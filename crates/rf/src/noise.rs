//! Gaussian sampling via the Box–Muller transform.
//!
//! `rand` 0.8 ships uniform sampling only (the normal distribution lives in
//! the separate `rand_distr` crate, which we deliberately avoid — see
//! DESIGN.md §6); the two-line Box–Muller transform is all this crate needs.

use rand::Rng;

/// Draws one sample from `N(mean, sigma²)`.
///
/// `sigma` must be finite and non-negative; `sigma == 0` returns `mean`
/// exactly, which lets callers express "noiseless" configurations without
/// special-casing.
#[inline]
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    debug_assert!(sigma >= 0.0 && sigma.is_finite(), "invalid sigma {sigma}");
    if sigma == 0.0 {
        return mean;
    }
    // Box–Muller: u1 ∈ (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let mag = (-2.0 * u1.ln()).sqrt();
    mean + sigma * mag * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(sample_normal(&mut rng, 3.5, 0.0), 3.5);
        }
    }

    #[test]
    fn moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = sample_normal(&mut rng, 1.0, 2.0);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(
                sample_normal(&mut a, 0.0, 1.0),
                sample_normal(&mut b, 0.0, 1.0)
            );
        }
    }

    #[test]
    fn tail_probability_sane() {
        // ~99.7% of mass within 3 sigma.
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let outside = (0..n)
            .filter(|_| sample_normal(&mut rng, 0.0, 1.0).abs() > 3.0)
            .count();
        let frac = outside as f64 / n as f64;
        assert!(frac < 0.006, "3-sigma tail fraction {frac}");
    }
}
