//! Frequency channels and hop schedules.
//!
//! The paper's testbed reads across 16 channels in the 920–926 MHz band
//! (the Chinese UHF RFID band). COTS readers hop pseudo-randomly between
//! channels on a fixed dwell schedule; the per-channel wavelength matters
//! because the backscatter phase `4πd/λ` is channel dependent.

use serde::{Deserialize, Serialize};

/// Speed of light in m/s.
pub const C_LIGHT: f64 = 299_792_458.0;

/// A frequency channel in the reader's hop table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// Channel index in the hop table, `0..count`.
    pub index: u8,
    /// Carrier frequency in Hz.
    pub freq_hz: f64,
}

impl Channel {
    /// Carrier wavelength in metres.
    #[inline]
    pub fn wavelength(&self) -> f64 {
        C_LIGHT / self.freq_hz
    }
}

/// The reader's channel plan: a set of equally spaced channels plus a
/// deterministic pseudo-random hop order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelPlan {
    channels: Vec<Channel>,
    /// Hop dwell time in seconds (how long the reader stays on one channel).
    pub dwell_s: f64,
    /// Permutation of channel indices defining the hop order.
    order: Vec<u8>,
}

impl ChannelPlan {
    /// The 16-channel 920.625–924.375 MHz plan used throughout the paper's
    /// experiments (250 kHz spacing, centred in the 920–926 MHz band), with
    /// the Chinese-band default dwell of 2 s.
    pub fn china_920() -> Self {
        Self::evenly_spaced(920.625e6, 250e3, 16, 2.0)
    }

    /// Builds a plan of `count` channels starting at `start_hz` with spacing
    /// `step_hz`, and a deterministic "bit-reversal" hop order, which is a
    /// common way to guarantee spectral spreading without an RNG.
    pub fn evenly_spaced(start_hz: f64, step_hz: f64, count: u8, dwell_s: f64) -> Self {
        assert!(count > 0, "channel plan needs at least one channel");
        assert!(dwell_s > 0.0, "dwell time must be positive");
        let channels = (0..count)
            .map(|i| Channel {
                index: i,
                freq_hz: start_hz + step_hz * i as f64,
            })
            .collect();
        // Bit-reversed ordering over the smallest power of two >= count,
        // filtered to valid indices: deterministic and well spread.
        let bits = (count as u16).next_power_of_two().trailing_zeros();
        let mut order = Vec::with_capacity(count as usize);
        for i in 0..(count as u16).next_power_of_two() {
            let mut r = 0u16;
            for b in 0..bits {
                if i & (1 << b) != 0 {
                    r |= 1 << (bits - 1 - b);
                }
            }
            if r < count as u16 {
                order.push(r as u8);
            }
        }
        ChannelPlan {
            channels,
            dwell_s,
            order,
        }
    }

    /// A single-channel plan — useful for unit tests that want phase to be
    /// a pure function of distance.
    pub fn single(freq_hz: f64) -> Self {
        ChannelPlan {
            channels: vec![Channel { index: 0, freq_hz }],
            dwell_s: f64::INFINITY,
            order: vec![0],
        }
    }

    /// Number of channels in the plan.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True if the plan is empty (never true for constructed plans).
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// All channels, in index order.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The channel the reader occupies at absolute time `t` seconds.
    pub fn channel_at(&self, t: f64) -> Channel {
        if self.channels.len() == 1 || !self.dwell_s.is_finite() {
            return self.channels[0];
        }
        let hop = (t / self.dwell_s).floor().max(0.0) as usize;
        let idx = self.order[hop % self.order.len()] as usize;
        self.channels[idx]
    }
}

#[cfg(test)]
mod tests {
    // Tests assert exact values (literals carried through untouched,
    // or bit-reproducibility itself); approximate comparison would
    // weaken them.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn china_plan_shape() {
        let plan = ChannelPlan::china_920();
        assert_eq!(plan.len(), 16);
        let f0 = plan.channels()[0].freq_hz;
        let f15 = plan.channels()[15].freq_hz;
        assert!((f0 - 920.625e6).abs() < 1.0);
        assert!((f15 - 924.375e6).abs() < 1.0);
        // All channels inside the paper's 920–926 MHz band.
        for ch in plan.channels() {
            assert!(ch.freq_hz > 920e6 && ch.freq_hz < 926e6);
        }
    }

    #[test]
    fn wavelength_is_about_32cm() {
        let plan = ChannelPlan::china_920();
        for ch in plan.channels() {
            let wl = ch.wavelength();
            assert!((0.32..0.33).contains(&wl), "wavelength {wl}");
        }
    }

    #[test]
    fn hop_order_is_permutation() {
        let plan = ChannelPlan::china_920();
        let mut seen = vec![false; plan.len()];
        for hop in 0..plan.len() {
            let ch = plan.channel_at(hop as f64 * plan.dwell_s + 0.1);
            assert!(!seen[ch.index as usize], "channel revisited within cycle");
            seen[ch.index as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hop_is_deterministic_and_dwell_respected() {
        let plan = ChannelPlan::china_920();
        let a = plan.channel_at(0.0);
        let b = plan.channel_at(plan.dwell_s * 0.99);
        let c = plan.channel_at(plan.dwell_s * 1.01);
        assert_eq!(a.index, b.index);
        assert_ne!(a.index, c.index);
    }

    #[test]
    fn single_channel_never_hops() {
        let plan = ChannelPlan::single(922e6);
        assert_eq!(plan.channel_at(0.0).index, 0);
        assert_eq!(plan.channel_at(1e9).index, 0);
    }

    #[test]
    fn non_power_of_two_count() {
        let plan = ChannelPlan::evenly_spaced(915e6, 500e3, 10, 0.4);
        assert_eq!(plan.len(), 10);
        let mut seen = [false; 10];
        for hop in 0..10 {
            let ch = plan.channel_at(hop as f64 * 0.4 + 0.01);
            seen[ch.index as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
