//! End-to-end tests for the live observability plane against the real
//! `repro` binary: following a trace while it is being written, and the
//! truncation contract of `telemetry::jsonl::read_events` on a real
//! (not hand-built) trace.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};

use tagwatch_monitor::{OnlineAnalyzers, TraceFollower};
use tagwatch_obs::{AnalyzeConfig, RunReport, Trace};
use tagwatch_telemetry::jsonl::{read_events, ParseError};

static SCRATCH: AtomicUsize = AtomicUsize::new(0);

fn scratch_path(tag: &str) -> PathBuf {
    let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tagwatch-bench-monitor-{}-{tag}-{n}.jsonl",
        std::process::id()
    ))
}

fn js<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).unwrap()
}

/// `obs tail`'s engine against a file that is being written *right now*:
/// spawn `repro obs-run` in the background, follow its telemetry stream
/// with [`TraceFollower`] until the footer lands, and require the online
/// verdicts assembled from the partial reads to be byte-identical to the
/// batch analyzers run over the finished trace.
#[test]
fn live_tail_of_a_running_obs_run_matches_batch_verdicts() {
    let trace_path = scratch_path("live");
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["obs-run", "--quick", "--seed", "11", "--telemetry"])
        .arg(&trace_path)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn repro");

    let mut follower = TraceFollower::new(&trace_path);
    let mut online = OnlineAnalyzers::default();
    let mut polls_with_data = 0usize;
    // Bounded by iteration count, not wall clock (the lint bans host
    // clock reads everywhere): 3000 × 20 ms ≈ 60 s worst case.
    let mut done = false;
    for _ in 0..3000 {
        let batch = match follower.poll() {
            Ok(batch) => batch,
            Err(e) => panic!("follower error: {e}"),
        };
        if !batch.is_empty() {
            polls_with_data += 1;
            for (_, event) in &batch {
                online.push(event);
            }
        }
        if online.footer().is_some() {
            done = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(done, "footer never observed while tailing");
    let status = child.wait().expect("wait repro");
    assert!(status.success(), "repro exited with {status}");
    // The stream must have been picked up incrementally, not in one
    // post-mortem gulp after the writer exited.
    assert!(
        polls_with_data >= 2,
        "expected incremental pickup, got {polls_with_data} non-empty poll(s)"
    );

    let trace = Trace::from_path(&trace_path).expect("finished trace validates");
    let report = RunReport::analyze(&trace, &AnalyzeConfig::default());
    let verdicts = online.verdicts();
    assert_eq!(js(&verdicts.tags), js(&report.tags));
    assert_eq!(js(&verdicts.starvation), js(&report.starvation));
    assert_eq!(js(&verdicts.confusion), js(&report.confusion));
    assert_eq!(js(&verdicts.q), js(&report.q));
    assert_eq!(js(&verdicts.fault), js(&report.fault));
    assert_eq!(
        verdicts.sim_seconds.to_bits(),
        report.sim_seconds.to_bits(),
        "online sim window diverged from the batch trace's"
    );
    std::fs::remove_file(&trace_path).ok();
}

/// The truncation contract on a *real* trace: cutting the file at any
/// byte offset inside its last two lines must read back as either a
/// clean shorter trace (cut exactly on a newline) or `TruncatedTail` —
/// never a parse or I/O error. This covers mid-footer cuts, the
/// signature of a process killed while closing its stream.
#[test]
fn truncating_a_real_trace_inside_the_last_two_lines_is_truncated_tail() {
    let trace_path = scratch_path("trunc");
    // --telemetry-max-events keeps the trace small (it is re-parsed a
    // few hundred times below) while still produced by the real
    // pipeline, ceiling drop accounting and footer included.
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "obs-run",
            "--quick",
            "--seed",
            "5",
            "--telemetry-max-events",
            "300",
            "--telemetry",
        ])
        .arg(&trace_path)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run repro");
    assert!(status.success(), "repro exited with {status}");

    let bytes = std::fs::read(&trace_path).expect("read trace");
    assert_eq!(
        bytes.last(),
        Some(&b'\n'),
        "trace must end newline-terminated"
    );
    let full = read_events(bytes.as_slice()).expect("intact trace parses");
    assert!(full.len() > 2, "trace too small to exercise the tail");

    // Byte offset where the second-to-last line starts.
    let newlines: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| (b == b'\n').then_some(i))
        .collect();
    assert!(newlines.len() >= 3);
    let penultimate_start = newlines[newlines.len() - 3] + 1;

    let mut truncated_tails = 0usize;
    for cut in penultimate_start + 1..bytes.len() {
        match read_events(&bytes[..cut]) {
            Ok(events) => {
                // Ok is legitimate in exactly two places: the cut lands
                // right after a newline (clean shorter trace), or right
                // before one (the final line is complete JSON, merely
                // missing its terminator).
                assert!(
                    bytes[cut - 1] == b'\n' || bytes[cut] == b'\n',
                    "cut at {cut}: Ok mid-line"
                );
                // cut == len-1 drops only the final newline and still
                // yields the full event list; every other Ok cut is a
                // strictly shorter trace.
                assert!(events.len() <= full.len());
            }
            Err(ParseError::TruncatedTail { .. }) => truncated_tails += 1,
            Err(other) => panic!("cut at {cut}: expected Ok or TruncatedTail, got {other}"),
        }
    }
    assert!(
        truncated_tails > 0,
        "no cut produced TruncatedTail — the sweep is vacuous"
    );
    std::fs::remove_file(&trace_path).ok();
}
