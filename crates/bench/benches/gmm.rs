//! Microbenchmarks for the motion-assessment hot path: per-reading GMM
//! updates and classification, plus the ablation against the naive
//! differencing detectors. Phase I processes one update per tag reading,
//! so this is the per-read CPU cost of the middleware.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::motion::{Detector, DiffDetector, MogDetector};
use tagwatch::{Gmm, GmmConfig};
use tagwatch_rf::{sample_normal, wrap_2pi, RfMeasurement};

fn phases(n: usize, modes: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|k| {
            let center = (k % modes) as f64 * 1.9;
            wrap_2pi(sample_normal(&mut rng, center, 0.1))
        })
        .collect()
}

fn meas(phase: f64, k: usize) -> RfMeasurement {
    RfMeasurement {
        phase,
        rss_dbm: -50.0,
        channel: (k % 16) as u8,
        freq_hz: 922.5e6,
        antenna: (k % 4) as u8 + 1,
        t: k as f64 * 0.02,
    }
}

fn bench_gmm_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("gmm_observe");
    for &modes in &[1usize, 3, 8] {
        let samples = phases(4096, modes, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(modes),
            &samples,
            |b, samples| {
                b.iter(|| {
                    let mut gmm = Gmm::phase(GmmConfig::phase_defaults());
                    for &x in samples {
                        black_box(gmm.observe(x));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_gmm_classify(c: &mut Criterion) {
    let samples = phases(4096, 3, 7);
    let mut gmm = Gmm::phase(GmmConfig::phase_defaults());
    gmm.train(&samples);
    c.bench_function("gmm_classify_trained", |b| {
        b.iter(|| {
            for &x in &samples {
                black_box(gmm.classify(x));
            }
        })
    });
}

fn bench_detector_families(c: &mut Criterion) {
    let samples = phases(4096, 3, 11);
    let mut group = c.benchmark_group("detector_observe_4096_reads");
    group.bench_function("phase_mog", |b| {
        b.iter(|| {
            let mut det = MogDetector::phase();
            for (k, &x) in samples.iter().enumerate() {
                black_box(det.observe(&meas(x, k)));
            }
        })
    });
    group.bench_function("phase_diff", |b| {
        b.iter(|| {
            let mut det = DiffDetector::phase(0.3);
            for (k, &x) in samples.iter().enumerate() {
                black_box(det.observe(&meas(x, k)));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gmm_observe,
    bench_gmm_classify,
    bench_detector_families
);
criterion_main!(benches);
