//! Microbenchmarks for the simulation substrate itself: how fast the
//! discrete-event Gen2 engine runs inventory rounds. This bounds how
//! much simulated air time the figure harness can chew through per CPU
//! second (the Fig. 18 sweep simulates hours).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch_gen2::{
    run_round, Epc, InvFlag, LinkTiming, QAdaptive, Query, QuerySel, RoundConfig, Select, Session,
    TagProto,
};
use tagwatch_reader::{Reader, ReaderConfig, RoSpec};
use tagwatch_scene::presets;

fn bench_raw_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("gen2_round");
    for &n in &[10usize, 40, 100, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            let template: Vec<TagProto> = (0..n)
                .map(|_| TagProto::new(Epc::random(&mut rng)))
                .collect();
            let query = Query {
                q: (n as f64).log2().ceil() as u8,
                sel: QuerySel::All,
                session: Session::S0,
                target: InvFlag::A,
            };
            b.iter(|| {
                let mut tags = template.clone();
                for t in tags.iter_mut() {
                    t.handle_select(&Select::reset_inventoried(Session::S0));
                }
                let mut sizer = QAdaptive::new(query.q);
                black_box(run_round(
                    &mut tags,
                    &RoundConfig::new(query),
                    &mut sizer,
                    &LinkTiming::r420(),
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

fn bench_reader_execute(c: &mut Criterion) {
    // Full stack: protocol + channel model + scene kinematics.
    let mut group = c.benchmark_group("reader_execute_read_all");
    group.sample_size(20);
    for &n in &[40usize, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let scene = presets::random_room(n, 5);
            let mut rng = StdRng::seed_from_u64(6);
            let epcs: Vec<Epc> = (0..n).map(|_| Epc::random(&mut rng)).collect();
            let spec = RoSpec::read_all(1, vec![1]);
            b.iter(|| {
                let mut reader = Reader::new(scene.clone(), &epcs, ReaderConfig::default(), 7);
                black_box(reader.execute(&spec).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_raw_round, bench_reader_execute);
criterion_main!(benches);
