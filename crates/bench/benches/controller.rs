//! End-to-end benchmark of a Tagwatch cycle (Phase I + assessment +
//! cover search + Phase II) against the read-all baseline controller, and
//! the scheduling-mode ablation (greedy vs naive bitmasks). Times here
//! are host CPU cost per simulated cycle, not simulated air time.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::prelude::*;
use tagwatch_gen2::Epc;
use tagwatch_reader::{Reader, ReaderConfig};
use tagwatch_rf::ChannelPlan;
use tagwatch_scene::presets;

fn build(n: usize, n_mobile: usize, mode: SchedulingMode) -> (Controller, Reader) {
    let scene = presets::turntable(n, n_mobile, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let epcs: Vec<Epc> = (0..n).map(|_| Epc::random(&mut rng)).collect();
    let rcfg = ReaderConfig {
        channel_plan: ChannelPlan::single(922.5e6),
        ..ReaderConfig::default()
    };
    let reader = Reader::new(scene, &epcs, rcfg, 5);
    let mut cfg = TagwatchConfig::default().with_scheduling(mode);
    cfg.phase2_len = 1.0;
    cfg.mobile_ceiling = 1.0;
    (Controller::new(cfg), reader)
}

fn bench_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_cycle");
    group.sample_size(10);
    for &(n, label, mode) in &[
        (50usize, "tagwatch_50", SchedulingMode::Tagwatch),
        (50, "naive_50", SchedulingMode::Naive),
        (50, "read_all_50", SchedulingMode::ReadAll),
        (200, "tagwatch_200", SchedulingMode::Tagwatch),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &n, |b, &n| {
            let (mut ctl, mut reader) = build(n, (n / 20).max(1), mode);
            // Settle into steady state once, outside measurement.
            for _ in 0..5 {
                ctl.run_cycle(&mut reader).unwrap();
            }
            b.iter(|| black_box(ctl.run_cycle(&mut reader).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycle);
criterion_main!(benches);
