//! Microbenchmarks for the telemetry hot path: what one emission costs
//! the simulator, per sink kind. The reader emits ~26 events per
//! inventory round (`slot loop counters + duration/Q observations + the
//! round span`), so at fig-17 scale (50k cycles) the emission path runs
//! tens of millions of times — its per-call cost decides whether
//! `--telemetry` is something you leave on. These benches pin four
//! figures:
//!
//! * `disabled` — the cost of instrumentation when no sink is installed
//!   (one relaxed atomic load; must stay ~1 ns so hot paths can keep
//!   their probes unconditionally),
//! * `memory` / `ring` / `jsonl` — the full emission path (registry
//!   update + sampling choke point + sink fan-out) per sink kind,
//! * `round_mix/sampled` — the reader's real 7-event round shape with
//!   1-in-8 round sampling, the configuration `--telemetry-sample 8`
//!   ships, showing what suppression actually saves.
//!
//! `tagwatch_telemetry::overhead::calibrate()` measures the same mixed
//! workload in-process for `obs hotspots`; these criterion runs are the
//! statistically careful version of that number.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tagwatch_telemetry::{JsonlSink, MemorySink, RingSink, Telemetry, TelemetryConfig};

/// The reader's per-round emission shape (see `overhead.rs`): four
/// counters, two observations, one simulated-clock span.
fn emit_round(tel: &Telemetry, k: u64) {
    tel.incr_by("round.successes", 3);
    tel.incr_by("round.empties", 2);
    tel.incr_by("round.collisions", 1);
    tel.incr_by("round.reads", 3);
    tel.observe("round.duration", 0.031);
    tel.observe("round.q_final", 4.0);
    let span = tel.sim_span("round", k as f64 * 0.031);
    span.end(k as f64 * 0.031 + 0.031);
}

fn bench_single_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_event");

    // Baseline: a disabled handle (no sink). This is the price every
    // instrumented hot path pays in a plain, untelemetered run.
    let disabled = Telemetry::new();
    group.bench_function("disabled", |b| {
        b.iter(|| disabled.incr_by(black_box("round.reads"), black_box(1)))
    });

    let memory = Telemetry::new();
    memory.install(Box::new(MemorySink::new(8192)));
    group.bench_function("memory", |b| {
        b.iter(|| memory.incr_by(black_box("round.reads"), black_box(1)))
    });

    let ring = Telemetry::new();
    ring.install(Box::new(RingSink::new(8192)));
    group.bench_function("ring", |b| {
        b.iter(|| ring.incr_by(black_box("round.reads"), black_box(1)))
    });

    let dir = std::env::temp_dir().join("tagwatch-telemetry-bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("events.jsonl");
    let jsonl = Telemetry::new();
    jsonl.install(Box::new(JsonlSink::create(&path).expect("jsonl sink")));
    group.bench_function("jsonl", |b| {
        b.iter(|| jsonl.incr_by(black_box("round.reads"), black_box(1)))
    });

    group.finish();
    std::fs::remove_file(&path).ok();
}

fn bench_round_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_round_mix");

    let full = Telemetry::new();
    full.install(Box::new(RingSink::new(8192)));
    let mut k = 0u64;
    group.bench_function("full", |b| {
        b.iter(|| {
            emit_round(&full, black_box(k));
            k += 1;
        })
    });

    let sampled = Telemetry::new();
    sampled.install(Box::new(RingSink::new(8192)));
    sampled.configure(TelemetryConfig {
        sample_every_n_rounds: 8,
        max_events: 0,
    });
    let mut k = 0u64;
    group.bench_function("sampled_1_in_8", |b| {
        b.iter(|| {
            emit_round(&sampled, black_box(k));
            k += 1;
        })
    });

    group.finish();
}

criterion_group!(benches, bench_single_event, bench_round_mix);
criterion_main!(benches);
