//! Reference vs batched round engine, head to head on the steady-state
//! hot path. Unlike `inventory.rs` (which constructs a fresh reader per
//! iteration and so measures warm-up too), this bench reuses one warm
//! reader and a recycled report buffer per engine — the configuration
//! the zero-allocation audit (`tests/alloc_steady_state.rs`) pins — so
//! the numbers isolate the per-round cost the `--engine` flag actually
//! changes. The `repro speed-bench` figure is the wall-clock companion;
//! this bench gives the per-round distribution.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch_gen2::Epc;
use tagwatch_reader::{EngineKind, Reader, ReaderConfig, RoSpec};
use tagwatch_scene::presets;
use tagwatch_telemetry::Telemetry;

/// One warm reader in steady state; the measured closure executes a
/// single ROSpec (one inventory round) into a recycled buffer.
fn warm_reader(
    engine: EngineKind,
    n_tags: usize,
) -> (Reader, RoSpec, Vec<tagwatch_reader::TagReport>) {
    let seed = 0x5EED;
    let scene = presets::turntable(n_tags, n_tags / 10, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB0);
    let epcs: Vec<Epc> = (0..n_tags).map(|_| Epc::random(&mut rng)).collect();
    let cfg = ReaderConfig {
        engine,
        ..ReaderConfig::default()
    };
    let mut reader = Reader::new(scene, &epcs, cfg, seed);
    // Sampling-off telemetry, as in the gated obs-run configuration.
    let tel = Telemetry::new();
    tel.set_enabled(true);
    reader.set_telemetry(tel);
    let spec = RoSpec::read_all(1, vec![1]);
    let mut reports = Vec::new();
    for _ in 0..32 {
        reader
            .execute_into(&spec, &mut reports)
            .expect("valid ROSpec");
        reports.clear();
    }
    (reader, spec, reports)
}

fn bench_round_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_hotpath");
    for &n in &[10usize, 40, 200] {
        for engine in [EngineKind::Reference, EngineKind::Batched] {
            let label = match engine {
                EngineKind::Reference => "reference",
                EngineKind::Batched => "batched",
            };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let (mut reader, spec, mut reports) = warm_reader(engine, n);
                b.iter(|| {
                    reader
                        .execute_into(&spec, &mut reports)
                        .expect("valid ROSpec");
                    black_box(reports.len());
                    reports.clear();
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_round_hotpath);
criterion_main!(benches);
