//! Microbenchmarks for the Phase-II scheduler: index-table construction
//! and the greedy weighted set-cover search (§5.3). This is the compute
//! behind the Fig. 17 schedule-cost gap, so it must stay in the low
//! milliseconds even at 400-tag populations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::{greedy_cover, naive_cover, select_cover, Bitmap, CoverConfig, IndexTable};
use tagwatch_gen2::{CostModel, Epc};

fn population(n: usize, seed: u64) -> Vec<Epc> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Epc::random(&mut rng)).collect()
}

fn targets(n: usize, n_targets: usize) -> Vec<usize> {
    (0..n)
        .step_by((n / n_targets).max(1))
        .take(n_targets)
        .collect()
}

fn bench_table_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_table_build");
    group.sample_size(20);
    for &(n, nt) in &[(40usize, 2usize), (40, 5), (100, 10), (400, 20)] {
        let epcs = population(n, 42);
        let t = targets(n, nt);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nt}of{n}")),
            &(epcs, t),
            |b, (epcs, t)| {
                b.iter(|| {
                    black_box(IndexTable::build(epcs, t, &CoverConfig::default()));
                })
            },
        );
    }
    group.finish();
}

fn bench_greedy_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_cover_search");
    group.sample_size(20);
    let cost = CostModel::paper();
    for &(n, nt) in &[(40usize, 5usize), (100, 10), (400, 20)] {
        let epcs = population(n, 7);
        let t = targets(n, nt);
        let table = IndexTable::build(&epcs, &t, &CoverConfig::default());
        let bitmap = Bitmap::from_indices(n, &t);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nt}of{n}")),
            &(table, bitmap),
            |b, (table, bitmap)| {
                b.iter(|| {
                    black_box(greedy_cover(table, bitmap, &cost));
                })
            },
        );
    }
    group.finish();
}

fn bench_full_pipeline_vs_naive(c: &mut Criterion) {
    // Ablation: the complete §5 pipeline (table + greedy + guard) against
    // the naive per-EPC plan construction.
    let mut group = c.benchmark_group("cover_pipeline_20of400");
    group.sample_size(20);
    let cost = CostModel::paper();
    let epcs = population(400, 9);
    let t = targets(400, 20);
    group.bench_function("tagwatch_select_cover", |b| {
        b.iter(|| black_box(select_cover(&epcs, &t, &cost, &CoverConfig::default())))
    });
    group.bench_function("naive_per_epc", |b| {
        b.iter(|| black_box(naive_cover(&epcs, &t, &cost)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table_build,
    bench_greedy_search,
    bench_full_pipeline_vs_naive
);
criterion_main!(benches);
