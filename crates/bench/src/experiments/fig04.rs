//! **E3 / Fig. 4** — distribution of per-tag reading counts in the
//! TrackPoint trace: "20% of the tags are read over 205 times, whereas 10%
//! of the tags are read over 655 times", versus the ~50 reads a genuinely
//! moving piece should get.

use tagwatch_trace::{count_at_top_fraction, generate, read_counts, Trace, TraceConfig};

/// One point of the complementary CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcdfPoint {
    /// Top fraction of tags (e.g. 0.2).
    pub fraction: f64,
    /// Read count reached by that fraction.
    pub reads: usize,
}

/// Experiment result.
#[derive(Debug, Clone)]
pub struct Fig4 {
    pub points: Vec<CcdfPoint>,
    /// Mean reads per moving transit.
    pub mean_mover_reads: f64,
    pub trace: Trace,
}

/// Runs the experiment on the full 4-hour configuration (`quick` shrinks
/// to 30 minutes).
pub fn run(seed: u64, quick: bool) -> Fig4 {
    let cfg = if quick {
        TraceConfig {
            duration: 1800.0,
            total_tags: 120,
            parked_tags: 35,
            ..Default::default()
        }
    } else {
        TraceConfig::default()
    };
    let trace = generate(&cfg, seed);
    let counts = read_counts(&trace);
    let fractions = [0.05, 0.1, 0.2, 0.3, 0.5, 0.8];
    let points = fractions
        .iter()
        .map(|&fraction| CcdfPoint {
            fraction,
            reads: count_at_top_fraction(&counts, fraction),
        })
        .collect();
    let summary = tagwatch_trace::summarize(&trace);
    Fig4 {
        points,
        mean_mover_reads: summary.mean_mover_reads,
        trace,
    }
}

impl std::fmt::Display for Fig4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 4 — per-tag read-count distribution")?;
        writeln!(f, "{:>12} {:>12}", "top frac", "reads ≥")?;
        for p in &self.points {
            writeln!(f, "{:>11}% {:>12}", (p.fraction * 100.0) as u32, p.reads)?;
        }
        writeln!(f, "paper anchors: top 20% > 205 reads, top 10% > 655 reads")?;
        writeln!(
            f,
            "mean reads per moving transit: {:.1}  (paper: movers typically < 5–50)",
            self.mean_mover_reads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccdf_is_monotone_and_heavy_tailed() {
        let r = run(7, true);
        for w in r.points.windows(2) {
            assert!(
                w[0].reads >= w[1].reads,
                "CCDF must fall with fraction: {:?}",
                r.points
            );
        }
        // Heavy tail: top 5% reads far exceed the median tag.
        let top = r.points[0].reads;
        let mid = r.points[4].reads; // 50%
        assert!(top > 5 * mid.max(1), "top {top} vs median {mid}");
        // Movers read far less than the hot parked tags.
        assert!(r.mean_mover_reads < top as f64 / 5.0);
    }
}
