//! **Supplementary S1 — the sorting gate, closed loop.**
//!
//! §2.4 motivates the whole paper: a TrackPoint gate wants ≥10 reads per
//! conveyor transit for localization, but parked (sorted) inventory soaks
//! up the air time and movers get single digits. The paper never replays
//! that workload through Tagwatch; this experiment does. A gate scene with
//! a large parked population and Poisson conveyor arrivals runs under
//! read-all and under Tagwatch, and we measure what the paper's
//! application actually needs: reads per transit and the latency from a
//! piece entering the field to its first selective read.

use crate::experiments::common::{random_epcs, single_channel_reader};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tagwatch::prelude::*;
use tagwatch_scene::{presets, Scene};

/// Per-piece outcome under one scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PieceStats {
    /// Reads while the piece was in the field.
    pub reads: usize,
    /// Seconds from field entry to the first read (NaN if never read).
    pub first_read_latency: f64,
}

/// Experiment result.
#[derive(Debug, Clone)]
pub struct GateReplay {
    pub n_parked: usize,
    pub n_pieces: usize,
    /// Per-piece stats under read-all.
    pub read_all: Vec<PieceStats>,
    /// Per-piece stats under Tagwatch.
    pub tagwatch: Vec<PieceStats>,
}

/// Builds the gate scene: `n_parked` stationary tags plus `n_pieces`
/// conveyor transits with Poisson arrivals starting after `warm_s`.
fn gate_scene(
    n_parked: usize,
    n_pieces: usize,
    warm_s: f64,
    seed: u64,
) -> (Scene, Vec<(f64, f64)>) {
    let mut scene = presets::trackpoint_gate(n_parked, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6A7E);
    let mut t = warm_s;
    let mut windows = Vec::new();
    for k in 0..n_pieces {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() * 12.0; // mean 12 s between arrivals
        let piece = presets::conveyor_piece(10_000 + k as u64, t, 1.0);
        let window = piece.presence.expect("conveyor pieces have windows"); // lint:allow(panic-policy): conveyor scenario gives every piece a presence window
        windows.push(window);
        scene.add_tag(piece);
    }
    (scene, windows)
}

fn measure(
    seed: u64,
    n_parked: usize,
    n_pieces: usize,
    warm_s: f64,
    mode: SchedulingMode,
) -> Vec<PieceStats> {
    let (scene, windows) = gate_scene(n_parked, n_pieces, warm_s, seed);
    let n = scene.tags.len();
    let epcs = random_epcs(n, seed ^ 0x6A7F);
    let mut reader = single_channel_reader(scene, &epcs, seed ^ 0x6A80);
    let mut cfg = TagwatchConfig::with_antennas(vec![1, 2, 3]).with_scheduling(mode);
    cfg.phase2_len = 3.0;
    let mut ctl = Controller::new(cfg);

    let t_end = windows.last().map_or(warm_s, |w| w.1) + 5.0;
    let mut first_read: Vec<Option<f64>> = vec![None; n_pieces];
    let mut reads = vec![0usize; n_pieces];
    while reader.now() < t_end {
        let rep = ctl.run_cycle(&mut reader).expect("valid config"); // lint:allow(panic-policy): harness-built config is valid by construction
        for r in rep.phase1.iter().chain(rep.phase2.iter()) {
            if r.tag_idx >= n_parked {
                let k = r.tag_idx - n_parked;
                reads[k] += 1;
                first_read[k].get_or_insert(r.rf.t);
            }
        }
    }
    (0..n_pieces)
        .map(|k| PieceStats {
            reads: reads[k],
            first_read_latency: first_read[k].map_or(f64::NAN, |t| t - windows[k].0),
        })
        .collect()
}

/// Runs the gate replay.
pub fn run(seed: u64, n_parked: usize, n_pieces: usize) -> GateReplay {
    let warm_s = 60.0;
    GateReplay {
        n_parked,
        n_pieces,
        read_all: measure(seed, n_parked, n_pieces, warm_s, SchedulingMode::ReadAll),
        tagwatch: measure(seed, n_parked, n_pieces, warm_s, SchedulingMode::Tagwatch),
    }
}

fn mean_reads(stats: &[PieceStats]) -> f64 {
    stats.iter().map(|s| s.reads as f64).sum::<f64>() / stats.len().max(1) as f64
}

fn mean_latency(stats: &[PieceStats]) -> f64 {
    let v: Vec<f64> = stats
        .iter()
        .map(|s| s.first_read_latency)
        .filter(|l| l.is_finite())
        .collect();
    if v.is_empty() {
        f64::NAN
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

impl std::fmt::Display for GateReplay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "S1 — sorting-gate replay: {} parked tags, {} conveyor transits (the §2.4 workload, closed loop)",
            self.n_parked, self.n_pieces
        )?;
        writeln!(
            f,
            "{:>10} {:>18} {:>22}",
            "scheme", "reads/transit", "first-read latency (s)"
        )?;
        writeln!(
            f,
            "{:>10} {:>18.1} {:>22.2}",
            "read-all",
            mean_reads(&self.read_all),
            mean_latency(&self.read_all)
        )?;
        writeln!(
            f,
            "{:>10} {:>18.1} {:>22.2}",
            "Tagwatch",
            mean_reads(&self.tagwatch),
            mean_latency(&self.tagwatch)
        )?;
        writeln!(
            f,
            "paper's requirement: ≥10 reads per transit for high-precision localization (§2.4)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagwatch_multiplies_per_transit_reads() {
        let r = run(7, 80, 4);
        let base = mean_reads(&r.read_all);
        let tw = mean_reads(&r.tagwatch);
        assert!(base > 0.0, "read-all never saw the pieces");
        assert!(
            tw > 2.0 * base,
            "Tagwatch {tw:.1} reads/transit vs read-all {base:.1}"
        );
        // The paper's §2.4 requirement is met by Tagwatch.
        assert!(tw >= 10.0, "Tagwatch only {tw:.1} reads/transit");
        // Every piece was seen under both schemes.
        assert!(r.read_all.iter().all(|s| s.reads > 0));
        assert!(r.tagwatch.iter().all(|s| s.reads > 0));
    }
}
