//! **E10 / Fig. 17** — schedule cost: the wall-clock compute time Tagwatch
//! spends between the last Phase-I reading and the first Phase-II reading
//! (motion assessment + bitmask selection). The paper slices this gap out
//! of 50,000 cycles and reports a CDF: ≤ ~4 ms at the median, ≤ ~6 ms at
//! the 90th percentile — negligible against a 5 s cycle.
//!
//! `CycleReport::compute_time` is measured by the controller's
//! `cycle.compute` telemetry timer (a wall-clock span around assessment +
//! schedule construction), not ad-hoc `Instant` bookkeeping — so running
//! `repro fig17 --telemetry out.jsonl` exports the same gap samples as
//! spans and a `cycle.compute_seconds` histogram.

use crate::experiments::common::{hopping_reader, random_epcs};
use tagwatch::metrics::percentile;
use tagwatch::prelude::*;
use tagwatch_scene::presets;

/// Experiment result.
#[derive(Debug, Clone)]
pub struct Fig17 {
    /// Measured per-cycle compute gaps in seconds.
    pub gaps: Vec<f64>,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

/// Runs `cycles` controller cycles over a 40-tag population with 2
/// concerned targets and collects the measured assessment+schedule time.
/// Phase II is shortened (the gap does not depend on it), so thousands of
/// cycles stay cheap.
pub fn run(seed: u64, cycles: usize) -> Fig17 {
    let n = 40;
    let scene = presets::random_room(n, seed);
    let epcs = random_epcs(n, seed ^ 0x17A);
    let mut reader = hopping_reader(scene, &epcs, seed ^ 0x17B);

    let cfg = TagwatchConfig {
        phase2_len: 0.2,
        min_votes: usize::MAX, // targets from config only
        concerned: vec![epcs[3], epcs[17]],
        mobile_ceiling: 1.0,
        ..TagwatchConfig::default()
    };

    let mut ctl = Controller::new(cfg);
    let mut gaps = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        let rep = ctl.run_cycle(&mut reader).expect("valid config"); // lint:allow(panic-policy): harness-built config is valid by construction
        gaps.push(rep.compute_time);
    }
    let p50 = percentile(&gaps, 50.0);
    let p90 = percentile(&gaps, 90.0);
    let p99 = percentile(&gaps, 99.0);
    Fig17 {
        gaps,
        p50,
        p90,
        p99,
    }
}

impl std::fmt::Display for Fig17 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 17 — schedule cost CDF over {} cycles (assessment + bitmask selection)",
            self.gaps.len()
        )?;
        for q in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
            writeln!(f, "  p{q:<4} {:>10.3} ms", percentile(&self.gaps, q) * 1e3)?;
        }
        writeln!(
            f,
            "paper anchors: ≤ ~4 ms at p50, ≤ ~6 ms at p90 — negligible vs the 5 s cycle"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_is_negligible_vs_cycle() {
        let r = run(7, 50);
        assert!(r.p50 > 0.0);
        assert!(r.p50 <= r.p90 && r.p90 <= r.p99);
        // The paper's headline: single-digit milliseconds. Allow headroom
        // for debug builds and noisy CI machines.
        assert!(r.p90 < 0.25, "p90 gap {} s", r.p90);
        // And utterly negligible against the 5 s Phase II.
        assert!(r.p50 < 0.05 * 5.0);
    }
}
