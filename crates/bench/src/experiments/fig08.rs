//! **E4 / Fig. 8** — the phase distribution of a *stationary* tag in a
//! dynamic environment (people walking) is multi-modal, and the
//! self-learning GMM captures one Gaussian per multipath mode — the
//! empirical justification for modelling immobility with a mixture.

use crate::experiments::common::{random_epcs, single_channel_reader};
use tagwatch::prelude::*;
use tagwatch_reader::RoSpec;
use tagwatch_rf::Vec3;
use tagwatch_scene::{Scene, SceneReflector, SceneTag, Trajectory};

/// Experiment result.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// 36-bin histogram of the stationary tag's phase readings, radians.
    pub histogram: [usize; 36],
    /// Total readings collected.
    pub readings: usize,
    /// Established GMM modes learned from the stream: (mean, sigma, weight).
    pub modes: Vec<(f64, f64, f64)>,
    /// Number of histogram bins acting as local maxima (mode count proxy).
    pub histogram_peaks: usize,
}

/// Runs the experiment: one stationary tag with a person repeatedly
/// walking close by (the paper "ask[s] a person to walk around"), read
/// continuously for `duration` simulated seconds.
pub fn run(seed: u64, duration: f64) -> Fig8 {
    let mut scene = Scene::with_single_antenna();
    scene.antennas[0].position = Vec3::new(0.0, 0.0, 2.0);
    scene.add_tag(SceneTag::fixed(0, Vec3::new(1.5, 0.3, 0.8)));
    // The walker's path passes within ~0.4 m of the tag and out to ~2 m:
    // close approaches dominate the scattering (Γ/(d₁·d₂)), producing the
    // handful of quasi-stable phase modes Fig. 7/8 describes.
    scene.add_reflector(SceneReflector {
        trajectory: Trajectory::Patrol {
            a: Vec3::new(1.2, -0.4, 1.0),
            b: Vec3::new(2.4, 1.8, 1.0),
            speed: 0.8,
            t_offset: 0.0,
        },
        coefficient: 0.35,
    });
    let epcs = random_epcs(1, seed ^ 0xF18);
    let mut reader = single_channel_reader(scene, &epcs, seed ^ 0x808);
    let spec = RoSpec::read_all(1, vec![1]);
    let reports = reader.run_for(&spec, duration).expect("valid spec"); // lint:allow(panic-policy): harness-built spec is valid by construction

    let mut histogram = [0usize; 36];
    let mut gmm = Gmm::phase(GmmConfig::phase_defaults());
    for r in &reports {
        let bin = ((r.rf.phase / std::f64::consts::TAU) * 36.0) as usize;
        histogram[bin.min(35)] += 1;
        gmm.observe(r.rf.phase);
    }

    let mut modes: Vec<(f64, f64, f64)> = gmm
        .established_modes()
        .map(|m| (m.g.mean, m.g.sigma, m.weight))
        .collect();
    modes.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("weights finite")); // lint:allow(panic-policy): weights are finite sums of finite samples

    let histogram_peaks = (0..36)
        .filter(|&i| {
            let prev = histogram[(i + 35) % 36];
            let next = histogram[(i + 1) % 36];
            histogram[i] > prev && histogram[i] >= next && histogram[i] > reports.len() / 50
        })
        .count();

    Fig8 {
        histogram,
        readings: reports.len(),
        modes,
        histogram_peaks,
    }
}

impl std::fmt::Display for Fig8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 8 — phase histogram of a stationary tag with people walking ({} readings)",
            self.readings
        )?;
        let max = *self.histogram.iter().max().unwrap_or(&1);
        for (i, &count) in self.histogram.iter().enumerate() {
            let bar = "#".repeat((count * 50 / max.max(1)).min(50));
            writeln!(
                f,
                "{:>5.2} rad |{bar:<50}| {count}",
                (i as f64 + 0.5) * std::f64::consts::TAU / 36.0
            )?;
        }
        writeln!(
            f,
            "histogram peaks: {} (paper: a few quasi-stable modes)",
            self.histogram_peaks
        )?;
        writeln!(f, "established GMM modes (mean rad, sigma, weight):")?;
        for (mean, sigma, weight) in &self.modes {
            writeln!(f, "  μ = {mean:.2}  δ = {sigma:.3}  w = {weight:.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_tag_phase_is_multimodal_and_learned() {
        let r = run(7, 60.0);
        assert!(r.readings > 1000, "{} readings", r.readings);
        // The dominant mode is established and tight.
        assert!(!r.modes.is_empty(), "no established modes");
        assert!(r.modes[0].2 > 0.2, "dominant weight {}", r.modes[0].2);
        // All mass is NOT in one bin: multipath spreads the phase.
        let max_bin = *r.histogram.iter().max().unwrap();
        assert!(
            max_bin < r.readings,
            "all readings in one bin — no multipath effect"
        );
    }
}
