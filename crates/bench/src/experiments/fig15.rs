//! **E8–E9 / Fig. 15 & 16** — schedule feasibility: 2 (or 5) target tags
//! out of 40, labelled directly through the configuration file (so Phase I
//! cannot interfere), read with three solutions: reading all, Tagwatch
//! (greedy set-cover bitmasks), and the naive per-EPC bitmask scheduler.
//! The per-tag IRRs are computed from Phase-II readings only, exactly as
//! the paper does.

use crate::experiments::common::{hopping_reader, random_epcs};
use tagwatch::prelude::*;
use tagwatch_scene::presets;

/// Per-tag result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeasibilityRow {
    pub tag: usize,
    pub is_target: bool,
    pub irr_read_all: f64,
    pub irr_tagwatch: f64,
    pub irr_naive: f64,
}

/// Experiment result.
#[derive(Debug, Clone)]
pub struct Feasibility {
    pub rows: Vec<FeasibilityRow>,
    pub n_targets: usize,
    /// Mean target IRR per scheme: (read-all, tagwatch, naive).
    pub target_means: (f64, f64, f64),
    /// Collaterally covered non-targets under Tagwatch.
    pub collateral: Vec<usize>,
}

/// Measures per-tag Phase-II IRR under one scheduling mode.
fn measure(
    seed: u64,
    n: usize,
    targets: &[usize],
    mode: SchedulingMode,
    cycles: usize,
) -> Vec<f64> {
    let scene = presets::random_room(n, seed);
    let epcs = random_epcs(n, seed ^ 0x15A);
    let mut reader = hopping_reader(scene, &epcs, seed ^ 0x15B);

    let mut cfg = TagwatchConfig::default().with_scheduling(mode);
    cfg.phase2_len = 5.0;
    // Targets come from the configuration file; disable motion-driven
    // targeting entirely ("to eliminate the influence from the first
    // phase", §7.2).
    cfg.min_votes = usize::MAX;
    cfg.concerned = targets.iter().map(|&t| epcs[t]).collect();
    // With 2 or 5 of 40 targets the ceiling never trips, but keep it off
    // for baseline parity.
    cfg.mobile_ceiling = 1.0;

    let mut ctl = Controller::new(cfg);
    let mut reads = vec![0usize; n];
    let mut phase2_time = 0.0;
    for _ in 0..cycles {
        let rep = ctl.run_cycle(&mut reader).expect("valid config"); // lint:allow(panic-policy): harness-built config is valid by construction
        for r in &rep.phase2 {
            reads[r.tag_idx] += 1;
        }
        phase2_time += rep.phase2_duration;
    }
    reads.iter().map(|&c| c as f64 / phase2_time).collect()
}

/// Runs the feasibility experiment with `n_targets` of 40 tags.
pub fn run(seed: u64, n_targets: usize, cycles: usize) -> Feasibility {
    let n = 40;
    let targets: Vec<usize> = (0..n_targets).collect();

    let read_all = measure(seed, n, &targets, SchedulingMode::ReadAll, cycles);
    let tagwatch = measure(seed, n, &targets, SchedulingMode::Tagwatch, cycles);
    let naive = measure(seed, n, &targets, SchedulingMode::Naive, cycles);

    let rows: Vec<FeasibilityRow> = (0..n)
        .map(|tag| FeasibilityRow {
            tag,
            is_target: targets.contains(&tag),
            irr_read_all: read_all[tag],
            irr_tagwatch: tagwatch[tag],
            irr_naive: naive[tag],
        })
        .collect();

    let mean_of = |v: &[f64]| targets.iter().map(|&t| v[t]).sum::<f64>() / n_targets as f64;
    let collateral = (0..n)
        .filter(|t| !targets.contains(t) && tagwatch[*t] > 0.5)
        .collect();

    Feasibility {
        rows,
        n_targets,
        target_means: (mean_of(&read_all), mean_of(&tagwatch), mean_of(&naive)),
        collateral,
    }
}

impl std::fmt::Display for Feasibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. {} — schedule feasibility: {}/40 targets (Phase-II IRRs, Hz)",
            if self.n_targets <= 2 { 15 } else { 16 },
            self.n_targets
        )?;
        writeln!(
            f,
            "{:>4} {:>7} {:>10} {:>10} {:>10}",
            "tag", "target", "read-all", "Tagwatch", "naive"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>4} {:>7} {:>10.1} {:>10.1} {:>10.1}",
                r.tag,
                if r.is_target { "*" } else { "" },
                r.irr_read_all,
                r.irr_tagwatch,
                r.irr_naive
            )?;
        }
        let (ra, tw, nv) = self.target_means;
        writeln!(
            f,
            "target means: read-all {ra:.1} Hz, Tagwatch {tw:.1} Hz (+{:.0}%), naive {nv:.1} Hz (+{:.0}%)",
            (tw / ra - 1.0) * 100.0,
            (nv / ra - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "collateral non-targets under Tagwatch: {:?}",
            self.collateral
        )?;
        writeln!(
            f,
            "paper anchors: 2/40 → ~13 Hz → ~47 Hz (+261%), naive ~24 Hz; 5/40 → +120%, a couple of collaterals"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_of_forty_matches_paper_shape() {
        let r = run(7, 2, 3);
        let (ra, tw, nv) = r.target_means;
        // Read-all baseline near the paper's ~13 Hz for 40 tags.
        assert!((6.0..20.0).contains(&ra), "read-all {ra}");
        // Tagwatch far above read-all and above naive.
        assert!(tw > 2.0 * ra, "Tagwatch {tw} vs read-all {ra}");
        assert!(tw > nv, "Tagwatch {tw} vs naive {nv}");
        // Naive still beats read-all at 2 targets.
        assert!(nv > ra, "naive {nv} vs read-all {ra}");
        // Non-targets starve in Phase II under Tagwatch (near-zero IRR)
        // except collaterals.
        for row in &r.rows {
            if !row.is_target && !r.collateral.contains(&row.tag) {
                assert!(
                    row.irr_tagwatch < 1.0,
                    "non-target {row:?} read in Phase II"
                );
            }
        }
    }

    #[test]
    fn five_of_forty_still_gains() {
        let r = run(11, 5, 3);
        let (ra, tw, _) = r.target_means;
        assert!(tw > 1.5 * ra, "Tagwatch {tw} vs read-all {ra}");
    }
}
