//! Experiment implementations, one module per paper figure. See DESIGN.md
//! §4 for the experiment index and EXPERIMENTS.md for paper-vs-measured
//! results.

pub mod ablations;
pub mod common;
pub mod csv;
pub mod fault_run;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig08;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig17;
pub mod fig18;
pub mod gate;
pub mod obs_run;
pub mod speed_bench;
pub mod trace_bench;
