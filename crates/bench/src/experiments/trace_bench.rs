//! **trace-bench** — the trace-plane encoding benchmark: one
//! deterministic synthetic event stream, encoded to both trace formats.
//!
//! This is the workload behind the `ci.sh --trace` size/throughput
//! figure: it fabricates a controller-shaped stream (cycle → round span
//! hierarchy, counters, tag reads with realistic 128-bit EPCs, gauges,
//! a closing footer), serializes it once as JSONL and once as compact
//! `.twb`, and records the byte and throughput accounting in the global
//! telemetry registry so `--bench-json` snapshots carry it:
//!
//! * `trace.encode.events` / `trace.encode.jsonl_bytes` /
//!   `trace.encode.twb_bytes` — deterministic counters (both encoders
//!   are pure functions of the stream, so byte totals never vary for a
//!   seed);
//! * `wall.trace.encode.jsonl_seconds` / `wall.trace.encode.twb_seconds`
//!   — wall-clock observations, excluded from sim-side determinism
//!   gates like every other `wall.*` metric.
//!
//! Every run also round-trips the `.twb` bytes through the decoder and
//! asserts event-for-event equality, so the size figure can never be
//! quoted for a stream the decoder would not accept.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tagwatch_telemetry::binary::{decode_all, encode_stream};
use tagwatch_telemetry::{
    wall_now, ClockKind, CounterRecord, Event, FooterRecord, GaugeRecord, ObserveRecord,
    SpanRecord, TagRecord, Telemetry,
};

/// Result of one trace-bench run (printed; the registry carries the
/// counters the snapshot gates on).
#[derive(Debug, Clone)]
pub struct TraceBench {
    pub events: usize,
    pub jsonl_bytes: usize,
    pub twb_bytes: usize,
    pub jsonl_seconds: f64,
    pub twb_seconds: f64,
}

impl TraceBench {
    /// How many times smaller the binary encoding is.
    pub fn ratio(&self) -> f64 {
        if self.twb_bytes == 0 {
            0.0
        } else {
            self.jsonl_bytes as f64 / self.twb_bytes as f64
        }
    }
}

/// A controller-shaped synthetic stream of at least `target` events:
/// cycles of four rounds, each round a counter + sim span + tag read,
/// with per-cycle gauges, slot observations, and a wall-clock compute
/// span; closed by a footer. Pure function of the seed.
fn synthetic_stream(seed: u64, target: usize) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let epcs: Vec<u128> = (0..32).map(|_| rng.gen()).collect();
    let mut events = Vec::with_capacity(target + 16);
    let mut id = 0u64;
    let mut t = 0.0f64;
    let mut offered = 0u64;
    while events.len() < target {
        id += 1;
        let cycle_id = id;
        let t0 = t;
        for _ in 0..4 {
            id += 1;
            let dur = 0.02 + rng.gen::<f64>() * 0.03;
            offered += 3;
            events.push(Event::Counter(CounterRecord {
                name: "round.offered".into(),
                delta: 3,
                total: offered,
            }));
            events.push(Event::Span(SpanRecord {
                name: "round".into(),
                id,
                parent: Some(cycle_id),
                start: t,
                duration: dur,
                clock: ClockKind::Sim,
            }));
            events.push(Event::Tag(TagRecord {
                name: "read.phase1".into(),
                epc: epcs[rng.gen_range(0..epcs.len())],
                t: t + dur,
            }));
            t += dur;
        }
        events.push(Event::Observe(ObserveRecord {
            name: "round.slots".into(),
            value: rng.gen_range(8..64u32) as f64,
        }));
        events.push(Event::Gauge(GaugeRecord {
            name: "round.sim_now".into(),
            value: t,
        }));
        events.push(Event::Span(SpanRecord {
            name: "cycle".into(),
            id: cycle_id,
            parent: None,
            start: t0,
            duration: t - t0,
            clock: ClockKind::Sim,
        }));
        id += 1;
        events.push(Event::Span(SpanRecord {
            name: "cycle.compute".into(),
            id,
            parent: Some(cycle_id),
            start: 0.0,
            duration: rng.gen::<f64>() * 1e-3,
            clock: ClockKind::Wall,
        }));
    }
    events.push(Event::Footer(FooterRecord {
        emitted: events.len() as u64 + 1,
        sampled_out: 0,
        dropped: 0,
        sample_every_n_rounds: 1,
        max_events: 0,
    }));
    events
}

/// Encodes the seed's synthetic stream both ways, verifies the binary
/// round-trip, and records the accounting in the global registry.
pub fn run(seed: u64, target_events: usize) -> TraceBench {
    let events = synthetic_stream(seed, target_events);

    let t_jsonl = wall_now();
    let mut jsonl = String::with_capacity(events.len() * 96);
    for ev in &events {
        let line = serde_json::to_string(ev).expect("events serialize"); // lint:allow(panic-policy): Event serialization to JSON is infallible
        jsonl.push_str(&line);
        jsonl.push('\n');
    }
    let jsonl_seconds = t_jsonl.elapsed_seconds();

    let t_twb = wall_now();
    let twb = encode_stream(&events);
    let twb_seconds = t_twb.elapsed_seconds();

    // The size figure is only honest for a decodable stream.
    let (_, decoded) = decode_all(&twb).expect("own encoding decodes"); // lint:allow(panic-policy): encoder output failing its own decoder is a codec bug worth aborting the benchmark over
    assert!(
        decoded.len() == events.len() && decoded.iter().map(|d| &d.event).eq(events.iter()),
        "binary round-trip diverged from the source stream"
    );

    let tel = Telemetry::global();
    tel.incr_by("trace.encode.events", events.len() as u64);
    tel.incr_by("trace.encode.jsonl_bytes", jsonl.len() as u64);
    tel.incr_by("trace.encode.twb_bytes", twb.len() as u64);
    tel.observe("wall.trace.encode.jsonl_seconds", jsonl_seconds);
    tel.observe("wall.trace.encode.twb_seconds", twb_seconds);

    TraceBench {
        events: events.len(),
        jsonl_bytes: jsonl.len(),
        twb_bytes: twb.len(),
        jsonl_seconds,
        twb_seconds,
    }
}

impl std::fmt::Display for TraceBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let per = |bytes: usize| bytes as f64 / self.events.max(1) as f64;
        let evps = |secs: f64| {
            if secs > 0.0 {
                self.events as f64 / secs
            } else {
                f64::INFINITY
            }
        };
        writeln!(f, "trace-bench — trace-plane encoding benchmark")?;
        writeln!(
            f,
            "  {} events: JSONL {} bytes ({:.1} B/event), .twb {} bytes ({:.1} B/event)",
            self.events,
            self.jsonl_bytes,
            per(self.jsonl_bytes),
            self.twb_bytes,
            per(self.twb_bytes),
        )?;
        writeln!(f, "  compression: {:.2}x smaller than JSONL", self.ratio())?;
        writeln!(
            f,
            "  encode throughput: JSONL {:.0} events/s, .twb {:.0} events/s (wall)",
            evps(self.jsonl_seconds),
            evps(self.twb_seconds),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_bench_meets_the_size_bar() {
        let a = synthetic_stream(7, 500);
        let b = synthetic_stream(7, 500);
        assert_eq!(a, b);
        let r = run(7, 500);
        assert_eq!(r.events, a.len());
        // The acceptance bar the CI trace gate also enforces on the real
        // obs-run trace: at least 5x smaller than JSONL.
        assert!(
            r.ratio() >= 5.0,
            "compression ratio {:.2} below the 5x bar ({} -> {} bytes)",
            r.ratio(),
            r.jsonl_bytes,
            r.twb_bytes
        );
    }

    #[test]
    fn byte_totals_are_a_pure_function_of_the_seed() {
        let a = run(11, 300);
        let b = run(11, 300);
        assert_eq!(a.events, b.events);
        assert_eq!(a.jsonl_bytes, b.jsonl_bytes);
        assert_eq!(a.twb_bytes, b.twb_bytes);
    }
}
