//! **speed-bench** — the hot-path round-engine benchmark: the same
//! inventory workload driven through the reference (scalar) and batched
//! (SoA + channel-cache) engines back to back, with the report streams
//! asserted bit-identical before any timing is reported.
//!
//! This is the harness-level companion to the Criterion microbench
//! (`benches/round_hotpath.rs`): it times whole `Reader` executions —
//! rounds, channel observations, event logging — rather than the bare
//! round loop, and it runs under `repro` so the wall numbers land in a
//! `BenchSnapshot` and `bench-history/` next to every other figure.
//! `ci.sh --speed` records it alongside the gated `obs-run` comparison.

use crate::experiments::common::random_epcs;
use tagwatch_reader::{EngineKind, Reader, ReaderConfig, RoSpec};
use tagwatch_scene::presets;
use tagwatch_telemetry::wall_now;

/// One engine's timed leg.
#[derive(Debug, Clone, Copy)]
pub struct EngineLeg {
    /// Engine the leg ran on.
    pub engine: EngineKind,
    /// Host wall time consumed, seconds.
    pub wall_seconds: f64,
    /// Inventory rounds executed.
    pub rounds: usize,
    /// Tag reports delivered.
    pub reports: usize,
}

impl EngineLeg {
    /// Rounds per wall second.
    pub fn rounds_per_second(&self) -> f64 {
        self.rounds as f64 / self.wall_seconds.max(1e-9)
    }

    /// Reports per wall second.
    pub fn reports_per_second(&self) -> f64 {
        self.reports as f64 / self.wall_seconds.max(1e-9)
    }
}

/// Results of one speed-bench run (reference leg, batched leg, and the
/// proof that they did identical simulated work).
#[derive(Debug, Clone, Copy)]
pub struct SpeedBench {
    /// Population size.
    pub tags: usize,
    /// Mobile tags among them.
    pub movers: usize,
    /// Simulated air time per leg, seconds.
    pub sim_seconds: f64,
    /// The scalar reference engine's leg.
    pub reference: EngineLeg,
    /// The batched engine's leg.
    pub batched: EngineLeg,
}

impl SpeedBench {
    /// Wall-clock speedup of the batched engine over the reference.
    pub fn speedup(&self) -> f64 {
        self.reference.wall_seconds / self.batched.wall_seconds.max(1e-9)
    }
}

/// Runs `sim_seconds` of turntable inventory (`n_tags` tags, `n_mobile`
/// on the platter) once per engine and times each leg. Before timing is
/// trusted, the two report streams are asserted bit-identical — a run
/// where the engines diverge panics rather than reporting a meaningless
/// speedup.
pub fn run(seed: u64, n_tags: usize, n_mobile: usize, sim_seconds: f64) -> SpeedBench {
    let leg = |engine: EngineKind| {
        let scene = presets::turntable(n_tags, n_mobile, seed);
        let epcs = random_epcs(n_tags, seed ^ 0x5BE);
        let cfg = ReaderConfig {
            engine,
            ..ReaderConfig::default()
        };
        let mut reader = Reader::new(scene, &epcs, cfg, seed ^ 0x5BF);
        let spec = RoSpec::read_all(1, vec![1]);
        let mut reports = Vec::new();
        let start = wall_now();
        while reader.now() < sim_seconds {
            reader
                .execute_into(&spec, &mut reports)
                .expect("read-all spec is valid"); // lint:allow(panic-policy): harness-built spec is valid by construction
        }
        let wall = start.elapsed_seconds();
        let rounds = reader.events.len() + reader.events.dropped();
        (
            EngineLeg {
                engine,
                wall_seconds: wall,
                rounds,
                reports: reports.len(),
            },
            reports,
        )
    };
    let (reference, reports_ref) = leg(EngineKind::Reference);
    let (batched, reports_bat) = leg(EngineKind::Batched);
    assert_eq!(
        reports_ref, reports_bat,
        "engine divergence: the batched engine must be bit-identical to the reference"
    );
    assert_eq!(reference.rounds, batched.rounds);
    SpeedBench {
        tags: n_tags,
        movers: n_mobile,
        sim_seconds,
        reference,
        batched,
    }
}

impl std::fmt::Display for SpeedBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "speed-bench — round-engine hot path ({} tags / {} mobile, {:.0} s simulated per leg)",
            self.tags, self.movers, self.sim_seconds
        )?;
        writeln!(
            f,
            "  report streams bit-identical across engines ({} reports, {} rounds)",
            self.batched.reports, self.batched.rounds
        )?;
        for leg in [&self.reference, &self.batched] {
            writeln!(
                f,
                "  {:<9} {:>8.3} s wall   {:>10.0} rounds/s   {:>10.0} reports/s",
                format!("{:?}", leg.engine).to_lowercase(),
                leg.wall_seconds,
                leg.rounds_per_second(),
                leg.reports_per_second()
            )?;
        }
        writeln!(f, "  batched speedup: {:.2}x", self.speedup())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legs_agree_and_time_something() {
        // Tiny sim window: correctness of the harness, not the speedup,
        // is what a unit test can assert.
        let r = run(11, 10, 1, 2.0);
        assert_eq!(r.reference.reports, r.batched.reports);
        assert_eq!(r.reference.rounds, r.batched.rounds);
        assert!(r.batched.rounds > 0);
        assert!(r.reference.wall_seconds > 0.0);
        assert!(r.batched.wall_seconds > 0.0);
    }
}
