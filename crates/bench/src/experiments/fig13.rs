//! **E6 / Fig. 13** — detection sensitivity versus displacement: move a
//! trained-on tag by 1–5 cm in a random direction and measure how often
//! each detector notices, over 20 trials per displacement (the paper's
//! protocol). Phase detects centimetres; RSS barely reacts below ~5 cm.

use crate::experiments::common::{random_epcs, single_channel_reader};
use tagwatch::prelude::*;
use tagwatch_reader::RoSpec;
use tagwatch_scene::presets;

/// One row: success rates at a displacement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig13Row {
    /// Displacement in metres.
    pub displacement: f64,
    /// Detection rate with Phase-MoG.
    pub phase_rate: f64,
    /// Detection rate with RSS-MoG.
    pub rss_rate: f64,
}

/// Experiment result.
#[derive(Debug, Clone)]
pub struct Fig13 {
    pub rows: Vec<Fig13Row>,
    pub trials: usize,
}

/// Runs one trial: train on `train_s` seconds of stationary readings,
/// displace, and report whether any of the next second's readings is
/// motion evidence.
fn trial(seed: u64, displacement: f64, use_phase: bool, train_s: f64) -> bool {
    let t_step = train_s;
    let scene = presets::step_displacement(displacement, t_step, seed);
    let epcs = random_epcs(1, seed ^ 0x13A);
    let mut reader = single_channel_reader(scene, &epcs, seed ^ 0x13B);
    let spec = RoSpec::read_all(1, vec![1]);

    let mut det: Box<dyn Detector + Send> = if use_phase {
        Box::new(MogDetector::phase())
    } else {
        Box::new(MogDetector::rss())
    };

    // Train on the stationary phase.
    let train = reader.run_for(&spec, train_s).expect("valid spec"); // lint:allow(panic-policy): harness-built spec is valid by construction
    for r in &train {
        det.observe(&r.rf);
    }
    // Observe for 1 s after the step.
    let test = reader.run_for(&spec, 1.0).expect("valid spec"); // lint:allow(panic-policy): harness-built spec is valid by construction
    test.iter()
        .filter(|r| r.rf.t >= t_step)
        .any(|r| det.observe(&r.rf))
}

/// Runs the sweep. 20 trials per displacement by default (`trials`).
pub fn run(seed: u64, trials: usize) -> Fig13 {
    let displacements = [0.01, 0.02, 0.03, 0.04, 0.05];
    // A static tag at ~50 Hz needs ~220 reads to establish its mode; 8 s
    // of training gives a comfortable margin.
    let train_s = 8.0;
    let rows = displacements
        .iter()
        .map(|&d| {
            let mut phase_hits = 0usize;
            let mut rss_hits = 0usize;
            for k in 0..trials {
                let s = seed ^ ((d * 1000.0) as u64) << 16 ^ (k as u64) << 4;
                if trial(s, d, true, train_s) {
                    phase_hits += 1;
                }
                if trial(s, d, false, train_s) {
                    rss_hits += 1;
                }
            }
            Fig13Row {
                displacement: d,
                phase_rate: phase_hits as f64 / trials as f64,
                rss_rate: rss_hits as f64 / trials as f64,
            }
        })
        .collect();
    Fig13 { rows, trials }
}

impl std::fmt::Display for Fig13 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 13 — detection sensitivity vs displacement ({} trials each)",
            self.trials
        )?;
        writeln!(
            f,
            "{:>10} {:>12} {:>12}",
            "disp (cm)", "phase rate", "RSS rate"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>10.0} {:>12.2} {:>12.2}",
                r.displacement * 100.0,
                r.phase_rate,
                r.rss_rate
            )?;
        }
        writeln!(
            f,
            "paper anchors: phase ≈ 0.87 @ 2 cm, ≈ 0.99 @ 3 cm; RSS ≈ 0.09 @ 2 cm, ≈ 0.76 @ 5 cm"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_beats_rss_and_saturates() {
        let r = run(7, 6);
        // Phase is near-certain from 2 cm on.
        let at2 = r.rows[1];
        let at3 = r.rows[2];
        assert!(at2.phase_rate >= 0.6, "phase @2cm = {}", at2.phase_rate);
        assert!(at3.phase_rate >= 0.8, "phase @3cm = {}", at3.phase_rate);
        // RSS trails phase at every displacement.
        for row in &r.rows {
            assert!(
                row.rss_rate <= row.phase_rate + 0.2,
                "RSS unexpectedly strong at {:?}",
                row
            );
        }
        // RSS is weak at small displacements.
        assert!(
            r.rows[0].rss_rate <= 0.5,
            "RSS @1cm = {}",
            r.rows[0].rss_rate
        );
    }
}
