//! **E11 / Fig. 18** — the headline result: IRR gain of rate-adaptive
//! reading over reading-all, versus the fraction of mobile tags.
//!
//! For each mobile percentage the experiment runs the *full* two-phase
//! system (Phase-I GMM detection included — unlike Fig. 15/16 no labels
//! are given) on turntable scenes of several population sizes, measures
//! each true mover's IRR under Tagwatch / naive scheduling / read-all,
//! and aggregates the per-mover gain ratios.
//!
//! The scope guard (`mobile_ceiling`) is lifted to 100% here so the raw
//! scheduling behaviour is visible at 20% mobile — with the production
//! default of 0.2 the controller would simply fall back to read-all,
//! which is the paper's §3 recommendation for that regime.

use crate::experiments::common::{random_epcs, single_channel_reader, warm_up};
use tagwatch::prelude::*;
use tagwatch_scene::presets;

/// Aggregated gains for one mobile percentage.
#[derive(Debug, Clone)]
pub struct Fig18Row {
    /// Fraction of mobile tags (0.05 = 5%).
    pub pct_mobile: f64,
    /// Median per-mover gain, Tagwatch.
    pub tagwatch_median: f64,
    /// 90th-percentile gain, Tagwatch.
    pub tagwatch_p90: f64,
    /// Standard deviation of Tagwatch gains.
    pub tagwatch_std: f64,
    /// Median per-mover gain, naive scheduling.
    pub naive_median: f64,
    /// Raw per-mover Tagwatch gains.
    pub samples: usize,
}

/// Experiment result.
#[derive(Debug, Clone)]
pub struct Fig18 {
    pub rows: Vec<Fig18Row>,
    pub populations: Vec<usize>,
}

/// Per-mover IRRs over the measurement window under one scheduling mode.
///
/// Detection warm-up always runs under read-all scheduling so every
/// scheme's immobility models get the same training diet — otherwise the
/// naive scheme's slow Phase II would starve its own detector, conflating
/// scheduling cost with detection quality. After warm-up the controller
/// switches to the scheme under test and runs two settling cycles before
/// measurement begins.
fn mover_irrs(
    seed: u64,
    n: usize,
    n_mobile: usize,
    mode: SchedulingMode,
    warm: usize,
    cycles: usize,
) -> Vec<f64> {
    let scene = presets::turntable(n, n_mobile, seed);
    let epcs = random_epcs(n, seed ^ 0x18A);
    let mut reader = single_channel_reader(scene, &epcs, seed ^ 0x18B);

    let mut cfg = TagwatchConfig::default().with_scheduling(SchedulingMode::Tagwatch);
    cfg.mobile_ceiling = 1.0;
    let mut ctl = Controller::new(cfg);
    warm_up(&mut ctl, &mut reader, warm);
    ctl.set_scheduling(mode);
    for _ in 0..2 {
        ctl.run_cycle(&mut reader).expect("valid config"); // lint:allow(panic-policy): harness-built config is valid by construction
    }

    let t0 = reader.now();
    let mut reads = vec![0usize; n];
    for _ in 0..cycles {
        let rep = ctl.run_cycle(&mut reader).expect("valid config"); // lint:allow(panic-policy): harness-built config is valid by construction
        for r in rep.phase1.iter().chain(rep.phase2.iter()) {
            reads[r.tag_idx] += 1;
        }
    }
    let elapsed = reader.now() - t0;
    (0..n_mobile).map(|i| reads[i] as f64 / elapsed).collect()
}

/// Runs the sweep. `quick` restricts populations and repetitions.
pub fn run(seed: u64, quick: bool) -> Fig18 {
    let percents = [0.05, 0.10, 0.15, 0.20];
    let populations: Vec<usize> = if quick {
        vec![50, 100]
    } else {
        vec![50, 100, 200, 400]
    };
    let seeds: Vec<u64> = if quick {
        vec![seed]
    } else {
        vec![seed, seed ^ 0xBEEF]
    };
    let cycles = if quick { 6 } else { 12 };
    let warm = if quick { 50 } else { 90 };

    let mut rows = Vec::new();
    for &pct in &percents {
        // One worker per (population, seed) pair.
        let mut tagwatch_gains: Vec<f64> = Vec::new();
        let mut naive_gains: Vec<f64> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for &n in &populations {
                for &s in &seeds {
                    handles.push(scope.spawn(move || {
                        let n_mobile = ((n as f64 * pct).round() as usize).max(1);
                        let base =
                            mover_irrs(s, n, n_mobile, SchedulingMode::ReadAll, warm, cycles);
                        let tw = mover_irrs(s, n, n_mobile, SchedulingMode::Tagwatch, warm, cycles);
                        let nv = mover_irrs(s, n, n_mobile, SchedulingMode::Naive, warm, cycles);
                        let mut tg = Vec::new();
                        let mut ng = Vec::new();
                        for i in 0..n_mobile {
                            if base[i] > 0.0 {
                                tg.push(tw[i] / base[i]);
                                ng.push(nv[i] / base[i]);
                            }
                        }
                        (tg, ng)
                    }));
                }
            }
            for h in handles {
                let (tg, ng) = h.join().expect("worker panicked"); // lint:allow(panic-policy): a worker panic should abort the experiment loudly
                tagwatch_gains.extend(tg);
                naive_gains.extend(ng);
            }
        });

        rows.push(Fig18Row {
            pct_mobile: pct,
            tagwatch_median: tagwatch::metrics::median(&tagwatch_gains),
            tagwatch_p90: tagwatch::metrics::percentile(&tagwatch_gains, 90.0),
            tagwatch_std: tagwatch::metrics::std_dev(&tagwatch_gains),
            naive_median: tagwatch::metrics::median(&naive_gains),
            samples: tagwatch_gains.len(),
        });
    }
    Fig18 { rows, populations }
}

impl std::fmt::Display for Fig18 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 18 — IRR gain of mobile tags vs percent mobile (populations {:?})",
            self.populations
        )?;
        writeln!(
            f,
            "{:>6} {:>14} {:>12} {:>12} {:>13} {:>8}",
            "%mob", "Tagwatch p50", "p90", "std", "naive p50", "samples"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>5.0}% {:>13.2}x {:>11.2}x {:>11.2}x {:>12.2}x {:>8}",
                r.pct_mobile * 100.0,
                r.tagwatch_median,
                r.tagwatch_p90,
                r.tagwatch_std,
                r.naive_median,
                r.samples
            )?;
        }
        writeln!(
            f,
            "paper anchors: 5% → 3.2x median (naive 2.6x); 10% → 1.9x (naive ≤1.5x); 20% → ~1x (naive ~0.8x)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gains_decrease_with_mobile_fraction_and_tagwatch_wins() {
        let r = run(7, true);
        assert_eq!(r.rows.len(), 4);
        // Substantial gain at 5%.
        assert!(
            r.rows[0].tagwatch_median > 1.8,
            "5% gain {}",
            r.rows[0].tagwatch_median
        );
        // Monotone-ish decay: 20% gain well below 5% gain.
        assert!(
            r.rows[3].tagwatch_median < r.rows[0].tagwatch_median * 0.8,
            "no decay: {:?}",
            r.rows.iter().map(|x| x.tagwatch_median).collect::<Vec<_>>()
        );
        // Tagwatch ≥ naive at every point.
        for row in &r.rows {
            assert!(
                row.tagwatch_median >= row.naive_median * 0.95,
                "naive beats Tagwatch at {}%: {} vs {}",
                row.pct_mobile * 100.0,
                row.tagwatch_median,
                row.naive_median
            );
        }
    }
}
