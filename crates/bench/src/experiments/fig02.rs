//! **E1 / Fig. 2** — Individual reading rate vs population size: the
//! simulated COTS reader against the paper's closed-form model
//! `Λ(n) = 1/(τ0 + n·e·τ̄·ln n)`, plus a least-squares re-fit of (τ0, τ̄)
//! from the simulated costs (the paper's §2.3 parameter estimation).

use crate::experiments::common::{hopping_reader, random_epcs};
use tagwatch::prelude::*;
use tagwatch_reader::RoSpec;
use tagwatch_scene::presets;

/// One row of the Fig. 2 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Row {
    /// Population size.
    pub n: usize,
    /// Simulated IRR in Hz (mean over rounds and repetitions).
    pub irr_sim: f64,
    /// Model IRR `Λ(n)` with the paper's fitted parameters.
    pub irr_model: f64,
    /// Mean simulated inventory cost `C(n)` in seconds.
    pub cost_sim: f64,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct Fig2 {
    pub rows: Vec<Fig2Row>,
    /// (τ0, τ̄) fitted to the simulated costs.
    pub fitted: CostModel,
}

/// Runs the experiment. `reps` repetitions per population size (the paper
/// uses 50).
pub fn run(seed: u64, reps: usize) -> Fig2 {
    let model = CostModel::paper();
    let sizes = [1usize, 2, 5, 10, 15, 20, 25, 30, 35, 40];
    let mut rows = Vec::new();
    let mut fit_samples: Vec<(usize, f64)> = Vec::new();

    for &n in &sizes {
        let mut total_cost = 0.0;
        let mut total_rounds = 0usize;
        for rep in 0..reps {
            let scene = presets::random_room(n, seed ^ (rep as u64) << 8 ^ n as u64);
            let epcs = random_epcs(n, seed ^ 0xE9C ^ (rep as u64) << 16 ^ n as u64);
            let mut reader = hopping_reader(scene, &epcs, seed ^ 0x5EED ^ rep as u64);
            let spec = RoSpec::read_all(1, vec![1]);
            // Warm-up rounds let the reader's link-rate adaptation settle
            // (a real R420's Autoset does the same before steady state).
            for _ in 0..4 {
                reader.execute(&spec).expect("valid spec"); // lint:allow(panic-policy): harness-built spec is valid by construction
            }
            reader.events.take();
            let measured_rounds = 8;
            for _ in 0..measured_rounds {
                reader.execute(&spec).expect("valid spec"); // lint:allow(panic-policy): harness-built spec is valid by construction
            }
            for ev in reader.events.take() {
                total_cost += ev.duration();
                total_rounds += 1;
            }
        }
        let mean_cost = total_cost / total_rounds as f64;
        fit_samples.push((n, mean_cost));
        rows.push(Fig2Row {
            n,
            irr_sim: 1.0 / mean_cost,
            irr_model: model.irr(n),
            cost_sim: mean_cost,
        });
    }

    Fig2 {
        rows,
        fitted: CostModel::fit(&fit_samples).expect("≥2 sizes"), // lint:allow(panic-policy): fit_samples holds >= 2 sizes by construction
    }
}

impl std::fmt::Display for Fig2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 2 — IRR vs number of tags (model: τ0 = 19 ms, τ̄ = 0.18 ms)"
        )?;
        writeln!(
            f,
            "{:>4} {:>12} {:>12} {:>12}",
            "n", "IRR sim(Hz)", "IRR model", "C(n) sim(ms)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>4} {:>12.1} {:>12.1} {:>12.1}",
                r.n,
                r.irr_sim,
                r.irr_model,
                r.cost_sim * 1e3
            )?;
        }
        writeln!(
            f,
            "fitted from simulation: τ0 = {:.1} ms, τ̄ = {:.3} ms  (paper: 19 ms, 0.18 ms)",
            self.fitted.tau0 * 1e3,
            self.fitted.tau_bar * 1e3
        )?;
        let drop = 1.0 - self.rows.last().unwrap().irr_sim / self.rows[0].irr_sim; // lint:allow(panic-policy): rows is populated by the sweep above
        writeln!(
            f,
            "IRR drop n=1 → n=40: {:.0}%  (paper: ≈84%)",
            drop * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let result = run(7, 2);
        // Monotone decreasing IRR.
        for w in result.rows.windows(2) {
            assert!(
                w[1].irr_sim < w[0].irr_sim,
                "IRR must fall with n: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        // Endpoints in the paper's bands.
        let first = &result.rows[0];
        let last = result.rows.last().unwrap();
        assert!(
            (35.0..70.0).contains(&first.irr_sim),
            "Λ(1) = {}",
            first.irr_sim
        );
        assert!(
            (6.0..18.0).contains(&last.irr_sim),
            "Λ(40) = {}",
            last.irr_sim
        );
        // ~84% drop, generous band.
        let drop = 1.0 - last.irr_sim / first.irr_sim;
        assert!((0.65..0.95).contains(&drop), "drop {drop}");
        // The re-fit lands near the paper's parameters.
        assert!(
            (10e-3..30e-3).contains(&result.fitted.tau0),
            "τ0 {}",
            result.fitted.tau0
        );
        assert!(
            (0.1e-3..0.4e-3).contains(&result.fitted.tau_bar),
            "τ̄ {}",
            result.fitted.tau_bar
        );
    }
}
