//! **obs-run** — the observability reference workload: a turntable scene
//! (a few mobile tags riding the platter among a stationary majority)
//! driven through the full two-phase controller with the global telemetry
//! handle capturing everything.
//!
//! Unlike the figure experiments, this run exists *for* the trace: it
//! annotates ground truth (`truth.mobile` tag events for the tags the
//! scene actually moves) so `obs report` can score the mobile/stationary
//! detector, and it is the workload `ci.sh --obs` records with
//! `--telemetry` + `--bench-json` and gates against the committed
//! `BENCH_1.json` baseline. Deterministic under a fixed seed.

use crate::experiments::common::random_epcs;
use tagwatch::prelude::*;
use tagwatch_fault::{FaultPlan, PlanInjector};
use tagwatch_reader::{EngineKind, Reader, ReaderConfig};
use tagwatch_scene::presets;
use tagwatch_telemetry::Telemetry;

/// Summary of one obs-run (printed; the interesting output is the trace).
#[derive(Debug, Clone)]
pub struct ObsRun {
    pub tags: usize,
    pub movers: usize,
    pub cycles: usize,
    pub sim_seconds: f64,
    pub census_mean: f64,
    pub phase1_reports: usize,
    pub phase2_reports: usize,
    pub selective_cycles: usize,
}

/// Runs `cycles` controller cycles over `presets::turntable(n_tags,
/// n_mobile, seed)`, emitting `truth.mobile` annotations for the mobile
/// tags before the first cycle. Decode failures are injected with
/// probability `decode_fail_prob` (0 for the reference workload; the
/// regression-injection integration test raises it to degrade IRR).
/// With `faults`, a `tagwatch-fault` plan injector rides along — the
/// `repro --faults <plan> obs-run` path. `engine` selects the round
/// engine (`repro --engine reference|batched`); both produce
/// byte-identical sim-side observables, so every registry counter and
/// trace is engine-invariant — only the wall clock differs.
pub fn run(
    seed: u64,
    n_tags: usize,
    n_mobile: usize,
    cycles: usize,
    decode_fail_prob: f64,
    faults: Option<&FaultPlan>,
    engine: EngineKind,
) -> ObsRun {
    let scene = presets::turntable(n_tags, n_mobile, seed);
    let epcs = random_epcs(n_tags, seed ^ 0x0B5);
    let cfg = ReaderConfig {
        decode_fail_prob,
        engine,
        ..ReaderConfig::default()
    };
    let mut reader = Reader::new(scene, &epcs, cfg, seed ^ 0x0B6);
    if let Some(plan) = faults {
        reader.set_fault_injector(Box::new(PlanInjector::new(plan.clone())));
    }

    let tel = Telemetry::global().clone();
    // Ground truth before any cycle: turntable puts the movers at indices
    // 0..n_mobile.
    for epc in &epcs[..n_mobile] {
        tel.tag_event("truth.mobile", epc.bits(), 0.0);
    }

    let mut ctl = Controller::new(TagwatchConfig::default()).with_telemetry(tel);
    let reports = ctl.run_cycles(&mut reader, cycles).expect("valid config"); // lint:allow(panic-policy): harness-built config is valid by construction

    let census_total: usize = reports.iter().map(|r| r.census.len()).sum();
    ObsRun {
        tags: n_tags,
        movers: n_mobile,
        cycles: reports.len(),
        sim_seconds: reports.last().map_or(0.0, |r| r.t_end),
        census_mean: census_total as f64 / reports.len().max(1) as f64,
        phase1_reports: reports.iter().map(|r| r.phase1.len()).sum(),
        phase2_reports: reports.iter().map(|r| r.phase2.len()).sum(),
        selective_cycles: reports
            .iter()
            .filter(|r| r.mode == ScheduleMode::Selective)
            .count(),
    }
}

impl std::fmt::Display for ObsRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "obs-run — telemetry reference workload (turntable, {} tags / {} mobile)",
            self.tags, self.movers
        )?;
        writeln!(
            f,
            "  {} cycles over {:.1} s simulated; census mean {:.1} tags",
            self.cycles, self.sim_seconds, self.census_mean
        )?;
        writeln!(
            f,
            "  {} phase1 + {} phase2 reports; {} cycles scheduled selectively",
            self.phase1_reports, self.phase2_reports, self.selective_cycles
        )?;
        writeln!(f, "  analyze the trace with: obs report <telemetry.jsonl>")
    }
}

#[cfg(test)]
mod tests {
    // Engine equivalence is asserted exactly (bit-reproducibility is the
    // claim); approximate comparison would weaken it.
    #![allow(clippy::float_cmp)]

    use super::*;

    #[test]
    fn obs_run_is_deterministic_and_reads_everyone() {
        let a = run(7, 12, 1, 6, 0.0, None, EngineKind::Batched);
        let b = run(7, 12, 1, 6, 0.0, None, EngineKind::Batched);
        assert_eq!(a.phase1_reports, b.phase1_reports);
        assert_eq!(a.phase2_reports, b.phase2_reports);
        assert_eq!(a.cycles, 6);
        assert!(a.sim_seconds > 0.0);
        // Phase I census should be reaching most of the population.
        assert!(
            a.census_mean >= 12.0 * 0.75,
            "census mean {}",
            a.census_mean
        );
    }

    #[test]
    fn engines_agree_on_every_observable() {
        // The workload-level equivalence check: the full two-phase
        // controller over either engine lands on identical report counts,
        // cycle counts, and simulated time.
        let reference = run(7, 12, 1, 6, 0.0, None, EngineKind::Reference);
        let batched = run(7, 12, 1, 6, 0.0, None, EngineKind::Batched);
        assert_eq!(reference.phase1_reports, batched.phase1_reports);
        assert_eq!(reference.phase2_reports, batched.phase2_reports);
        assert_eq!(reference.selective_cycles, batched.selective_cycles);
        assert_eq!(reference.sim_seconds, batched.sim_seconds);
    }

    #[test]
    fn decode_failures_cost_reports() {
        let clean = run(7, 12, 1, 6, 0.0, None, EngineKind::Batched);
        let lossy = run(7, 12, 1, 6, 0.5, None, EngineKind::Batched);
        let total = |r: &ObsRun| r.phase1_reports + r.phase2_reports;
        assert!(
            total(&lossy) < total(&clean),
            "lossy {} vs clean {}",
            total(&lossy),
            total(&clean)
        );
    }
}
