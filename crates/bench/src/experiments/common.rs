//! Shared experiment plumbing: population builders, warm-up helpers, and
//! small table-printing utilities used by every figure.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::prelude::*;
use tagwatch_reader::{Reader, ReaderConfig};
use tagwatch_rf::ChannelPlan;
use tagwatch_scene::Scene;

/// Default experiment seed (override with `--seed`).
pub const DEFAULT_SEED: u64 = 7;

/// Random EPCs for a population (the paper deploys "tags with random
/// EPCs", §7.2).
pub fn random_epcs(n: usize, seed: u64) -> Vec<Epc> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Epc::random(&mut rng)).collect()
}

/// A reader over `scene` with a single-frequency plan — detection and
/// tracking experiments use one channel so model warm-up matches the
/// paper's timescales (its 2 s dwells keep whole experiments on one
/// channel; see EXPERIMENTS.md).
pub fn single_channel_reader(scene: Scene, epcs: &[Epc], seed: u64) -> Reader {
    let cfg = ReaderConfig {
        channel_plan: ChannelPlan::single(922.5e6),
        ..ReaderConfig::default()
    };
    Reader::new(scene, epcs, cfg, seed)
}

/// A reader with the full 16-channel China-band plan (IRR experiments,
/// where frequency diversity matters but detection does not).
pub fn hopping_reader(scene: Scene, epcs: &[Epc], seed: u64) -> Reader {
    Reader::new(scene, epcs, ReaderConfig::default(), seed)
}

/// Runs warm-up cycles until the controller settles into selective
/// scheduling of a *minority* of tags (immobility models established —
/// early cycles treat every unknown tag as mobile, so "selective over
/// everyone" does not count), up to `max_cycles`. Returns the number of
/// warm-up cycles consumed.
pub fn warm_up(ctl: &mut Controller, reader: &mut Reader, max_cycles: usize) -> usize {
    let mut stable = 0usize;
    for cycle in 0..max_cycles {
        let rep = ctl.run_cycle(reader).expect("valid config"); // lint:allow(panic-policy): harness-built config is valid by construction
        let minority = rep.targets.len() * 100 <= rep.census.len().max(1) * 35;
        if rep.mode == ScheduleMode::Selective && minority {
            stable += 1;
            if stable >= 3 {
                return cycle + 1;
            }
        } else {
            stable = 0;
        }
    }
    max_cycles
}

/// Formats a row of f64 cells with a label.
pub fn fmt_row(label: &str, cells: &[f64], width: usize, precision: usize) -> String {
    let mut s = format!("{label:<24}");
    for c in cells {
        s.push_str(&format!(" {c:>width$.precision$}"));
    }
    s
}

/// Prints a rule line sized for `cols` numeric columns.
pub fn rule(cols: usize, width: usize) -> String {
    "-".repeat(24 + cols * (width + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagwatch_scene::presets;

    #[test]
    fn epcs_are_unique_and_seeded() {
        let a = random_epcs(50, 1);
        let b = random_epcs(50, 1);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 50);
    }

    #[test]
    fn warm_up_converges_on_simple_scene() {
        let scene = presets::turntable(20, 1, 3);
        let epcs = random_epcs(20, 4);
        let mut reader = single_channel_reader(scene, &epcs, 5);
        let mut cfg = TagwatchConfig {
            phase2_len: 1.0,
            ..TagwatchConfig::default()
        };
        cfg.gmm.alpha = 0.01;
        let mut ctl = Controller::new(cfg);
        let used = warm_up(&mut ctl, &mut reader, 40);
        assert!(used < 40, "warm-up did not converge in {used} cycles");
    }

    #[test]
    fn formatting_helpers() {
        let row = fmt_row("x", &[1.5, 2.25], 8, 2);
        assert!(row.contains("1.50"));
        assert!(row.contains("2.25"));
        assert_eq!(rule(2, 8).len(), 24 + 2 * 9);
    }
}
