//! CSV rendering of experiment results — plotting-friendly series for
//! every curve-shaped figure, written by `repro --csv <dir>`.

use crate::experiments::{fig02, fig12, fig13, fig14, fig15, fig18};

/// Fig. 2: `n,irr_sim_hz,irr_model_hz,cost_sim_ms`.
pub fn fig2(result: &fig02::Fig2) -> String {
    let mut out = String::from("n,irr_sim_hz,irr_model_hz,cost_sim_ms\n");
    for r in &result.rows {
        out.push_str(&format!(
            "{},{:.3},{:.3},{:.3}\n",
            r.n,
            r.irr_sim,
            r.irr_model,
            r.cost_sim * 1e3
        ));
    }
    out
}

/// Fig. 12: `detector,threshold,tpr,fpr`.
pub fn fig12(result: &fig12::Fig12) -> String {
    let mut out = String::from("detector,threshold,tpr,fpr\n");
    for curve in &result.curves {
        for p in &curve.points {
            out.push_str(&format!(
                "{},{},{:.4},{:.4}\n",
                curve.name, p.threshold, p.tpr, p.fpr
            ));
        }
    }
    out
}

/// Fig. 13: `displacement_cm,phase_rate,rss_rate`.
pub fn fig13(result: &fig13::Fig13) -> String {
    let mut out = String::from("displacement_cm,phase_rate,rss_rate\n");
    for r in &result.rows {
        out.push_str(&format!(
            "{:.0},{:.3},{:.3}\n",
            r.displacement * 100.0,
            r.phase_rate,
            r.rss_rate
        ));
    }
    out
}

/// Fig. 14: `train_s,train_readings,accuracy`.
pub fn fig14(result: &fig14::Fig14) -> String {
    let mut out = String::from("train_s,train_readings,accuracy\n");
    for p in &result.points {
        out.push_str(&format!(
            "{:.2},{},{:.4}\n",
            p.train_s, p.train_readings, p.accuracy
        ));
    }
    out
}

/// Figs. 15/16: `tag,is_target,irr_read_all,irr_tagwatch,irr_naive`.
pub fn feasibility(result: &fig15::Feasibility) -> String {
    let mut out = String::from("tag,is_target,irr_read_all,irr_tagwatch,irr_naive\n");
    for r in &result.rows {
        out.push_str(&format!(
            "{},{},{:.3},{:.3},{:.3}\n",
            r.tag, r.is_target as u8, r.irr_read_all, r.irr_tagwatch, r.irr_naive
        ));
    }
    out
}

/// Fig. 18: `pct_mobile,tagwatch_p50,tagwatch_p90,tagwatch_std,naive_p50,samples`.
pub fn fig18(result: &fig18::Fig18) -> String {
    let mut out =
        String::from("pct_mobile,tagwatch_p50,tagwatch_p90,tagwatch_std,naive_p50,samples\n");
    for r in &result.rows {
        out.push_str(&format!(
            "{:.0},{:.3},{:.3},{:.3},{:.3},{}\n",
            r.pct_mobile * 100.0,
            r.tagwatch_median,
            r.tagwatch_p90,
            r.tagwatch_std,
            r.naive_median,
            r.samples
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_csv_shape() {
        let result = fig02::run(7, 1);
        let csv = fig2(&result);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[0], "n,irr_sim_hz,irr_model_hz,cost_sim_ms");
        assert_eq!(lines.len(), result.rows.len() + 1);
        // Every data row has 4 comma-separated numeric fields.
        for line in &lines[1..] {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 4, "{line}");
            for f in fields {
                f.parse::<f64>().expect("numeric CSV field");
            }
        }
    }

    #[test]
    fn fig13_csv_shape() {
        let result = fig13::run(7, 2);
        let csv = fig13(&result);
        assert!(csv.starts_with("displacement_cm,"));
        assert_eq!(csv.trim().lines().count(), result.rows.len() + 1);
    }
}
