//! **E7 / Fig. 14** — the learning curve: how much stationary-tag history
//! does the mixture need before new readings match its immobility models?
//!
//! Protocol (§7.1): keep a tag stationary with a person walking around;
//! collect one minute of readings; train on the first `T` only; score the
//! next 100 ms as "correct" when a test reading is classified as
//! consistent with *established* immobility. (The paper phrases the
//! criterion as "matches one of the immobility Gaussian models"; in this
//! implementation mere matching is instantaneous by construction — any
//! first observation spawns a covering mode — so the meaningful learning
//! timescale is a mode accumulating enough dwell weight to count as
//! immobility evidence, which is also what Phase I's verdicts use.)

use crate::experiments::common::{random_epcs, single_channel_reader};
use tagwatch::prelude::*;
use tagwatch_reader::{RoSpec, TagReport};
use tagwatch_scene::presets;

/// One point of the learning curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig14Point {
    /// Training-history length in seconds.
    pub train_s: f64,
    /// Fraction of test readings matching a learned model.
    pub accuracy: f64,
    /// Number of training readings that length contains.
    pub train_readings: usize,
}

/// Experiment result.
#[derive(Debug, Clone)]
pub struct Fig14 {
    pub points: Vec<Fig14Point>,
}

/// Runs the experiment: averaged over `reps` independent minutes.
pub fn run(seed: u64, reps: usize) -> Fig14 {
    let train_lengths = [
        0.05, 0.1, 0.2, 0.4, 0.7, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0,
    ];
    let mut acc = vec![(0.0f64, 0usize); train_lengths.len()];

    for rep in 0..reps {
        // One stationary tag, one walking person.
        let scene = presets::office_monitoring(1, 1, seed ^ (rep as u64) << 8);
        let epcs = random_epcs(1, seed ^ 0x14A ^ rep as u64);
        let mut reader = single_channel_reader(scene, &epcs, seed ^ 0x14B ^ rep as u64);
        let reports: Vec<TagReport> = reader
            .run_for(&RoSpec::read_all(1, vec![1]), 60.0)
            .expect("valid spec"); // lint:allow(panic-policy): harness-built spec is valid by construction
        let t0 = reports.first().map_or(0.0, |r| r.rf.t);

        for (i, &train_s) in train_lengths.iter().enumerate() {
            let mut gmm = Gmm::phase(GmmConfig::phase_defaults());
            let mut n_train = 0usize;
            for r in reports.iter().filter(|r| r.rf.t - t0 < train_s) {
                gmm.observe(r.rf.phase);
                n_train += 1;
            }
            // Test on the subsequent 100 ms (the paper's protocol); widen
            // to the next 1 s for sample size when 100 ms holds < 5 reads.
            let mut test: Vec<&TagReport> = reports
                .iter()
                .filter(|r| {
                    let dt = r.rf.t - t0 - train_s;
                    (0.0..0.1).contains(&dt)
                })
                .collect();
            if test.len() < 5 {
                test = reports
                    .iter()
                    .filter(|r| {
                        let dt = r.rf.t - t0 - train_s;
                        (0.0..1.0).contains(&dt)
                    })
                    .collect();
            }
            if test.is_empty() {
                continue;
            }
            let matched = test
                .iter()
                .filter(|r| gmm.classify(r.rf.phase) == Observation::Stationary)
                .count();
            acc[i].0 += matched as f64 / test.len() as f64;
            acc[i].1 += n_train;
        }
    }

    let points = train_lengths
        .iter()
        .enumerate()
        .map(|(i, &train_s)| Fig14Point {
            train_s,
            accuracy: acc[i].0 / reps as f64,
            train_readings: acc[i].1 / reps,
        })
        .collect();
    Fig14 { points }
}

impl Fig14 {
    /// The shortest training length achieving at least `target` accuracy.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.accuracy >= target)
            .map(|p| p.train_s)
    }
}

impl std::fmt::Display for Fig14 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 14 — immobility-model learning curve")?;
        writeln!(
            f,
            "{:>10} {:>10} {:>10}",
            "train (s)", "readings", "accuracy"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>10.2} {:>10} {:>10.2}",
                p.train_s, p.train_readings, p.accuracy
            )?;
        }
        writeln!(
            f,
            "time to 70%: {:?} s, to 90%: {:?} s  (paper: 1.49 s / 2.9 s — one 5 s cycle suffices)",
            self.time_to_accuracy(0.7),
            self.time_to_accuracy(0.9)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_grows_and_saturates_within_one_cycle() {
        let r = run(7, 2);
        // Accuracy is (weakly) increasing in broad strokes: final ≥ first.
        let first = r.points.first().unwrap().accuracy;
        let last = r.points.last().unwrap().accuracy;
        assert!(last >= first, "no learning: {first} → {last}");
        // High accuracy is reached on a one-cycle timescale, as the paper
        // claims (its fitted numbers: 70% at 1.49 s, 90% at 2.9 s; our
        // α/establishment pairing lands within a 5 s cycle plus margin).
        let t90 = r.time_to_accuracy(0.9);
        assert!(
            t90.is_some() && t90.unwrap() <= 8.0,
            "90% not reached within a cycle: {t90:?}"
        );
        // And it is genuinely a *curve*: early accuracy is low.
        assert!(
            r.points[0].accuracy < 0.5,
            "learning should not be instantaneous: {:?}",
            r.points[0]
        );
    }
}
