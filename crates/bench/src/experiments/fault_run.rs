//! **fault-run** — the differential degradation harness: the same
//! turntable workload as `obs-run`, executed twice on the same seed —
//! once clean, once under a `tagwatch-fault` plan — and judged against
//! the plan's graceful-degradation [`Envelope`].
//!
//! The baseline leg is a control, not a measurement of interest: it runs
//! on a detached, disabled telemetry handle so the global trace (what
//! `repro --telemetry` captures) contains only the faulted leg, complete
//! with `fault.open.*` / `fault.close.*` window markers for `obs report`
//! attribution. The envelope compares the two legs per cycle: the
//! mobile cohort's reading rate must stay above the configured floor
//! overall and recover within the budgeted number of cycles after the
//! last window closes.

use crate::experiments::common::random_epcs;
use tagwatch::prelude::*;
use tagwatch_fault::{CycleObservation, Envelope, EnvelopeReport, FaultPlan, PlanInjector};
use tagwatch_reader::{Reader, ReaderConfig};
use tagwatch_scene::presets;
use tagwatch_telemetry::Telemetry;

/// Outcome of one differential pair.
#[derive(Debug, Clone)]
pub struct FaultRun {
    pub plan_name: String,
    pub tags: usize,
    pub movers: usize,
    pub cycles: usize,
    /// Mobile-cohort reads summed over the clean leg.
    pub baseline_mobile_reads: usize,
    /// Mobile-cohort reads summed over the faulted leg.
    pub faulted_mobile_reads: usize,
    /// When the last non-empty fault window closes (`None`: nothing
    /// injected).
    pub fault_end: Option<f64>,
    /// Per-cycle differential observations (faulted leg's timeline).
    pub observations: Vec<CycleObservation>,
    /// The envelope the plan declared.
    pub envelope: Envelope,
    /// The verdict.
    pub report: EnvelopeReport,
}

impl FaultRun {
    /// Whether the faulted leg stayed inside the plan's envelope.
    pub fn passed(&self) -> bool {
        self.report.passed()
    }
}

/// Runs the differential pair: `cycles` controller cycles over
/// `presets::turntable(n_tags, n_mobile, seed)`, clean and faulted, and
/// evaluates `plan.envelope` over the per-cycle mobile-cohort rates.
pub fn run(seed: u64, n_tags: usize, n_mobile: usize, cycles: usize, plan: &FaultPlan) -> FaultRun {
    let run_leg = |faulted: bool| -> Vec<CycleReport> {
        let scene = presets::turntable(n_tags, n_mobile, seed);
        let epcs = random_epcs(n_tags, seed ^ 0x0B5);
        let mut reader = Reader::new(scene, &epcs, ReaderConfig::default(), seed ^ 0x0B6);
        let tel = if faulted {
            let tel = Telemetry::global().clone();
            for epc in &epcs[..n_mobile] {
                tel.tag_event("truth.mobile", epc.bits(), 0.0);
            }
            reader.set_fault_injector(Box::new(PlanInjector::new(plan.clone())));
            tel
        } else {
            // Detached handle with no sink: the clean control must not
            // write into the global trace.
            let tel = Telemetry::new();
            reader.set_telemetry(tel.clone());
            tel
        };
        let mut ctl = Controller::new(TagwatchConfig::default()).with_telemetry(tel);
        ctl.run_cycles(&mut reader, cycles).expect("valid config") // lint:allow(panic-policy): harness-built config is valid by construction
    };
    let baseline = run_leg(false);
    let faulted = run_leg(true);

    let mobile_reads = |r: &CycleReport| {
        r.phase1
            .iter()
            .chain(r.phase2.iter())
            .filter(|t| t.tag_idx < n_mobile)
            .count()
    };
    let observations: Vec<CycleObservation> = baseline
        .iter()
        .zip(faulted.iter())
        .map(|(b, f)| CycleObservation {
            t_start: f.t_start,
            t_end: f.t_end,
            baseline_mobile_irr: mobile_reads(b) as f64 / (b.t_end - b.t_start).max(1e-9),
            faulted_mobile_irr: mobile_reads(f) as f64 / (f.t_end - f.t_start).max(1e-9),
        })
        .collect();
    let fault_end = plan.last_window_end();
    let report = plan.envelope.evaluate(fault_end, &observations);
    FaultRun {
        plan_name: plan.name.clone(),
        tags: n_tags,
        movers: n_mobile,
        cycles: observations.len(),
        baseline_mobile_reads: baseline.iter().map(&mobile_reads).sum(),
        faulted_mobile_reads: faulted.iter().map(&mobile_reads).sum(),
        fault_end,
        observations,
        envelope: plan.envelope,
        report,
    }
}

impl std::fmt::Display for FaultRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fault-run — differential degradation (plan {:?}, turntable {} tags / {} mobile)",
            self.plan_name, self.tags, self.movers
        )?;
        writeln!(
            f,
            "  {} cycles; mobile reads {} baseline vs {} faulted (whole-run ratio {:.3})",
            self.cycles,
            self.baseline_mobile_reads,
            self.faulted_mobile_reads,
            self.report.overall_ratio
        )?;
        match self.fault_end {
            Some(end) => writeln!(f, "  last fault window closes at {end:.3} s")?,
            None => writeln!(f, "  plan injects nothing (control pair)")?,
        }
        writeln!(
            f,
            "  envelope: floor {:.2} → {}; recovery to {:.0}% within {} cycles → {}",
            self.envelope.irr_floor_ratio,
            if self.report.floor_ok {
                "ok"
            } else {
                "VIOLATED"
            },
            self.envelope.recovery_ratio * 100.0,
            self.envelope.recovery_cycles,
            match (self.report.recovered, self.report.recovery_cycle) {
                (true, Some(c)) => format!("ok (cycle {c})"),
                (true, None) => "vacuous (no post-fault cycles)".to_string(),
                (false, _) => "VIOLATED".to_string(),
            }
        )?;
        for v in &self.report.violations {
            writeln!(f, "  violation: {v}")?;
        }
        writeln!(
            f,
            "  verdict: {}",
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagwatch_fault::{FaultEvent, FaultKind, Window};

    fn plan_with(envelope: Envelope, events: Vec<(FaultKind, f64, f64)>) -> FaultPlan {
        let mut plan = FaultPlan::empty("test-plan");
        plan.envelope = envelope;
        plan.events = events
            .into_iter()
            .map(|(kind, start, end)| FaultEvent {
                kind,
                window: Window::new(start, end),
            })
            .collect();
        plan.validate().expect("test plan is valid");
        plan
    }

    #[test]
    fn benign_plan_stays_inside_the_default_envelope() {
        let plan = plan_with(
            Envelope::default(),
            vec![(
                FaultKind::BurstNoise {
                    phase_sigma: 0.2,
                    rss_sigma_db: 1.0,
                },
                0.5,
                1.5,
            )],
        );
        let r = run(7, 10, 1, 4, &plan);
        assert!(r.passed(), "violations: {:?}", r.report.violations);
        assert_eq!(r.cycles, 4);
        assert!(r.baseline_mobile_reads > 0);
    }

    #[test]
    fn strict_floor_catches_a_total_blackout() {
        // Everything dark for the whole run: no plausible floor holds.
        let plan = plan_with(
            Envelope {
                irr_floor_ratio: 0.9,
                recovery_cycles: 3,
                recovery_ratio: 0.5,
            },
            vec![(FaultKind::AntennaOutage { antennas: vec![] }, 0.0, 1e6)],
        );
        let r = run(7, 10, 1, 4, &plan);
        assert!(!r.passed());
        assert_eq!(r.faulted_mobile_reads, 0);
        assert!(!r.report.floor_ok);
    }

    #[test]
    fn differential_pair_is_deterministic() {
        let plan = plan_with(
            Envelope::default(),
            vec![(FaultKind::SelectLoss { prob: 0.3 }, 0.0, 2.0)],
        );
        let a = run(11, 8, 1, 3, &plan);
        let b = run(11, 8, 1, 3, &plan);
        assert_eq!(a.baseline_mobile_reads, b.baseline_mobile_reads);
        assert_eq!(a.faulted_mobile_reads, b.faulted_mobile_reads);
        assert_eq!(a.observations, b.observations);
    }
}
