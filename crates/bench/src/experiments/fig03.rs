//! **E2 / Fig. 3** — the 4-hour TrackPoint reading-trace timeline, from
//! the synthetic generator matched to the paper's published statistics.

use tagwatch_trace::{generate, summarize, timeline, Trace, TraceConfig, TraceSummary};

/// Experiment result: the trace summary plus a bucketed timeline.
#[derive(Debug, Clone)]
pub struct Fig3 {
    pub summary: TraceSummary,
    /// Readings per 10-minute bucket.
    pub buckets: Vec<usize>,
    pub trace: Trace,
}

/// Runs the experiment. `quick` shrinks the trace to 30 minutes.
pub fn run(seed: u64, quick: bool) -> Fig3 {
    let cfg = if quick {
        TraceConfig {
            duration: 1800.0,
            total_tags: 120,
            parked_tags: 35,
            ..Default::default()
        }
    } else {
        TraceConfig::default()
    };
    let trace = generate(&cfg, seed);
    let buckets = timeline(&trace, 600.0);
    Fig3 {
        summary: summarize(&trace),
        buckets,
        trace,
    }
}

impl std::fmt::Display for Fig3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 3 — TrackPoint-style reading trace")?;
        writeln!(
            f,
            "total readings {} from {} tags over {:.1} h  (paper: 367,536 from 527 over ~4 h)",
            self.summary.total_readings,
            self.summary.total_tags,
            self.trace.config.duration / 3600.0
        )?;
        writeln!(
            f,
            "hottest parked tag read {} times (paper's tag #271: ~90,000)",
            self.summary.max_reads
        )?;
        writeln!(
            f,
            "peak simultaneous movers: {} ({:.1}% of tags; paper: ≤ ~5.7%)",
            self.summary.peak_simultaneous_movers,
            100.0 * self.summary.peak_simultaneous_movers as f64 / self.summary.total_tags as f64
        )?;
        writeln!(f, "readings per 10-minute bucket:")?;
        for (i, b) in self.buckets.iter().enumerate() {
            writeln!(f, "  [{:>3} min] {:>8}", i * 10, b)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_trace_statistics_hold() {
        let r = run(7, true);
        assert!(r.summary.total_readings > 1000);
        assert!(r.summary.max_reads > r.summary.reads_at_top10);
        // Movers stay a small minority at any instant.
        let frac = r.summary.peak_simultaneous_movers as f64 / r.summary.total_tags as f64;
        assert!(frac < 0.15, "mover fraction {frac}");
        assert_eq!(r.buckets.len(), 3);
        assert_eq!(r.buckets.iter().sum::<usize>(), r.summary.total_readings);
    }
}
