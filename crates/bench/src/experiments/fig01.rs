//! **E12 / Fig. 1** — the application study: tracking a tag on a toy
//! train (circular track, 0.7 m/s) while 0/2/4 stationary tags contend
//! for air time, with traditional reading versus Tagwatch's rate-adaptive
//! reading. The tracked trajectory's accuracy is the end-to-end measure
//! of what reading rate buys.

use crate::experiments::common::random_epcs;
use tagwatch::prelude::*;
use tagwatch_gen2::LinkTiming;
use tagwatch_reader::{Reader, ReaderConfig, RoSpec, TagReport};
use tagwatch_rf::{ChannelPlan, LinkGeometry, Vec3};
use tagwatch_scene::presets;
use tagwatch_tracking::{accuracy, HologramConfig, Localizer, Tracker};

/// Antenna dwell used by the tracking-mode reader (LLRP AISpec duration).
const DWELL: f64 = 0.05;

/// One experimental condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1Row {
    /// Number of stationary tags beside the track.
    pub n_static: usize,
    /// Whether Tagwatch (true) or traditional read-all (false) drove it.
    pub rate_adaptive: bool,
    /// Mean reading rate of the mobile tag over the tracked window, Hz.
    pub irr: f64,
    /// Mean trajectory error, metres.
    pub mean_err: f64,
    /// Standard deviation of the trajectory error.
    pub std_err: f64,
    /// Number of trajectory fixes.
    pub fixes: usize,
}

/// Experiment result: the four conditions of Fig. 1.
#[derive(Debug, Clone)]
pub struct Fig1 {
    pub rows: Vec<Fig1Row>,
}

/// Ground-truth position of the train (matches `presets::tracking_study`).
fn train_truth(t: f64) -> Vec3 {
    let omega = 0.7 / 0.2;
    Vec3::new(0.2 * (omega * t).cos(), 0.2 * (omega * t).sin(), 0.8)
}

/// Builds a calibrated localizer for the reader's channel model (the
/// paper fixes the train's initial position at a known point).
fn calibrated_localizer(reader: &Reader) -> Localizer {
    let ants: Vec<(u8, Vec3)> = reader
        .scene
        .antennas
        .iter()
        .map(|a| (a.port, a.position))
        .collect();
    let mut loc = Localizer::new(&ants, HologramConfig::default());
    // Synthesize a clean calibration burst at the known start position —
    // equivalent to holding the train still before the run.
    let model = reader.config().channel_model;
    let chan = ChannelPlan::single(922.5e6).channel_at(0.0);
    let start = train_truth(0.0);
    let mut rng = rand::rngs::mock::StepRng::new(0, 0);
    let mut cal = Vec::new();
    for &(port, apos) in &ants {
        // Average over a burst to wash out phase noise.
        for _ in 0..25 {
            let link = LinkGeometry {
                antenna: apos,
                tag: start,
                reflectors: &[],
            };
            let rf = model.observe(&link, 0, port, chan, 0.0, &mut rng);
            cal.push(TagReport {
                epc: Epc::from_bits(0),
                tag_idx: 0,
                rf,
            });
        }
    }
    loc.calibrate(start, &cal);
    loc
}

/// Runs one condition.
fn condition(seed: u64, n_static: usize, rate_adaptive: bool, duration: f64) -> Fig1Row {
    let scene = presets::tracking_study(n_static, seed);
    let n = scene.tags.len();
    let epcs = random_epcs(n, seed ^ 0x1A);
    // Tracking-mode reader: streaming link profile (per-read reporting
    // cost) on a single channel, driven with dwell-based continuous
    // reading — the regime of the paper's Fig. 1, where IRR scales ~1/n.
    let rcfg = ReaderConfig {
        channel_plan: ChannelPlan::single(922.5e6),
        link: LinkTiming::r420_tracking(),
        ..ReaderConfig::default()
    };
    let mut reader = Reader::new(scene, &epcs, rcfg, seed ^ 0x1B);
    let localizer = calibrated_localizer(&reader);
    let antennas = vec![1, 2, 3, 4];

    let reports: Vec<TagReport> = if rate_adaptive {
        // The paper's Phase-II length (5 s): long selective stretches keep
        // the mover's sampling dense; Phase I's read-all sweep is the only
        // sparse interval per cycle.
        let phase2_len = 5.0;
        let mut cfg = TagwatchConfig::with_antennas(antennas);
        cfg.phase2_len = phase2_len;
        cfg.phase2_dwell = Some(DWELL);
        let mut ctl = Controller::new(cfg);
        // Warm-up: let the stationary tags' immobility models establish
        // (the mover needs no model to be scheduled — unexplained phase is
        // motion evidence from the first cycle).
        for _ in 0..8 {
            ctl.run_cycle(&mut reader).expect("valid config"); // lint:allow(panic-policy): harness-built config is valid by construction
        }
        let mut collected = Vec::new();
        let cycles = (duration / (phase2_len + 0.5)).ceil() as usize;
        for _ in 0..cycles {
            let rep = ctl.run_cycle(&mut reader).expect("valid config"); // lint:allow(panic-policy): harness-built config is valid by construction
            collected.extend(rep.phase1);
            collected.extend(rep.phase2);
        }
        collected
    } else {
        let spec = RoSpec::read_all_continuous(1, antennas, DWELL);
        // Matched settling time for the reader's link adaptation.
        reader.run_for(&spec, 2.0).expect("valid spec"); // lint:allow(panic-policy): harness-built spec is valid by construction
        reader.run_for(&spec, duration).expect("valid spec") // lint:allow(panic-policy): harness-built spec is valid by construction
    };

    let mover: Vec<TagReport> = reports.iter().filter(|r| r.tag_idx == 0).copied().collect();
    let irr = mover.len() as f64 / duration;

    // The tracker's prior starts at the truth of the first tracked read.
    // Windows span ~1.5 antenna sweeps so fixes see several antennas;
    // the laboratory multipath in the scene is what couples accuracy to
    // reading rate (more reads per window average the disturbance down).
    let t_first = mover.first().map_or(0.0, |r| r.rf.t);
    let mut tracker = Tracker::new(localizer, train_truth(t_first), 0.1);
    // Gate out multipath-corrupted and under-constrained windows: they
    // coast rather than drag the prior off the track.
    tracker.min_score = 0.55;
    tracker.min_reads = 3;
    let fixes = tracker.track(&mover);
    let (mean_err, std_err) = accuracy(&fixes, train_truth);

    Fig1Row {
        n_static,
        rate_adaptive,
        irr,
        mean_err,
        std_err,
        fixes: fixes.len(),
    }
}

/// Runs all four conditions of Fig. 1.
pub fn run(seed: u64, duration: f64) -> Fig1 {
    let rows = vec![
        condition(seed, 0, false, duration),
        condition(seed, 2, false, duration),
        condition(seed, 4, false, duration),
        condition(seed, 4, true, duration),
    ];
    Fig1 { rows }
}

impl std::fmt::Display for Fig1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 1 — tracking a toy train with companion stationary tags"
        )?;
        writeln!(
            f,
            "{:>20} {:>10} {:>12} {:>12} {:>8}",
            "condition", "IRR (Hz)", "mean err(cm)", "std (cm)", "fixes"
        )?;
        for r in &self.rows {
            let label = format!(
                "(1+{}) {}",
                r.n_static,
                if r.rate_adaptive {
                    "Tagwatch"
                } else {
                    "read-all"
                }
            );
            writeln!(
                f,
                "{:>20} {:>10.1} {:>12.2} {:>12.2} {:>8}",
                label,
                r.irr,
                r.mean_err * 100.0,
                r.std_err * 100.0,
                r.fixes
            )?;
        }
        writeln!(
            f,
            "paper anchors: read-all 1.8 cm → 6 cm → 10.6 cm as statics grow; Tagwatch (1+4) ≈ 3.3 cm"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_degrades_with_contention_and_tagwatch_restores_it() {
        let r = run(7, 12.0);
        let all0 = &r.rows[0];
        let all4 = &r.rows[2];
        let tw4 = &r.rows[3];
        // Reading rate falls as statics are added.
        assert!(all0.irr > all4.irr, "IRR {} vs {}", all0.irr, all4.irr);
        // Tracking degrades with contention…
        assert!(
            all4.mean_err > all0.mean_err,
            "no degradation: {} vs {}",
            all4.mean_err,
            all0.mean_err
        );
        // …and Tagwatch recovers most of it with 4 statics present.
        assert!(
            tw4.mean_err < all4.mean_err,
            "Tagwatch {} vs read-all {}",
            tw4.mean_err,
            all4.mean_err
        );
        // Baseline (1+0) tracks to a few centimetres.
        assert!(all0.mean_err < 0.06, "(1+0) err {}", all0.mean_err);
    }
}
