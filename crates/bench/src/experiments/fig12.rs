//! **E5 / Fig. 12** — detection-accuracy ROC curves for the four
//! detector families: Phase-MoG (the paper's design), RSS-MoG,
//! Phase-differencing and RSS-differencing.
//!
//! Negatives come from stationary office tags disturbed by walking people
//! (the paper deploys 100 tags watched for 48 h; we scale the population
//! and duration down and keep the per-reading statistics). Positives are
//! the deployed detection problem: a tag whose immobility models were
//! learned while it sat still, which then starts riding a toy train at
//! 0.7 m/s — its motion-phase readings are scored against the frozen
//! models. Thresholds sweep ξ for MoG and the jump threshold for
//! differencing.

use crate::experiments::common::{random_epcs, single_channel_reader};
use tagwatch::metrics::{Confusion, RocPoint};
use tagwatch::prelude::*;
use tagwatch_reader::{RoSpec, TagReport};
use tagwatch_scene::presets;

/// One detector's ROC curve.
#[derive(Debug, Clone)]
pub struct RocCurve {
    pub name: &'static str,
    pub points: Vec<RocPoint>,
}

impl RocCurve {
    /// Best TPR achievable at FPR ≤ `cap` on this curve.
    pub fn tpr_at_fpr(&self, cap: f64) -> f64 {
        self.points
            .iter()
            .filter(|p| p.fpr <= cap)
            .map(|p| p.tpr)
            .fold(0.0, f64::max)
    }
}

/// Experiment result: four ROC curves.
#[derive(Debug, Clone)]
pub struct Fig12 {
    pub curves: Vec<RocCurve>,
}

/// Collects per-tag report streams: (readings, is_mobile ground truth).
fn collect_streams(seed: u64, n_static: usize, duration: f64) -> Vec<(Vec<TagReport>, bool)> {
    let mut streams = Vec::new();

    // Negatives: stationary office tags with people walking.
    let scene = presets::office_monitoring(n_static, 4, seed);
    let epcs = random_epcs(n_static, seed ^ 0x12A);
    let mut reader = single_channel_reader(scene, &epcs, seed ^ 0x12B);
    let reports = reader
        .run_for(&RoSpec::read_all(1, vec![1]), duration)
        .expect("valid spec"); // lint:allow(panic-policy): harness-built spec is valid by construction
    for idx in 0..n_static {
        let stream: Vec<TagReport> = reports
            .iter()
            .filter(|r| r.tag_idx == idx)
            .copied()
            .collect();
        if stream.len() > 20 {
            streams.push((stream, false));
        }
    }

    // Positives: several independent tags that sit still for the first
    // half of the run and then ride a circular track at 0.7 m/s. The
    // first (stationary) half trains the models; the motion half is
    // scored — the transition a deployed Phase I must catch.
    for k in 0..4u64 {
        let t_go = duration / 2.0;
        let mut scene = tagwatch_scene::Scene::with_single_antenna();
        scene.antennas[0].position = tagwatch_rf::Vec3::new(0.0, 0.0, 2.0);
        // Sample the circular ride into way-points (the tag holds at the
        // track start until t_go).
        let center = tagwatch_rf::Vec3::new(1.5, 0.3 * k as f64, 0.8);
        let mut points = vec![(0.0, center + tagwatch_rf::Vec3::new(0.2, 0.0, 0.0))];
        let omega = 0.7 / 0.2;
        for step in 0..200 {
            let t = t_go + step as f64 * 0.05;
            let theta = omega * (t - t_go);
            points.push((
                t,
                center + tagwatch_rf::Vec3::new(0.2 * theta.cos(), 0.2 * theta.sin(), 0.0),
            ));
        }
        scene.add_tag(tagwatch_scene::SceneTag::new(
            900 + k,
            tagwatch_scene::Trajectory::Waypoints { points },
        ));
        let epcs = random_epcs(1, seed ^ 0x7211 ^ k);
        let mut reader = single_channel_reader(scene, &epcs, seed ^ 0x7212 ^ k);
        let reports = reader
            .run_for(&RoSpec::read_all(1, vec![1]), duration)
            .expect("valid spec"); // lint:allow(panic-policy): harness-built spec is valid by construction
        let stream: Vec<TagReport> = reports.clone();
        if stream.len() > 20 {
            streams.push((stream, true));
        }
    }
    streams
}

/// Scores one detector-builder across all streams at one threshold.
///
/// Model-based detectors (`frozen = true`) train on the first half and
/// are scored with frozen models on the second half — the conventional
/// train/test split. Differencing detectors are inherently streaming
/// (each verdict compares against the immediately preceding reading), so
/// they keep observing while scored.
fn score<F>(streams: &[(Vec<TagReport>, bool)], frozen: bool, build: F) -> Confusion
where
    F: Fn() -> Box<dyn Detector + Send>,
{
    let mut confusion = Confusion::default();
    for (stream, label) in streams {
        let mut det = build();
        let half = stream.len() / 2;
        for r in &stream[..half] {
            det.observe(&r.rf);
        }
        for r in &stream[half..] {
            let pred = if frozen {
                det.classify(&r.rf)
            } else {
                det.observe(&r.rf)
            };
            confusion.push(pred, *label);
        }
    }
    confusion
}

/// Runs the experiment. Defaults: 40 static tags, 60 s of readings
/// (scaled-down from the paper's 100 tags / 48 h; per-reading statistics
/// are what the ROC consumes).
pub fn run(seed: u64, n_static: usize, duration: f64) -> Fig12 {
    let streams = collect_streams(seed, n_static, duration);
    let xi_sweep = [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 9.0, 14.0, 20.0];
    let phase_jump_sweep = [0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2, 2.0, 3.0];
    let rss_jump_sweep = [0.2, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 9.0, 14.0];

    let mut curves = Vec::new();

    let mut phase_mog = Vec::new();
    let mut rss_mog = Vec::new();
    for &xi in &xi_sweep {
        let c = score(&streams, true, || {
            Box::new(MogDetector::phase().with_xi(xi))
        });
        phase_mog.push(RocPoint {
            threshold: xi,
            tpr: c.tpr(),
            fpr: c.fpr(),
        });
        let c = score(&streams, true, || Box::new(MogDetector::rss().with_xi(xi)));
        rss_mog.push(RocPoint {
            threshold: xi,
            tpr: c.tpr(),
            fpr: c.fpr(),
        });
    }
    curves.push(RocCurve {
        name: "Phase-MoG",
        points: phase_mog,
    });
    curves.push(RocCurve {
        name: "RSS-MoG",
        points: rss_mog,
    });

    let mut phase_diff = Vec::new();
    for &th in &phase_jump_sweep {
        let c = score(&streams, false, || Box::new(DiffDetector::phase(th)));
        phase_diff.push(RocPoint {
            threshold: th,
            tpr: c.tpr(),
            fpr: c.fpr(),
        });
    }
    curves.push(RocCurve {
        name: "Phase-differencing",
        points: phase_diff,
    });

    let mut rss_diff = Vec::new();
    for &th in &rss_jump_sweep {
        let c = score(&streams, false, || Box::new(DiffDetector::rss(th)));
        rss_diff.push(RocPoint {
            threshold: th,
            tpr: c.tpr(),
            fpr: c.fpr(),
        });
    }
    curves.push(RocCurve {
        name: "RSS-differencing",
        points: rss_diff,
    });

    Fig12 { curves }
}

impl std::fmt::Display for Fig12 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 12 — detection ROC (per-reading verdicts)")?;
        for curve in &self.curves {
            writeln!(f, "{}:", curve.name)?;
            writeln!(f, "  {:>10} {:>8} {:>8}", "threshold", "TPR", "FPR")?;
            for p in &curve.points {
                writeln!(f, "  {:>10.2} {:>8.3} {:>8.3}", p.threshold, p.tpr, p.fpr)?;
            }
            writeln!(f, "  TPR @ FPR ≤ 0.1: {:.3}", curve.tpr_at_fpr(0.1))?;
        }
        writeln!(
            f,
            "paper anchors: Phase-MoG reaches TPR ≥ 0.95 at FPR ≤ 0.1; phase ≫ RSS; MoG ≫ differencing on FPR control"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_mog_dominates() {
        // Default-scale parameters: the FPR tail needs enough training
        // history per static tag for its secondary (people-induced)
        // multipath modes to establish.
        let r = run(7, 60, 90.0);
        let get = |name: &str| r.curves.iter().find(|c| c.name == name).unwrap();
        let phase_mog = get("Phase-MoG").tpr_at_fpr(0.1);
        let rss_mog = get("RSS-MoG").tpr_at_fpr(0.1);
        let rss_diff = get("RSS-differencing").tpr_at_fpr(0.2);
        // The headline claim: ≥ 0.95 TPR at ≤ 0.1 FPR for Phase-MoG.
        assert!(phase_mog >= 0.9, "Phase-MoG TPR@0.1 = {phase_mog}");
        // Phase beats RSS.
        assert!(phase_mog > rss_mog, "phase {phase_mog} vs rss {rss_mog}");
        // RSS differencing is the weakest family (paper: 0.12 TPR @ 0.2).
        assert!(rss_diff < phase_mog);
    }
}
