//! Ablation studies for the design choices DESIGN.md §5 calls out.
//!
//! These go beyond the paper's own comparisons: they quantify *why* each
//! design decision is in the system by knocking it out.
//!
//! * [`cover`] — bitmask-selection strategies across target-set sizes:
//!   greedy set cover (the paper's design) vs the naive per-EPC plan vs a
//!   collateral-free variant (greedy restricted to masks that cover no
//!   non-target), priced by the cost model and verified in simulation.
//! * [`gmm_k`] — the mixture size K: K = 1 is the single-Gaussian
//!   §4.1 strawman; the paper argues multipath needs K ≈ 8.
//! * [`cycle_len`] — Phase-II length: gain vs responsiveness (the paper
//!   fixes 5 s and notes applications can retune it).

use crate::experiments::common::{random_epcs, single_channel_reader, warm_up};
use tagwatch::motion::Detector;
use tagwatch::prelude::*;
use tagwatch_gen2::CostModel;
use tagwatch_reader::RoSpec;
use tagwatch_rf::Vec3;
use tagwatch_scene::presets;
use tagwatch_scene::{SceneTag, Trajectory};

// ---------------------------------------------------------------------
// Cover-strategy ablation
// ---------------------------------------------------------------------

/// One row of the cover ablation.
#[derive(Debug, Clone)]
pub struct CoverRow {
    pub n_targets: usize,
    /// (masks, collateral, est. sweep cost ms) per strategy.
    pub greedy: (usize, usize, f64),
    pub exclusive: (usize, usize, f64),
    pub naive: (usize, usize, f64),
}

/// Cover ablation result.
#[derive(Debug, Clone)]
pub struct CoverAblation {
    pub n: usize,
    pub rows: Vec<CoverRow>,
}

/// A greedy cover restricted to collateral-free masks (rows whose
/// coverage contains only targets). Always feasible — exact-EPC masks are
/// collateral-free (assuming unique EPCs) — but pays more start-up costs.
fn exclusive_cover(epcs: &[Epc], targets: &[usize], cost: &CostModel) -> tagwatch::CoverPlan {
    use tagwatch::{greedy_cover, Bitmap, CoverConfig, IndexTable};
    let table = IndexTable::build(epcs, targets, &CoverConfig::default());
    let target_bitmap = Bitmap::from_indices(epcs.len(), targets);
    // Filter the table down to collateral-free rows.
    let rows: Vec<tagwatch::IndexRow> = table
        .rows()
        .iter()
        .filter(|r| {
            let covered = r.coverage.count_ones();
            r.coverage.and_count(&target_bitmap) == covered
        })
        .cloned()
        .collect();
    let filtered = IndexTable::from_rows(rows, epcs.len());
    greedy_cover(&filtered, &target_bitmap, cost)
}

/// Runs the cover ablation over a fixed population.
pub fn cover(seed: u64, n: usize) -> CoverAblation {
    let cost = CostModel::paper();
    let epcs = random_epcs(n, seed ^ 0xAB1);
    let mut rows = Vec::new();
    for &n_targets in &[2usize, 5, 10, 20] {
        if n_targets > n {
            continue;
        }
        let targets: Vec<usize> = (0..n_targets).collect();
        let bitmap = tagwatch::Bitmap::from_indices(n, &targets);
        let summarise = |plan: &tagwatch::CoverPlan| {
            (
                plan.masks.len(),
                plan.collateral(&bitmap),
                plan.est_cost * 1e3,
            )
        };
        let greedy = tagwatch::select_cover(&epcs, &targets, &cost, &Default::default());
        let excl = exclusive_cover(&epcs, &targets, &cost);
        let naive = tagwatch::naive_cover(&epcs, &targets, &cost);
        rows.push(CoverRow {
            n_targets,
            greedy: summarise(&greedy),
            exclusive: summarise(&excl),
            naive: summarise(&naive),
        });
    }
    CoverAblation { n, rows }
}

impl std::fmt::Display for CoverAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ablation — cover strategies over {} random EPCs (masks / collateral / sweep ms)",
            self.n
        )?;
        writeln!(
            f,
            "{:>8} {:>22} {:>22} {:>22}",
            "targets", "greedy (paper)", "collateral-free", "naive per-EPC"
        )?;
        for r in &self.rows {
            let cell = |(m, c, ms): (usize, usize, f64)| format!("{m} / {c} / {ms:.1}");
            writeln!(
                f,
                "{:>8} {:>22} {:>22} {:>22}",
                r.n_targets,
                cell(r.greedy),
                cell(r.exclusive),
                cell(r.naive)
            )?;
        }
        writeln!(
            f,
            "take-away: tolerating collateral lets greedy use fewer rounds; forbidding it degenerates toward per-EPC costs"
        )
    }
}

// ---------------------------------------------------------------------
// GMM K ablation
// ---------------------------------------------------------------------

/// One row of the K ablation.
#[derive(Debug, Clone, Copy)]
pub struct GmmKRow {
    pub k: usize,
    /// False-positive rate on a static tag in a dynamic environment.
    pub fpr: f64,
    /// Detection rate of a 3 cm displacement after training.
    pub tpr: f64,
}

/// K ablation result.
#[derive(Debug, Clone)]
pub struct GmmKAblation {
    pub rows: Vec<GmmKRow>,
}

/// Runs the K ablation: K = 1 is the single-Gaussian model of §4.1 whose
/// failure under multipath motivates the mixture.
pub fn gmm_k(seed: u64, duration: f64) -> GmmKAblation {
    let mut rows = Vec::new();
    for &k in &[1usize, 2, 4, 8] {
        let mut cfg = GmmConfig::phase_defaults();
        cfg.k_max = k;

        // FPR: static tag + two walkers; train on first half, score rest.
        let scene = presets::office_monitoring(1, 2, seed ^ 0x61);
        let ids = random_epcs(1, seed ^ 0x62);
        let mut reader = single_channel_reader(scene, &ids, seed ^ 0x63);
        let reports = reader
            .run_for(&RoSpec::read_all(1, vec![1]), duration)
            .expect("valid spec"); // lint:allow(panic-policy): harness-built spec is valid by construction
        let half = reports.len() / 2;
        let mut det = MogDetector::phase_with(cfg);
        for r in &reports[..half] {
            det.observe(&r.rf);
        }
        let fp = reports[half..]
            .iter()
            .filter(|r| det.observe(&r.rf))
            .count();
        let fpr = fp as f64 / (reports.len() - half) as f64;

        // TPR: displacement detection after quiet training (20 trials).
        let mut hits = 0;
        let trials = 10;
        for t in 0..trials {
            let scene = presets::step_displacement(0.03, 8.0, seed ^ 0x64 ^ t);
            let ids = random_epcs(1, seed ^ 0x65 ^ t);
            let mut reader = single_channel_reader(scene, &ids, seed ^ 0x66 ^ t);
            let mut det = MogDetector::phase_with(cfg);
            let train = reader
                .run_for(&RoSpec::read_all(1, vec![1]), 8.0)
                .expect("valid spec"); // lint:allow(panic-policy): harness-built spec is valid by construction
            for r in &train {
                det.observe(&r.rf);
            }
            let test = reader
                .run_for(&RoSpec::read_all(1, vec![1]), 1.0)
                .expect("valid spec"); // lint:allow(panic-policy): harness-built spec is valid by construction
            if test
                .iter()
                .filter(|r| r.rf.t >= 8.0)
                .any(|r| det.observe(&r.rf))
            {
                hits += 1;
            }
        }
        rows.push(GmmKRow {
            k,
            fpr,
            tpr: hits as f64 / trials as f64,
        });
    }
    GmmKAblation { rows }
}

impl std::fmt::Display for GmmKAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Ablation — mixture size K (paper default: 8)")?;
        writeln!(f, "{:>4} {:>10} {:>16}", "K", "FPR", "TPR @ 3 cm")?;
        for r in &self.rows {
            writeln!(f, "{:>4} {:>10.3} {:>16.2}", r.k, r.fpr, r.tpr)?;
        }
        writeln!(
            f,
            "take-away: K = 1 cannot absorb multipath modes (high FPR); sensitivity is K-independent"
        )
    }
}

// ---------------------------------------------------------------------
// Phase-II length ablation
// ---------------------------------------------------------------------

/// One row of the cycle-length ablation.
#[derive(Debug, Clone, Copy)]
pub struct CycleLenRow {
    pub phase2_len: f64,
    /// Steady-state mover IRR gain over read-all.
    pub gain: f64,
    /// Cycles until a mid-run displacement of a static tag is scheduled
    /// (responsiveness; lower is better).
    pub detect_cycles: usize,
}

/// Cycle-length ablation result.
#[derive(Debug, Clone)]
pub struct CycleLenAblation {
    pub rows: Vec<CycleLenRow>,
}

/// Runs the Phase-II length sweep.
pub fn cycle_len(seed: u64) -> CycleLenAblation {
    let n = 40;
    let mut rows = Vec::new();
    for &len in &[1.0f64, 2.0, 5.0, 10.0] {
        // Gain at steady state (one turntable mover).
        let gain = {
            let mover_irr = |mode: SchedulingMode| {
                let scene = presets::turntable(n, 2, seed ^ 0x71);
                let ids = random_epcs(n, seed ^ 0x72);
                let mut reader = single_channel_reader(scene, &ids, seed ^ 0x73);
                let mut cfg = TagwatchConfig::default().with_scheduling(SchedulingMode::Tagwatch);
                cfg.phase2_len = len;
                let mut ctl = Controller::new(cfg);
                warm_up(&mut ctl, &mut reader, 60);
                ctl.set_scheduling(mode);
                ctl.run_cycle(&mut reader).expect("valid"); // lint:allow(panic-policy): harness-built config is valid by construction
                let t0 = reader.now();
                let mut reads = 0usize;
                for _ in 0..4 {
                    let rep = ctl.run_cycle(&mut reader).expect("valid"); // lint:allow(panic-policy): harness-built config is valid by construction
                    reads += rep
                        .phase1
                        .iter()
                        .chain(rep.phase2.iter())
                        .filter(|r| r.tag_idx == 0)
                        .count();
                }
                reads as f64 / (reader.now() - t0)
            };
            mover_irr(SchedulingMode::Tagwatch) / mover_irr(SchedulingMode::ReadAll)
        };

        // Responsiveness: displace a static tag mid-run; count cycles
        // until it is scheduled.
        let detect_cycles = {
            let mut scene = presets::turntable(n, 1, seed ^ 0x74);
            let origin = scene.tags[20].position_at(0.0);
            let ids = random_epcs(n, seed ^ 0x75);
            // The tag steps 5 cm at t = 200 s, well past warm-up.
            scene.tags[20] = SceneTag::new(
                20,
                Trajectory::StepDisplacement {
                    origin,
                    displacement: Vec3::new(0.04, 0.03, 0.0),
                    t_step: 200.0,
                },
            );
            let mut reader = single_channel_reader(scene, &ids, seed ^ 0x76);
            let cfg = TagwatchConfig {
                phase2_len: len,
                ..TagwatchConfig::default()
            };
            let mut ctl = Controller::new(cfg);
            while reader.now() < 200.0 {
                ctl.run_cycle(&mut reader).expect("valid"); // lint:allow(panic-policy): harness-built config is valid by construction
            }
            let mut cycles = 0usize;
            for k in 1..=20 {
                let rep = ctl.run_cycle(&mut reader).expect("valid"); // lint:allow(panic-policy): harness-built config is valid by construction
                cycles = k;
                if rep.targets.contains(&ids[20]) {
                    break;
                }
            }
            cycles
        };

        rows.push(CycleLenRow {
            phase2_len: len,
            gain,
            detect_cycles,
        });
    }
    CycleLenAblation { rows }
}

impl std::fmt::Display for CycleLenAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Ablation — Phase-II length (paper default: 5 s)")?;
        writeln!(
            f,
            "{:>12} {:>10} {:>24}",
            "phase2 (s)", "IRR gain", "cycles to catch a step"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>12.1} {:>9.1}x {:>24}",
                r.phase2_len, r.gain, r.detect_cycles
            )?;
        }
        writeln!(
            f,
            "take-away: longer Phase II buys gain (start-up costs amortise) at the price of slower reaction — in *cycles* the reaction is constant, in seconds it scales with the cycle"
        )
    }
}

// ---------------------------------------------------------------------
// Truncation ablation
// ---------------------------------------------------------------------

/// One row of the truncation ablation.
#[derive(Debug, Clone, Copy)]
pub struct TruncRow {
    /// Prefix-mask length used for the single covered target.
    pub mask_len: u16,
    /// Target Phase-II IRR without truncation, Hz.
    pub irr_plain: f64,
    /// Target Phase-II IRR with truncated replies, Hz.
    pub irr_truncated: f64,
}

/// Truncation ablation result.
#[derive(Debug, Clone)]
pub struct TruncAblation {
    pub rows: Vec<TruncRow>,
}

/// Measures the Phase-II IRR of one covered tag with and without the Gen2
/// Truncate flag, at several prefix-mask lengths (longer masks truncate
/// more of the reply).
pub fn truncation(seed: u64, sweeps: usize) -> TruncAblation {
    use tagwatch_gen2::BitMask;
    use tagwatch_reader::RoSpec as Spec;
    let n = 40;
    let mut rows = Vec::new();
    for &mask_len in &[8u16, 24, 48, 80] {
        let irr = |truncate: bool| {
            let scene = presets::random_room(n, seed ^ 0x7C);
            let ids = random_epcs(n, seed ^ 0x7D);
            let mut reader = single_channel_reader(scene, &ids, seed ^ 0x7E);
            let mask = BitMask::from_epc_range(ids[0], 0, mask_len);
            let spec = Spec::selective_with_truncate(1, vec![1], &[mask], truncate);
            // Settle, then measure.
            for _ in 0..3 {
                reader.execute(&spec).expect("valid"); // lint:allow(panic-policy): harness-built spec is valid by construction
            }
            let t0 = reader.now();
            let mut reads = 0usize;
            for _ in 0..sweeps {
                reads += reader
                    .execute(&spec)
                    .expect("valid") // lint:allow(panic-policy): harness-built spec is valid by construction
                    .iter()
                    .filter(|r| r.tag_idx == 0)
                    .count();
            }
            reads as f64 / (reader.now() - t0)
        };
        rows.push(TruncRow {
            mask_len,
            irr_plain: irr(false),
            irr_truncated: irr(true),
        });
    }
    TruncAblation { rows }
}

impl std::fmt::Display for TruncAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ablation — Gen2 Truncate on Phase-II replies (extension; the paper's Select supports it unevaluated)"
        )?;
        writeln!(
            f,
            "{:>10} {:>12} {:>14} {:>8}",
            "mask bits", "plain (Hz)", "truncated (Hz)", "gain"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>10} {:>12.1} {:>14.1} {:>7.1}%",
                r.mask_len,
                r.irr_plain,
                r.irr_truncated,
                (r.irr_truncated / r.irr_plain - 1.0) * 100.0
            )?;
        }
        writeln!(
            f,
            "take-away: modest but free — savings scale with mask length; τ0 still dominates short selective rounds"
        )
    }
}

// ---------------------------------------------------------------------
// EPC-structure ablation
// ---------------------------------------------------------------------

/// One row of the EPC-structure ablation.
#[derive(Debug, Clone, Copy)]
pub struct EpcStructRow {
    pub n_targets: usize,
    /// (masks, est sweep ms) with uniformly random EPCs.
    pub random: (usize, f64),
    /// (masks, est sweep ms) with SGTIN-96 EPCs where the targets are one
    /// product's serial range (a carton being carried off).
    pub sgtin: (usize, f64),
}

/// EPC-structure ablation result.
#[derive(Debug, Clone)]
pub struct EpcStructAblation {
    pub n: usize,
    pub rows: Vec<EpcStructRow>,
}

/// Compares the cover's cost on random EPC populations (the paper's §7.2
/// deployment) versus SGTIN-96 structured populations (real supply
/// chains), where a moving carton's tags share a 58-bit prefix and often
/// consecutive serials — structure the greedy cover exploits.
pub fn epc_structure(seed: u64, n: usize) -> EpcStructAblation {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let cost = CostModel::paper();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE9C5);

    // Random population.
    let random_epcs: Vec<Epc> = (0..n).map(|_| Epc::random(&mut rng)).collect();
    // SGTIN population: one warehouse (company), n/20 products, 20 serials
    // each. The mover targets are the first product's serials.
    let company = 0x00C0FFEE & 0xFF_FFFF;
    let per_item = 20;
    let sgtin_epcs: Vec<Epc> = (0..n)
        .map(|k| {
            Epc::sgtin96(
                1,
                company,
                (k / per_item) as u32,
                1000 + (k % per_item) as u64,
            )
        })
        .collect();

    let mut rows = Vec::new();
    for &n_targets in &[2usize, 5, 10, 20] {
        if n_targets > n.min(per_item) {
            continue;
        }
        let targets: Vec<usize> = (0..n_targets).collect();
        let plan_r = tagwatch::select_cover(&random_epcs, &targets, &cost, &Default::default());
        let plan_s = tagwatch::select_cover(&sgtin_epcs, &targets, &cost, &Default::default());
        rows.push(EpcStructRow {
            n_targets,
            random: (plan_r.masks.len(), plan_r.est_cost * 1e3),
            sgtin: (plan_s.masks.len(), plan_s.est_cost * 1e3),
        });
    }
    EpcStructAblation { n, rows }
}

impl std::fmt::Display for EpcStructAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ablation — EPC structure: random (paper §7.2) vs SGTIN-96 populations, {} tags (masks / sweep ms)",
            self.n
        )?;
        writeln!(
            f,
            "{:>8} {:>20} {:>20}",
            "targets", "random EPCs", "SGTIN-96"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>12} / {:>5.1} {:>12} / {:>5.1}",
                r.n_targets, r.random.0, r.random.1, r.sgtin.0, r.sgtin.1
            )?;
        }
        writeln!(
            f,
            "take-away: real supply-chain EPC structure (shared prefixes, serial runs) lets the greedy cover collapse a moving carton into one or two masks"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_ablation_orders_strategies() {
        let r = cover(7, 60);
        for row in &r.rows {
            // Greedy never beats itself with fewer options: exclusive and
            // naive both cost at least as much.
            assert!(row.greedy.2 <= row.exclusive.2 + 1e-9, "{row:?}");
            assert!(row.greedy.2 <= row.naive.2 + 1e-9, "{row:?}");
            // Exclusive plans have zero collateral by construction.
            assert_eq!(row.exclusive.1, 0, "{row:?}");
            assert_eq!(row.naive.1, 0);
        }
        // At larger target counts greedy's advantage over naive grows.
        let first = &r.rows[0];
        let last = r.rows.last().unwrap();
        let adv_first = first.naive.2 / first.greedy.2;
        let adv_last = last.naive.2 / last.greedy.2;
        assert!(adv_last >= adv_first, "{adv_first} vs {adv_last}");
    }

    #[test]
    fn truncation_never_hurts_and_grows_with_mask_len() {
        let r = truncation(7, 30);
        for row in &r.rows {
            assert!(
                row.irr_truncated >= row.irr_plain * 0.98,
                "truncation hurt at {} bits: {row:?}",
                row.mask_len
            );
        }
        let short = &r.rows[0];
        let long = r.rows.last().unwrap();
        let g_short = short.irr_truncated / short.irr_plain;
        let g_long = long.irr_truncated / long.irr_plain;
        assert!(
            g_long >= g_short,
            "longer masks should truncate more: {g_short} vs {g_long}"
        );
    }

    #[test]
    fn structured_epcs_cover_cheaper() {
        let r = epc_structure(7, 100);
        for row in &r.rows {
            assert!(
                row.sgtin.1 <= row.random.1 + 1e-9,
                "SGTIN should never cost more: {row:?}"
            );
            assert!(row.sgtin.0 <= row.random.0);
        }
        // At 20 targets (a full product), SGTIN needs very few masks.
        let last = r.rows.last().unwrap();
        assert!(
            last.sgtin.0 <= 3,
            "a full product run should collapse: {last:?}"
        );
    }

    #[test]
    fn single_gaussian_has_higher_fpr() {
        let r = gmm_k(7, 30.0);
        let k1 = r.rows.iter().find(|r| r.k == 1).unwrap();
        let k8 = r.rows.iter().find(|r| r.k == 8).unwrap();
        assert!(
            k1.fpr > k8.fpr,
            "K=1 FPR {} should exceed K=8 FPR {}",
            k1.fpr,
            k8.fpr
        );
        // Sensitivity must not collapse with K.
        assert!(k8.tpr >= 0.7, "K=8 TPR {}", k8.tpr);
    }
}
