//! The figure-reproduction CLI.
//!
//! ```text
//! repro <figN|all> [--seed N] [--quick|--full] [--telemetry FILE]
//! ```
//!
//! Each subcommand regenerates one figure of the paper's evaluation and
//! prints the corresponding rows/series (plus the paper's anchor values
//! for comparison). `--quick` shrinks repetitions/populations for smoke
//! runs; the default is a medium setting; `--full` approaches the paper's
//! scale (slow).
//!
//! `--telemetry FILE` enables the process-wide telemetry handle, streams
//! every span/counter/observation into `FILE`, and prints a summary
//! (duration percentiles, per-phase IRR, counters) after the figures
//! finish. The stream is JSONL by default; `--telemetry-format binary`
//! writes the compact `.twb` encoding instead, and `--telemetry-shards N`
//! (binary only) splits it across N self-describing shard files for the
//! deterministic `obs ingest` merge.
//!
//! `--bench-json FILE` writes a schema-versioned `BenchSnapshot`
//! (registry aggregates plus per-figure wall clock) for `obs diff`
//! regression gating; it enables metric aggregation even without
//! `--telemetry`. The `obs-run` target is the observability reference
//! workload `ci.sh` records and gates (see EXPERIMENTS.md).
//!
//! `--trials N` repeats every figure N times (same seed — the sim work
//! is byte-identical, only the wall clock varies) and records per-trial
//! wall times plus median/min/stddev and work rates in the snapshot
//! (schema v2). The harness asserts each trial's registry counter deltas
//! are byte-equal and refuses to average a nondeterministic workload;
//! the snapshot's counters are one trial's worth, so snapshots stay
//! comparable across different `--trials` values.
//!
//! `--monitor DIR` tees the event stream through the live observability
//! plane (`tagwatch-monitor`): online analyzers refresh a schema-versioned
//! `status.json` + Prometheus-style `metrics.prom` in `DIR` on the sim
//! clock, and the run health watchdog appends `alarm.*` events to the
//! trace. Works with or without `--telemetry`; under `--faults` the
//! watchdog also arms the plan's degradation envelope for early warning.
//!
//! `--telemetry-sample N` keeps every Nth inventory round's events in the
//! stream (deterministic — same seed and N always keep the same rounds);
//! `--telemetry-max-events M` caps the stream outright. Both only throttle
//! the sink: registry aggregates (and thus `--bench-json`) stay exact, and
//! the trace ends with a footer recording what was suppressed.

use std::collections::BTreeMap;
use std::process::ExitCode;
use tagwatch_bench::experiments::*;
use tagwatch_bench::telemetry_report;
use tagwatch_fault::FaultPlan;
use tagwatch_monitor::{MonitorConfig, MonitorSink, WatchdogConfig};
use tagwatch_obs::bench::{BenchSnapshot, FigureBench};
use tagwatch_telemetry::{
    wall_now, BinarySink, JsonlSink, NullSink, ShardedSink, SimOnlySink, Sink, Telemetry,
    TelemetryConfig, TraceFormat,
};

struct Opts {
    seed: u64,
    /// 0 = quick, 1 = default, 2 = full.
    scale: u8,
    /// Directory for plotting-friendly CSV series, when requested.
    csv_dir: Option<std::path::PathBuf>,
    /// JSONL telemetry export path, when requested.
    telemetry: Option<std::path::PathBuf>,
    /// BENCH snapshot output path, when requested.
    bench_json: Option<std::path::PathBuf>,
    /// Wall-clock trials per figure (`--trials`, ≥ 1). Only the wall
    /// statistics vary across trials; the sim work is asserted equal.
    trials: u32,
    /// Sink-side overhead control (sampling + event ceiling).
    telemetry_cfg: TelemetryConfig,
    /// Fault plan (`--faults`), applied to the fault-aware targets
    /// (`obs-run`, `fault-run`).
    faults: Option<FaultPlan>,
    /// Drop wall-derived events from the telemetry stream so same-seed
    /// runs are byte-identical (`--telemetry-sim-only`).
    sim_only: bool,
    /// Live-monitor output directory (`--monitor`): online analyzer
    /// snapshots + Prometheus-style exposition, refreshed on the sim
    /// clock while the run is in flight.
    monitor: Option<std::path::PathBuf>,
    /// On-disk encoding for `--telemetry` (`--telemetry-format`):
    /// JSONL (the default) or the compact `.twb` binary format. Every
    /// `obs` subcommand accepts either transparently.
    telemetry_format: TraceFormat,
    /// Shard count for binary capture (`--telemetry-shards`, ≥ 1):
    /// above 1 the stream is split across self-describing `.twb.shardK`
    /// files that `obs ingest` merges back deterministically.
    telemetry_shards: usize,
    /// Round engine for the engine-aware targets (`--engine`): the
    /// batched hot path (default) or the scalar reference. Sim-side
    /// output is bit-identical either way; only the wall clock moves.
    engine: tagwatch_reader::EngineKind,
}

impl Opts {
    fn write_csv(&self, name: &str, contents: &str) -> Result<(), String> {
        let Some(dir) = &self.csv_dir else {
            return Ok(());
        };
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, contents).map_err(|e| format!("cannot write {path:?}: {e}"))?;
        eprintln!("wrote {path:?}");
        Ok(())
    }
}

fn parse_args() -> Result<(Vec<String>, Opts), String> {
    let mut figs = Vec::new();
    let mut opts = Opts {
        seed: common::DEFAULT_SEED,
        scale: 1,
        csv_dir: None,
        telemetry: None,
        bench_json: None,
        trials: 1,
        telemetry_cfg: TelemetryConfig::default(),
        faults: None,
        sim_only: false,
        monitor: None,
        telemetry_format: TraceFormat::Jsonl,
        telemetry_shards: 1,
        engine: tagwatch_reader::EngineKind::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--csv" => {
                let v = args.next().ok_or("--csv needs a directory")?;
                opts.csv_dir = Some(v.into());
            }
            "--telemetry" => {
                let v = args.next().ok_or("--telemetry needs a file path")?;
                opts.telemetry = Some(v.into());
            }
            "--bench-json" => {
                let v = args.next().ok_or("--bench-json needs a file path")?;
                opts.bench_json = Some(v.into());
            }
            "--trials" => {
                let v = args.next().ok_or("--trials needs a value")?;
                let n: u32 = v.parse().map_err(|_| format!("bad trial count {v:?}"))?;
                if n == 0 {
                    return Err("--trials must be ≥ 1".into());
                }
                opts.trials = n;
            }
            "--telemetry-sample" => {
                let v = args.next().ok_or("--telemetry-sample needs a value")?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("bad sample interval {v:?}"))?;
                if n == 0 {
                    return Err("--telemetry-sample must be ≥ 1 (1 = keep everything)".into());
                }
                opts.telemetry_cfg.sample_every_n_rounds = n;
            }
            "--telemetry-max-events" => {
                let v = args.next().ok_or("--telemetry-max-events needs a value")?;
                opts.telemetry_cfg.max_events =
                    v.parse().map_err(|_| format!("bad event ceiling {v:?}"))?;
            }
            "--faults" => {
                let v = args
                    .next()
                    .ok_or("--faults needs a plan file (TOML or JSON)")?;
                let plan = FaultPlan::from_path(&v)
                    .map_err(|e| format!("cannot load fault plan {v:?}: {e}"))?;
                opts.faults = Some(plan);
            }
            "--monitor" => {
                let v = args.next().ok_or("--monitor needs a directory")?;
                opts.monitor = Some(v.into());
            }
            "--telemetry-format" => {
                let v = args
                    .next()
                    .ok_or("--telemetry-format needs jsonl or binary")?;
                opts.telemetry_format = match v.as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "binary" | "twb" => TraceFormat::Binary,
                    other => return Err(format!("--telemetry-format: unknown format {other:?}")),
                };
            }
            "--telemetry-shards" => {
                let v = args.next().ok_or("--telemetry-shards needs a count")?;
                let n: usize = v.parse().map_err(|_| format!("bad shard count {v:?}"))?;
                if n == 0 {
                    return Err("--telemetry-shards must be ≥ 1".into());
                }
                opts.telemetry_shards = n;
            }
            "--engine" => {
                let v = args.next().ok_or("--engine needs reference or batched")?;
                opts.engine = tagwatch_reader::EngineKind::parse(&v)
                    .ok_or_else(|| format!("--engine: unknown engine {v:?}"))?;
            }
            "--telemetry-sim-only" => opts.sim_only = true,
            "--quick" => opts.scale = 0,
            "--full" => opts.scale = 2,
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()))
            }
            fig => figs.push(fig.to_string()),
        }
    }
    if figs.is_empty() {
        return Err(usage());
    }
    if opts.telemetry_shards > 1 && opts.telemetry_format == TraceFormat::Jsonl {
        return Err(
            "--telemetry-shards needs --telemetry-format binary (JSONL capture is single-file)"
                .into(),
        );
    }
    Ok((figs, opts))
}

fn usage() -> String {
    "usage: repro <fig1|fig2|fig3|fig4|fig8|fig12|fig13|fig14|fig15|fig16|fig17|fig18|all|\
     gate|ablate-cover|ablate-gmm|ablate-cycle|ablate-truncate|ablate-epc|obs-run|fault-run|\
     trace-bench|speed-bench> \
     [--seed N] [--quick|--full] [--csv DIR] [--telemetry FILE] [--bench-json FILE] \
     [--trials N] [--telemetry-sample N] [--telemetry-max-events M] [--faults PLAN] \
     [--telemetry-sim-only] [--monitor DIR] [--telemetry-format jsonl|binary] \
     [--telemetry-shards N] [--engine reference|batched]\n\
     \n\
     --trials N repeats each figure N times at the same seed (reprinting its\n\
     output) and records per-trial wall stats + work rates in the bench snapshot;\n\
     sim-side counter deltas must be byte-equal across trials or the run fails.\n\
     --faults PLAN loads a tagwatch-fault plan (TOML or JSON) and applies it to the\n\
     fault-aware targets: obs-run injects it alongside the reference workload;\n\
     fault-run runs the differential baseline-vs-faulted pair and fails (exit 1)\n\
     if the plan's degradation envelope is violated.\n\
     --telemetry-sim-only drops wall-clock-derived events from the JSONL stream so\n\
     two same-seed runs produce byte-identical traces (determinism gating).\n\
     --monitor DIR streams online analyzer snapshots (status.json + metrics.prom,\n\
     see `obs watch`) into DIR while the run is in flight, and arms the run health\n\
     watchdog (staleness, sampling starvation, fault-envelope early warning);\n\
     alarms are also appended to the telemetry trace as alarm.* events.\n\
     --telemetry-format binary captures the trace as compact .twb instead of JSONL\n\
     (every obs subcommand reads either); --telemetry-shards N (binary only) splits\n\
     it across N self-describing shard files that `obs ingest` merges back\n\
     deterministically. trace-bench benchmarks the two encoders on a synthetic\n\
     stream and records bytes/event + throughput for the CI trace gate.\n\
     --engine selects the inventory round engine for engine-aware targets\n\
     (obs-run): the batched SoA hot path (default) or the scalar reference.\n\
     Sim-side observables are bit-identical either way. speed-bench times the\n\
     same workload on both engines back to back (asserting bit-identity) and\n\
     reports the speedup; `ci.sh --speed` records and gates it."
        .to_string()
}

fn run_fig(name: &str, o: &Opts) -> Result<(), String> {
    let quick = o.scale == 0;
    match name {
        "fig1" => {
            let duration = [8.0, 15.0, 40.0][o.scale as usize];
            println!("{}", fig01::run(o.seed, duration));
        }
        "fig2" => {
            let reps = [2, 10, 50][o.scale as usize];
            let r = fig02::run(o.seed, reps);
            o.write_csv("fig2", &csv::fig2(&r))?;
            println!("{r}");
        }
        "fig3" => println!("{}", fig03::run(o.seed, quick)),
        "fig4" => println!("{}", fig04::run(o.seed, quick)),
        "fig8" => {
            let duration = [30.0, 90.0, 300.0][o.scale as usize];
            println!("{}", fig08::run(o.seed, duration));
        }
        "fig12" => {
            let (n, d) = [(25, 40.0), (60, 90.0), (100, 240.0)][o.scale as usize];
            let r = fig12::run(o.seed, n, d);
            o.write_csv("fig12", &csv::fig12(&r))?;
            println!("{r}");
        }
        "fig13" => {
            let trials = [6, 20, 40][o.scale as usize];
            let r = fig13::run(o.seed, trials);
            o.write_csv("fig13", &csv::fig13(&r))?;
            println!("{r}");
        }
        "fig14" => {
            let reps = [2, 5, 15][o.scale as usize];
            let r = fig14::run(o.seed, reps);
            o.write_csv("fig14", &csv::fig14(&r))?;
            println!("{r}");
        }
        "fig15" => {
            let cycles = [3, 10, 50][o.scale as usize];
            let r = fig15::run(o.seed, 2, cycles);
            o.write_csv("fig15", &csv::feasibility(&r))?;
            println!("{r}");
        }
        "fig16" => {
            let cycles = [3, 10, 50][o.scale as usize];
            let r = fig15::run(o.seed, 5, cycles);
            o.write_csv("fig16", &csv::feasibility(&r))?;
            println!("{r}");
        }
        "fig17" => {
            let cycles = [100, 1000, 50_000][o.scale as usize];
            println!("{}", fig17::run(o.seed, cycles));
        }
        "fig18" => {
            let r = fig18::run(o.seed, o.scale < 2);
            o.write_csv("fig18", &csv::fig18(&r))?;
            println!("{r}");
        }
        "ablate-cover" => {
            let n = [40, 100, 400][o.scale as usize];
            println!("{}", ablations::cover(o.seed, n));
        }
        "ablate-gmm" => {
            let duration = [20.0, 45.0, 120.0][o.scale as usize];
            println!("{}", ablations::gmm_k(o.seed, duration));
        }
        "ablate-cycle" => println!("{}", ablations::cycle_len(o.seed)),
        "gate" => {
            let (parked, pieces) = [(80, 4), (150, 10), (250, 25)][o.scale as usize];
            println!("{}", gate::run(o.seed, parked, pieces));
        }
        "ablate-epc" => {
            let n = [60, 100, 400][o.scale as usize];
            println!("{}", ablations::epc_structure(o.seed, n));
        }
        "ablate-truncate" => {
            let sweeps = [20, 60, 200][o.scale as usize];
            println!("{}", ablations::truncation(o.seed, sweeps));
        }
        "obs-run" => {
            let (n, movers, cycles) = [(15, 1, 8), (40, 2, 20), (100, 5, 60)][o.scale as usize];
            println!(
                "{}",
                obs_run::run(o.seed, n, movers, cycles, 0.0, o.faults.as_ref(), o.engine)
            );
        }
        "speed-bench" => {
            let (n, movers, sim_s) =
                [(40, 2, 30.0), (40, 2, 120.0), (100, 5, 300.0)][o.scale as usize];
            println!("{}", speed_bench::run(o.seed, n, movers, sim_s));
        }
        "trace-bench" => {
            let events = [2_000, 20_000, 200_000][o.scale as usize];
            println!("{}", trace_bench::run(o.seed, events));
        }
        "fault-run" => {
            let plan = o
                .faults
                .as_ref()
                .ok_or("fault-run needs --faults <plan.toml|plan.json>")?;
            let (n, movers, cycles) = [(15, 1, 8), (40, 2, 20), (100, 5, 60)][o.scale as usize];
            let r = fault_run::run(o.seed, n, movers, cycles, plan);
            println!("{r}");
            if !r.passed() {
                return Err("fault-run: the faulted leg left the degradation envelope".into());
            }
        }
        other => return Err(format!("unknown figure {other:?}\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let (figs, opts) = match parse_args() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.telemetry.is_some() || opts.monitor.is_some() {
        let tel = Telemetry::global();
        tel.configure(opts.telemetry_cfg);
        // The inner sink: the JSONL trace when requested (wall-stripped
        // under --telemetry-sim-only), otherwise a no-op terminator so
        // --monitor works on its own.
        let inner: Box<dyn Sink + Send> = match &opts.telemetry {
            Some(path) => {
                // The capture sink: JSONL (historical default), single
                // .twb, or a k-way .twb shard set — chosen by flags, all
                // read back by the same obs decoder.
                let made: std::io::Result<Box<dyn Sink + Send>> = match opts.telemetry_format {
                    TraceFormat::Jsonl => JsonlSink::create(path).map(|s| {
                        let b: Box<dyn Sink + Send> = Box::new(s);
                        b
                    }),
                    TraceFormat::Binary if opts.telemetry_shards > 1 => {
                        ShardedSink::create(path, opts.telemetry_shards).map(|s| {
                            let b: Box<dyn Sink + Send> = Box::new(s);
                            b
                        })
                    }
                    TraceFormat::Binary => BinarySink::create(path).map(|s| {
                        let b: Box<dyn Sink + Send> = Box::new(s);
                        b
                    }),
                };
                match made {
                    Ok(sink) if opts.sim_only => Box::new(SimOnlySink::new(sink)),
                    Ok(sink) => sink,
                    Err(e) => {
                        eprintln!("cannot open telemetry file {path:?}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => Box::new(NullSink),
        };
        if let Some(dir) = &opts.monitor {
            let cfg = MonitorConfig {
                watchdog: WatchdogConfig {
                    sample_every_n_rounds: opts.telemetry_cfg.sample_every_n_rounds,
                    envelope: opts.faults.as_ref().map(|p| p.envelope),
                    ..WatchdogConfig::default()
                },
                ..MonitorConfig::default()
            };
            match MonitorSink::create(dir, inner, cfg) {
                Ok(sink) => tel.install(Box::new(sink)),
                Err(e) => {
                    eprintln!("cannot create monitor directory {dir:?}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            tel.install(inner);
        }
    } else if opts.bench_json.is_some() {
        // No sink wanted, but the snapshot needs the registry aggregating.
        Telemetry::global().set_enabled(true);
    }
    let order = [
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig8",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "gate",
        "ablate-cover",
        "ablate-gmm",
        "ablate-cycle",
        "ablate-truncate",
        "ablate-epc",
    ];
    let expanded: Vec<String> = if figs.iter().any(|f| f == "all") {
        // "all" = every figure plus the supplementary experiments; any
        // other explicitly named targets are already covered.
        order.iter().map(ToString::to_string).collect()
    } else {
        figs
    };
    let run_start = wall_now();
    let mut figures: BTreeMap<String, FigureBench> = BTreeMap::new();
    // With `--trials N` the registry keeps accumulating across trials, so
    // the snapshot's counters are rebuilt from per-trial deltas (asserted
    // byte-identical) and stay comparable with single-trial baselines.
    let mut single_trial_counters: BTreeMap<String, u64> = BTreeMap::new();
    for (i, fig) in expanded.iter().enumerate() {
        if i > 0 {
            println!();
        }
        let mut trial_walls: Vec<f64> = Vec::new();
        let mut canonical_delta: Option<BTreeMap<String, u64>> = None;
        for trial in 0..opts.trials {
            if trial > 0 {
                eprintln!(
                    "-- {fig}: trial {}/{} (same seed; only the wall clock varies)",
                    trial + 1,
                    opts.trials
                );
            }
            let tel = Telemetry::global();
            let counters_before = registry_counters();
            let offered_before = tel.offered();
            let fig_start = wall_now();
            if let Err(msg) = run_fig(fig, &opts) {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
            trial_walls.push(fig_start.elapsed_seconds());
            // The harness-side work counter: events this trial offered to
            // the telemetry plane, before any sampling or drop — so the
            // figure is identical whatever sink throttling is in force.
            // Flushed unconditionally (a no-op on a disabled handle): a
            // trace must carry the same events whether or not the same
            // run also asked for --bench-json.
            let offered = tel.offered() - offered_before;
            tel.incr_by("perf.work.telemetry_events", offered);
            if opts.bench_json.is_none() {
                continue;
            }
            let delta: BTreeMap<String, u64> = registry_counters()
                .into_iter()
                .map(|(k, v)| {
                    let before = counters_before.get(&k).copied().unwrap_or(0);
                    (k, v - before)
                })
                .collect();
            match &canonical_delta {
                None => canonical_delta = Some(delta),
                Some(first) if *first != delta => {
                    let culprit = first
                        .iter()
                        .find(|(k, v)| delta.get(*k) != Some(v))
                        .map(|(k, _)| k.as_str())
                        .or_else(|| {
                            delta
                                .keys()
                                .find(|k| !first.contains_key(*k))
                                .map(String::as_str)
                        })
                        .unwrap_or("?");
                    eprintln!(
                        "{fig}: trial {} did different sim work than trial 1 \
                         (counter {culprit:?} diverged) — workload is not \
                         deterministic, refusing to average trials",
                        trial + 1
                    );
                    return ExitCode::FAILURE;
                }
                Some(_) => {}
            }
        }
        if opts.bench_json.is_some() {
            let delta = canonical_delta.unwrap_or_default();
            let count = |k: &str| delta.get(k).copied().unwrap_or(0);
            figures.insert(
                fig.clone(),
                FigureBench::from_trials(
                    &trial_walls,
                    count("phase2.reports"),
                    count("perf.work.slots"),
                    count("perf.work.channel_evals"),
                ),
            );
            for (k, v) in delta {
                *single_trial_counters.entry(k).or_insert(0) += v;
            }
        }
    }
    if opts.telemetry.is_some() || opts.monitor.is_some() {
        let tel = Telemetry::global();
        // Close the stream with the delivery/suppression footer (also
        // flushes every sink, which writes the final monitor snapshot)
        // so offline analysis knows whether the trace is complete.
        let footer = tel.finish();
        if let Some(dir) = &opts.monitor {
            eprintln!(
                "monitor snapshot written to {:?}",
                dir.join(tagwatch_monitor::STATUS_FILE)
            );
        }
        if let Some(path) = &opts.telemetry {
            println!();
            print!("{}", telemetry_report::summary(&tel.snapshot()));
            eprintln!("telemetry events written to {path:?}");
            if !footer.is_complete() {
                let mut parts = Vec::new();
                if footer.sampled_out > 0 {
                    parts.push(format!(
                        "{} events sampled out (1-in-{} rounds kept)",
                        footer.sampled_out, footer.sample_every_n_rounds
                    ));
                }
                if footer.dropped > 0 {
                    parts.push(format!(
                        "{} dropped at the {}-event ceiling",
                        footer.dropped, footer.max_events
                    ));
                }
                eprintln!(
                    "telemetry stream throttled: {} (registry aggregates stay exact)",
                    parts.join(", ")
                );
            }
        }
    }
    if let Some(path) = &opts.bench_json {
        let scale = ["quick", "default", "full"][opts.scale as usize];
        let mut snap =
            BenchSnapshot::from_registry(&Telemetry::global().snapshot(), opts.seed, scale);
        snap.figures = figures;
        snap.trials = opts.trials;
        // One trial's worth of work, whatever --trials was (the registry
        // itself holds the accumulated total across trials).
        snap.counters = single_trial_counters;
        snap.wall_seconds = run_start.elapsed_seconds();
        if let Err(e) = snap.save(path) {
            eprintln!("cannot write bench snapshot {path:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("bench snapshot written to {path:?}");
    }
    ExitCode::SUCCESS
}

/// All counter totals from the global registry (empty while telemetry is
/// disabled). The per-trial delta of this map is the run's sim-side work
/// fingerprint.
fn registry_counters() -> BTreeMap<String, u64> {
    Telemetry::global()
        .snapshot()
        .counters()
        .map(|(n, v)| (n.to_string(), v))
        .collect()
}
