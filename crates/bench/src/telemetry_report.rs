//! End-of-run telemetry summary for the `repro` CLI.
//!
//! Renders a [`MetricsRegistry`] snapshot as a human-readable digest:
//! duration percentiles for the span-backed histograms (cycle, Phase I,
//! Phase II, inventory round, schedule compute), the per-phase IRR
//! implied by the counters, and a dump of every counter so nothing the
//! run recorded is invisible.

use std::fmt::Write as _;
use tagwatch_telemetry::{Histogram, MetricsRegistry, COMPUTE_SECONDS_OBSERVATION};

/// Histograms promoted to the percentile table, with display labels.
/// Everything else still shows up in the counter/histogram dumps.
const HEADLINE: &[(&str, &str)] = &[
    ("cycle.duration", "cycle"),
    ("phase1.duration", "phase 1"),
    ("phase2.duration", "phase 2"),
    ("round.duration", "round"),
    (COMPUTE_SECONDS_OBSERVATION, "compute"),
];

fn fmt_seconds(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn percentile_row(label: &str, h: &Histogram) -> String {
    let p = |q: f64| h.percentile(q).map_or_else(|| "-".to_string(), fmt_seconds);
    format!(
        "  {label:<10} n={:<8} p50={:<10} p95={:<10} p99={:<10} mean={}\n",
        h.count(),
        p(50.0),
        p(95.0),
        p(99.0),
        fmt_seconds(h.mean()),
    )
}

/// Per-phase IRR (reads per second): a phase's report counter divided by
/// the total simulated time that phase's histogram accumulated. `None`
/// when the run recorded no such phase.
fn phase_irr(reg: &MetricsRegistry, phase: &str) -> Option<f64> {
    let reports = reg.counter(&format!("{phase}.reports"))?;
    let h = reg.histogram(&format!("{phase}.duration"))?;
    if h.sum() <= 0.0 {
        return None;
    }
    Some(reports as f64 / h.sum())
}

/// Formats the registry snapshot as the end-of-run summary block.
pub fn summary(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    if reg.is_empty() {
        out.push_str("telemetry: no events recorded\n");
        return out;
    }
    out.push_str("telemetry summary\n");

    out.push_str(" durations\n");
    for &(name, label) in HEADLINE {
        if let Some(h) = reg.histogram(name) {
            out.push_str(&percentile_row(label, h));
        }
    }

    let irrs: Vec<(&str, f64)> = [("phase1", "phase 1"), ("phase2", "phase 2")]
        .iter()
        .filter_map(|&(key, label)| phase_irr(reg, key).map(|v| (label, v)))
        .collect();
    if !irrs.is_empty() {
        out.push_str(" IRR (reads per simulated second)\n");
        for (label, irr) in irrs {
            let _ = writeln!(out, "  {label:<10} {irr:.2}/s");
        }
    }

    let mut wrote_header = false;
    for (name, total) in reg.counters() {
        if !wrote_header {
            out.push_str(" counters\n");
            wrote_header = true;
        }
        let _ = writeln!(out, "  {name:<32} {total}");
    }

    let mut wrote_header = false;
    for (name, h) in reg.histograms() {
        if HEADLINE.iter().any(|&(n, _)| n == name) {
            continue;
        }
        if !wrote_header {
            out.push_str(" other histograms\n");
            wrote_header = true;
        }
        let _ = writeln!(
            out,
            "  {name:<32} n={} sum={:.3} mean={:.4}",
            h.count(),
            h.sum(),
            h.mean()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for k in 0..100 {
            reg.observe("cycle.duration", 5.0 + k as f64 * 0.01);
            reg.observe("phase1.duration", 2.0);
            reg.observe("round.duration", 0.04);
        }
        reg.incr_by("phase1.reports", 4000);
        reg.incr_by("cycle.count", 100);
        reg.observe("round.slots", 64.0);
        reg
    }

    #[test]
    fn summary_contains_headline_percentiles_and_irr() {
        let s = summary(&sample_registry());
        assert!(s.contains("telemetry summary"), "{s}");
        assert!(s.contains("p50="), "{s}");
        assert!(s.contains("p95="), "{s}");
        assert!(s.contains("p99="), "{s}");
        assert!(s.contains("cycle"), "{s}");
        assert!(s.contains("round"), "{s}");
        // 4000 reads over 200 simulated seconds of Phase I.
        assert!(s.contains("20.00/s"), "{s}");
        assert!(s.contains("cycle.count"), "{s}");
        assert!(s.contains("round.slots"), "{s}");
    }

    #[test]
    fn empty_registry_reports_no_events() {
        let s = summary(&MetricsRegistry::new());
        assert!(s.contains("no events recorded"));
    }

    #[test]
    fn irr_requires_both_counter_and_histogram() {
        let mut reg = MetricsRegistry::new();
        reg.incr_by("phase1.reports", 10);
        assert!(phase_irr(&reg, "phase1").is_none());
        reg.observe("phase1.duration", 2.5);
        let irr = phase_irr(&reg, "phase1").unwrap();
        assert!((irr - 4.0).abs() < 1e-9);
    }
}
