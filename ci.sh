#!/usr/bin/env bash
# Repo CI gate. Run from the workspace root.
#
#   ./ci.sh          # fmt + clippy + lint + deep lint + tier-1 (release
#                    # build + tests) + observability gate
#   ./ci.sh --tier1  # tier-1 gate only (what the roadmap requires)
#   ./ci.sh --lint   # static-analysis gate only: the tagwatch-lint rule
#                    # catalog (determinism, panic-policy, unsafe-free, …)
#   ./ci.sh --obs    # observability gate only: record the obs-run
#                    # reference workload, diff it against BENCH_1.json,
#                    # and archive the accepted snapshot in bench-history/
#   ./ci.sh --faults # fault-injection gate only: fault integration tests,
#                    # same-seed byte-identical faulted traces, envelope
#                    # check on every shipped plan, and an obs diff of the
#                    # reference faulted workload against BENCH_FAULT_1.json
#   ./ci.sh --monitor # live-monitor gate only: obs-run with --monitor,
#                    # final snapshot must match the batch analyzers
#                    # byte-for-byte (obs watch --check), the exposition
#                    # must parse, and sim-side metrics must stay at +0.0%
#   ./ci.sh --perf   # performance-accounting gate only: 5-trial obs-run,
#                    # obs compare against the newest bench-history
#                    # snapshot (same sim work required; a median work
#                    # rate may only regress beyond k·stddev of the
#                    # trial noise band)
#   ./ci.sh --deeplint # deep-lint gate only: the workspace-level rule
#                    # family (rng-stream-discipline, race-surface,
#                    # float-reduction-order, sim-boundary) must be clean
#                    # modulo tests/lint/deep_baseline.txt, and the
#                    # `lint graph --json` export must self-validate and
#                    # be byte-identical across two runs
#   ./ci.sh --speed  # hot-path speed gate only: 5-trial obs-run (after a
#                    # discarded warmup) must do byte-identical sim work
#                    # to the newest bench-history baseline AND hit the
#                    # tentpole speedup bar on reports_per_wall_second
#                    # (obs compare --require-speedup, best-trial rates);
#                    # the speed-bench engine A/B is recorded alongside
#                    # and archived as bench-history/SPEED_*.json
#   ./ci.sh --trace  # trace-plane gate only: the compact .twb capture of
#                    # the reference workload must yield byte-identical
#                    # analyzer verdicts to JSONL, `obs pack` must round-
#                    # trip to the captured bytes, a 4-shard capture must
#                    # merge bit-identical to 1 shard, the .twb file must
#                    # hit the 5x size bar, and the encoder benchmark
#                    # records a snapshot figure
set -euo pipefail
cd "$(dirname "$0")"

tier1_only=false
obs_only=false
lint_only=false
deeplint_only=false
faults_only=false
monitor_only=false
perf_only=false
trace_only=false
speed_only=false
case "${1:-}" in
    --tier1) tier1_only=true ;;
    --obs) obs_only=true ;;
    --lint) lint_only=true ;;
    --deeplint) deeplint_only=true ;;
    --faults) faults_only=true ;;
    --monitor) monitor_only=true ;;
    --perf) perf_only=true ;;
    --trace) trace_only=true ;;
    --speed) speed_only=true ;;
esac

regressions_check() {
    # Proptest appends newly-shrunk failure cases to *.proptest-regressions
    # files next to the test that found them. Those pins are part of the
    # test suite: an untracked one means a real failure case exists only on
    # one developer's disk.
    local untracked
    untracked=$(git ls-files --others --exclude-standard -- '*.proptest-regressions')
    if [[ -n "$untracked" ]]; then
        echo "error: untracked proptest regression file(s):" >&2
        echo "$untracked" >&2
        echo "proptest pinned new failure case(s) — commit the file(s) above." >&2
        exit 1
    fi
}

lint_gate() {
    # The repo's own static-analysis pass (crates/lint): file:line:col
    # diagnostics, exit 1 on findings. See DESIGN.md § Static analysis.
    echo "==> lint: cargo run --release -p tagwatch-lint --bin lint"
    cargo run --release -p tagwatch-lint --bin lint
}

deeplint_gate() {
    # The workspace-level rule family: symbol graph + reachability rules
    # (rng-stream-discipline, race-surface, float-reduction-order,
    # sim-boundary) must be clean modulo the committed baseline, and the
    # schema-versioned `lint graph --json` export must self-validate and
    # be byte-deterministic. See DESIGN.md § Deep analysis.
    echo "==> deeplint: cargo build --release -p tagwatch-lint"
    cargo build --release -p tagwatch-lint
    mkdir -p out

    echo "==> deeplint: lint --deep --baseline tests/lint/deep_baseline.txt"
    ./target/release/lint --deep --baseline tests/lint/deep_baseline.txt

    echo "==> deeplint: lint graph --json must validate and be byte-stable"
    ./target/release/lint graph --json --check > out/lint-graph-a.json
    ./target/release/lint graph --json > out/lint-graph-b.json
    cmp out/lint-graph-a.json out/lint-graph-b.json
    echo "deeplint gate passed."
}

obs_gate() {
    # Record the seeded reference workload with a telemetry trace and a
    # BENCH snapshot, validate the trace with `obs report`, then gate the
    # snapshot against the committed baseline with `obs diff` (exit 2 on
    # regression fails CI). Artifacts land under the gitignored out/.
    local seed=7
    local baseline=BENCH_1.json
    echo "==> obs: cargo build --release (repro + obs)"
    cargo build --release -p tagwatch-bench -p tagwatch-obs
    mkdir -p out

    echo "==> obs: recording reference workload (obs-run, seed $seed)"
    ./target/release/repro obs-run --quick --seed "$seed" \
        --telemetry out/obs-ci.jsonl --bench-json out/BENCH_current.json

    echo "==> obs: validating trace"
    ./target/release/obs report out/obs-ci.jsonl

    if [[ ! -f "$baseline" ]] || grep -q '"provisional": true' "$baseline"; then
        # Bootstrap: no reviewed baseline yet. Prove the workload is
        # deterministic (two identical-seed runs must diff clean), then
        # promote the fresh snapshot — still marked provisional — for a
        # human to review and commit.
        echo "==> obs: baseline missing or provisional — determinism self-check"
        ./target/release/repro obs-run --quick --seed "$seed" \
            --bench-json out/BENCH_check.json >/dev/null
        ./target/release/obs diff out/BENCH_current.json out/BENCH_check.json
        sed 's/"provisional": false/"provisional": true/' \
            out/BENCH_current.json > "$baseline"
        echo "==> obs: promoted fresh snapshot to $baseline (provisional;"
        echo "    review the numbers, flip \"provisional\" to false, commit)"
    else
        echo "==> obs: gating against $baseline"
        ./target/release/obs diff "$baseline" out/BENCH_current.json
        archive_bench out/BENCH_current.json
    fi
    echo "obs gate passed."
}

archive_bench() {
    # Append the just-accepted snapshot to the committed bench-history/
    # archive under the next monotonic name, so `obs trend` has a real
    # multi-point series. Skip when it is byte-identical to the newest
    # archived snapshot — re-running CI on an unchanged tree should not
    # grow the history.
    local snap=$1 latest n next
    mkdir -p bench-history
    latest=$(ls bench-history/BENCH_*.json 2>/dev/null | sort | tail -n1 || true)
    if [[ -n "$latest" ]] && cmp -s "$latest" "$snap"; then
        echo "==> obs: bench-history unchanged ($latest)"
        return 0
    fi
    if [[ -n "$latest" ]]; then
        n=$(basename "$latest" .json); n=${n#BENCH_}; n=$((10#$n + 1))
    else
        n=1
    fi
    next=$(printf 'bench-history/BENCH_%04d.json' "$n")
    cp "$snap" "$next"
    echo "==> obs: archived accepted snapshot as $next (commit it)"
    # Informational: the trajectory so far (never fails the gate).
    ./target/release/obs trend bench-history/BENCH_*.json || true
}

monitor_gate() {
    # The live observability plane must be a pure observer: run the
    # reference workload with --monitor, check the final MonitorSnapshot
    # against the batch analyzers byte-for-byte and the exposition file
    # for well-formedness (both via `obs watch --check`), then prove the
    # sim-side BENCH metrics are untouched by monitoring.
    local seed=7
    local baseline=BENCH_1.json
    echo "==> monitor: cargo build --release (repro + obs)"
    cargo build --release -p tagwatch-bench -p tagwatch-obs
    mkdir -p out

    echo "==> monitor: reference workload with --monitor (seed $seed)"
    ./target/release/repro obs-run --quick --seed "$seed" \
        --telemetry out/monitor-ci.jsonl --monitor out/monitor-ci \
        --bench-json out/BENCH_monitor.json

    echo "==> monitor: final snapshot vs batch analyzers + exposition parse"
    ./target/release/obs watch out/monitor-ci --check out/monitor-ci.jsonl

    if [[ -f "$baseline" ]] && ! grep -q '"provisional": true' "$baseline"; then
        echo "==> monitor: sim-side metrics must be identical to $baseline"
        ./target/release/obs diff --sim-only --threshold 0 \
            "$baseline" out/BENCH_monitor.json
    else
        echo "==> monitor: no reviewed $baseline yet — skipping overhead diff"
    fi
    echo "monitor gate passed."
}

fault_gate() {
    # Fault-injection fast path: the e2e fault scenarios, a determinism
    # proof on the reference faulted workload (same seed + plan → byte-
    # identical sim-only traces), window attribution via `obs report`,
    # the degradation envelope on every shipped plan, and a BENCH gate
    # against the committed faulted baseline.
    local seed=7
    local plan=examples/faults/outage.toml
    local baseline=BENCH_FAULT_1.json
    echo "==> faults: cargo build --release (repro + obs)"
    cargo build --release -p tagwatch-bench -p tagwatch-obs
    mkdir -p out

    echo "==> faults: fault integration tests"
    cargo test --release -q --test integration_faults
    regressions_check

    echo "==> faults: reference faulted workload ($plan, seed $seed), twice"
    ./target/release/repro obs-run --quick --seed "$seed" --faults "$plan" \
        --telemetry-sim-only --telemetry out/fault-ci-a.jsonl \
        --bench-json out/BENCH_FAULT_current.json
    ./target/release/repro obs-run --quick --seed "$seed" --faults "$plan" \
        --telemetry-sim-only --telemetry out/fault-ci-b.jsonl >/dev/null
    echo "==> faults: same-seed faulted traces must be byte-identical"
    cmp out/fault-ci-a.jsonl out/fault-ci-b.jsonl

    echo "==> faults: obs must attribute the injection window"
    ./target/release/obs report out/fault-ci-a.jsonl | tee out/fault-ci-report.txt
    grep -q 'faults: .* windows' out/fault-ci-report.txt

    echo "==> faults: degradation envelope on every shipped plan"
    local p
    for p in examples/faults/*.toml; do
        ./target/release/repro fault-run --quick --seed "$seed" --faults "$p"
    done

    if [[ ! -f "$baseline" ]] || grep -q '"provisional": true' "$baseline"; then
        # Bootstrap, mirroring obs_gate: promote a fresh snapshot (still
        # provisional) for a human to review and commit. Determinism was
        # already proven by the byte-identical trace check above.
        sed 's/"provisional": false/"provisional": true/' \
            out/BENCH_FAULT_current.json > "$baseline"
        echo "==> faults: promoted fresh snapshot to $baseline (provisional;"
        echo "    review the numbers, flip \"provisional\" to false, commit)"
    else
        echo "==> faults: gating against $baseline"
        ./target/release/obs diff "$baseline" out/BENCH_FAULT_current.json
    fi
    echo "faults gate passed."
}

perf_gate() {
    # Performance-accounting gate: a fresh --trials run must do byte-
    # identical sim work to the newest archived snapshot (`obs compare`
    # exits 2 "not comparable" otherwise), and its median work rates may
    # only drop beyond k·stddev of the trial noise band AND by more than
    # the relative floor — plain timer jitter never fails CI.
    local seed=7 trials=5 baseline
    echo "==> perf: cargo build --release (repro + obs)"
    cargo build --release -p tagwatch-bench -p tagwatch-obs
    mkdir -p out

    baseline=$(ls bench-history/BENCH_*.json 2>/dev/null | sort | tail -n1 || true)
    if [[ -z "$baseline" ]]; then
        echo "==> perf: no bench-history/ archive yet — run ./ci.sh --obs first; skipping"
        return 0
    fi
    if ! grep -q '"perf.work.' "$baseline"; then
        echo "==> perf: $baseline predates the perf.work.* counters — bootstrap skip"
        echo "    (the next ./ci.sh --obs archive will carry them)"
        return 0
    fi

    # --telemetry matches the sink configuration the archived baseline
    # was recorded under (obs_gate), so the wall clocks compare
    # like-for-like; the sim-side counters are sink-invariant either way.
    echo "==> perf: $trials-trial reference workload (obs-run, seed $seed)"
    ./target/release/repro obs-run --quick --seed "$seed" --trials "$trials" \
        --telemetry out/perf-ci.jsonl --bench-json out/BENCH_perf.json >/dev/null

    echo "==> perf: obs compare $baseline out/BENCH_perf.json"
    ./target/release/obs compare "$baseline" out/BENCH_perf.json
    echo "perf gate passed."
}

speed_gate() {
    # Hot-path round-engine gate. Two proofs, one run: a fresh 5-trial
    # obs-run must (1) do byte-identical sim work to the *frozen*
    # pre-rebuild baseline — `obs compare` stage-1 comparability, every
    # counter including perf.work.* — and (2) hit the tentpole speedup
    # bar on reports_per_wall_second (--require-speedup, judged on
    # best-trial rates so a loaded host cannot flake the bar; the
    # baseline is single-trial, where best == median). A discarded
    # warmup run precedes the gated one so a cold binary or page cache
    # never eats the margin. The speed-bench engine A/B (reference vs
    # batched, with the report streams asserted bit-identical
    # in-process) is recorded alongside and archived under the SPEED_
    # prefix, which perf_gate's newest-BENCH_* lookup never matches.
    #
    # The baseline is deliberately PINNED, not "newest archive": the
    # obs gate re-archives a snapshot of the current (already fast)
    # code on every counter change, so a rolling baseline would erase
    # the very speedup this gate exists to preserve. BENCH_0002 is the
    # last pre-rebuild snapshot; comparability against it doubles as a
    # sim-drift detector. If a future change legitimately alters the
    # workload's counters, the gate fails loudly at stage 1 and the
    # pin must be re-based consciously (new frozen baseline + bar).
    local seed=7 trials=5 factor=5.0 baseline=bench-history/BENCH_0002.json
    echo "==> speed: cargo build --release (repro + obs)"
    cargo build --release -p tagwatch-bench -p tagwatch-obs
    mkdir -p out

    if [[ ! -f "$baseline" ]]; then
        echo "==> speed: pinned baseline $baseline missing — skipping"
        return 0
    fi
    if ! grep -q '"perf.work.' "$baseline"; then
        echo "==> speed: $baseline predates the perf.work.* counters — bootstrap skip"
        return 0
    fi

    echo "==> speed: warmup run (discarded)"
    ./target/release/repro obs-run --quick --seed "$seed" >/dev/null
    echo "==> speed: $trials-trial batched obs-run (seed $seed)"
    ./target/release/repro obs-run --quick --seed "$seed" --trials "$trials" \
        --bench-json out/BENCH_speed.json >/dev/null

    echo "==> speed: obs compare vs $baseline, requiring ${factor}x on reports/s"
    ./target/release/obs compare "$baseline" out/BENCH_speed.json \
        --require-speedup "figures.obs-run.reports_per_wall_second:${factor}"

    echo "==> speed: engine A/B microbenchmark (speed-bench, seed $seed)"
    ./target/release/repro speed-bench --quick --seed "$seed" \
        --bench-json out/BENCH_speedbench.json
    archive_speed out/BENCH_speedbench.json
    echo "speed gate passed."
}

archive_speed() {
    # archive_bench's sibling for speed-bench snapshots, under the
    # distinct SPEED_ prefix: perf_gate and speed_gate resolve their
    # baseline as the newest BENCH_*.json, which must never pick up an
    # engine-A/B snapshot (different workload, incomparable counters).
    local snap=$1 latest n next
    mkdir -p bench-history
    latest=$(ls bench-history/SPEED_*.json 2>/dev/null | sort | tail -n1 || true)
    if [[ -n "$latest" ]] && cmp -s "$latest" "$snap"; then
        echo "==> speed: bench-history unchanged ($latest)"
        return 0
    fi
    if [[ -n "$latest" ]]; then
        n=$(basename "$latest" .json); n=${n#SPEED_}; n=$((10#$n + 1))
    else
        n=1
    fi
    next=$(printf 'bench-history/SPEED_%04d.json' "$n")
    cp "$snap" "$next"
    echo "==> speed: archived speed-bench snapshot as $next (commit it)"
}

trace_gate() {
    # Trace-plane gate: the compact binary format must be a drop-in
    # replacement for JSONL capture. Same-seed sim-only runs are byte-
    # deterministic, so every check below is an exact `cmp`, never a
    # tolerance.
    local seed=7
    echo "==> trace: cargo build --release (repro + obs)"
    cargo build --release -p tagwatch-bench -p tagwatch-obs
    mkdir -p out

    echo "==> trace: reference workload captured as JSONL and .twb (seed $seed, sim-only)"
    ./target/release/repro obs-run --quick --seed "$seed" \
        --telemetry-sim-only --telemetry out/trace-ci.jsonl >/dev/null
    ./target/release/repro obs-run --quick --seed "$seed" \
        --telemetry-sim-only --telemetry-format binary \
        --telemetry out/trace-ci.twb >/dev/null

    echo "==> trace: analyzer verdicts must be byte-identical across formats"
    ./target/release/obs report --json out/trace-ci.jsonl > out/trace-report-jsonl.json
    ./target/release/obs report --json out/trace-ci.twb > out/trace-report-twb.json
    cmp out/trace-report-jsonl.json out/trace-report-twb.json

    echo "==> trace: obs pack must round-trip the JSONL capture to the captured .twb bytes"
    ./target/release/obs pack out/trace-ci.jsonl -o out/trace-ci-packed.twb
    cmp out/trace-ci-packed.twb out/trace-ci.twb

    echo "==> trace: 4-shard capture must merge bit-identical to the 1-shard file"
    ./target/release/repro obs-run --quick --seed "$seed" \
        --telemetry-sim-only --telemetry-format binary --telemetry-shards 4 \
        --telemetry out/trace-ci-sharded.twb >/dev/null
    ./target/release/obs ingest --format twb \
        out/trace-ci-sharded.twb.shard0 out/trace-ci-sharded.twb.shard1 \
        out/trace-ci-sharded.twb.shard2 out/trace-ci-sharded.twb.shard3 \
        -o out/trace-ci-merged.twb
    cmp out/trace-ci-merged.twb out/trace-ci.twb

    echo "==> trace: .twb must be at least 5x smaller than the JSONL capture"
    local jsonl_bytes twb_bytes
    jsonl_bytes=$(wc -c < out/trace-ci.jsonl)
    twb_bytes=$(wc -c < out/trace-ci.twb)
    if (( jsonl_bytes < 5 * twb_bytes )); then
        echo "error: compression below the 5x bar:" \
            "$jsonl_bytes JSONL bytes vs $twb_bytes .twb bytes" >&2
        exit 1
    fi
    echo "    $jsonl_bytes JSONL bytes -> $twb_bytes .twb bytes" \
        "($(( jsonl_bytes / twb_bytes ))x smaller)"

    echo "==> trace: encoder benchmark figure (trace-bench, seed $seed)"
    ./target/release/repro trace-bench --quick --seed "$seed" \
        --bench-json out/BENCH_trace.json
    echo "trace gate passed."
}

if $obs_only; then
    obs_gate
    exit 0
fi

if $faults_only; then
    fault_gate
    exit 0
fi

if $monitor_only; then
    monitor_gate
    exit 0
fi

if $lint_only; then
    lint_gate
    exit 0
fi

if $deeplint_only; then
    deeplint_gate
    exit 0
fi

if $perf_only; then
    perf_gate
    exit 0
fi

if $trace_only; then
    trace_gate
    exit 0
fi

if $speed_only; then
    speed_gate
    exit 0
fi

if ! $tier1_only; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings

    lint_gate
    deeplint_gate
fi

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

if ! $tier1_only; then
    regressions_check
    obs_gate
    fault_gate
    monitor_gate
    perf_gate
    trace_gate
    speed_gate
fi

echo "CI gate passed."
