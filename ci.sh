#!/usr/bin/env bash
# Repo CI gate. Run from the workspace root.
#
#   ./ci.sh          # fmt + clippy + lint + tier-1 (release build + tests)
#                    # + observability gate
#   ./ci.sh --tier1  # tier-1 gate only (what the roadmap requires)
#   ./ci.sh --lint   # static-analysis gate only: the tagwatch-lint rule
#                    # catalog (determinism, panic-policy, unsafe-free, …)
#   ./ci.sh --obs    # observability gate only: record the obs-run
#                    # reference workload and diff it against BENCH_1.json
set -euo pipefail
cd "$(dirname "$0")"

tier1_only=false
obs_only=false
lint_only=false
case "${1:-}" in
    --tier1) tier1_only=true ;;
    --obs) obs_only=true ;;
    --lint) lint_only=true ;;
esac

lint_gate() {
    # The repo's own static-analysis pass (crates/lint): file:line:col
    # diagnostics, exit 1 on findings. See DESIGN.md § Static analysis.
    echo "==> lint: cargo run --release -p tagwatch-lint --bin lint"
    cargo run --release -p tagwatch-lint --bin lint
}

obs_gate() {
    # Record the seeded reference workload with a telemetry trace and a
    # BENCH snapshot, validate the trace with `obs report`, then gate the
    # snapshot against the committed baseline with `obs diff` (exit 2 on
    # regression fails CI). Artifacts land under the gitignored out/.
    local seed=7
    local baseline=BENCH_1.json
    echo "==> obs: cargo build --release (repro + obs)"
    cargo build --release --bin repro --bin obs
    mkdir -p out

    echo "==> obs: recording reference workload (obs-run, seed $seed)"
    ./target/release/repro obs-run --quick --seed "$seed" \
        --telemetry out/obs-ci.jsonl --bench-json out/BENCH_current.json

    echo "==> obs: validating trace"
    ./target/release/obs report out/obs-ci.jsonl

    if [[ ! -f "$baseline" ]] || grep -q '"provisional": true' "$baseline"; then
        # Bootstrap: no reviewed baseline yet. Prove the workload is
        # deterministic (two identical-seed runs must diff clean), then
        # promote the fresh snapshot — still marked provisional — for a
        # human to review and commit.
        echo "==> obs: baseline missing or provisional — determinism self-check"
        ./target/release/repro obs-run --quick --seed "$seed" \
            --bench-json out/BENCH_check.json >/dev/null
        ./target/release/obs diff out/BENCH_current.json out/BENCH_check.json
        sed 's/"provisional": false/"provisional": true/' \
            out/BENCH_current.json > "$baseline"
        echo "==> obs: promoted fresh snapshot to $baseline (provisional;"
        echo "    review the numbers, flip \"provisional\" to false, commit)"
    else
        echo "==> obs: gating against $baseline"
        ./target/release/obs diff "$baseline" out/BENCH_current.json
    fi
    echo "obs gate passed."
}

if $obs_only; then
    obs_gate
    exit 0
fi

if $lint_only; then
    lint_gate
    exit 0
fi

if ! $tier1_only; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings

    lint_gate
fi

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

if ! $tier1_only; then
    obs_gate
fi

echo "CI gate passed."
