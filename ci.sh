#!/usr/bin/env bash
# Repo CI gate. Run from the workspace root.
#
#   ./ci.sh          # fmt + clippy + tier-1 (release build + tests)
#   ./ci.sh --tier1  # tier-1 gate only (what the roadmap requires)
set -euo pipefail
cd "$(dirname "$0")"

tier1_only=false
if [[ "${1:-}" == "--tier1" ]]; then
    tier1_only=true
fi

if ! $tier1_only; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "CI gate passed."
