//! End-to-end fault-injection scenarios: every shipped example plan in
//! `examples/faults/` is run through a differential pair (clean vs
//! faulted, same seed) at the `--quick` scale and judged against the
//! envelope the plan itself declares — one test per fault family
//! (antenna outage, burst noise, command loss, reader restart), plus the
//! `obs` attribution contract and the faulted extension of the
//! byte-identical determinism self-check.
//!
//! The seed derivation deliberately mirrors
//! `repro fault-run --quick --seed 7` (epcs from `seed ^ 0x0B5`, reader
//! RNG from `seed ^ 0x0B6`), so a failure here reproduces on the CLI
//! verbatim.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::prelude::*;
use tagwatch_fault::{CycleObservation, EnvelopeReport, FaultPlan, PlanInjector};
use tagwatch_obs::analyze::{AnalyzeConfig, RunReport};
use tagwatch_obs::model::Trace;
use tagwatch_reader::{Reader, ReaderConfig};
use tagwatch_scene::presets;
use tagwatch_telemetry::{Event, MemorySink, SimOnlySink, Telemetry};

/// `repro fault-run --quick`: 15 tags, 1 mobile, 8 cycles ≈ 40 s simulated.
const TAGS: usize = 15;
const MOBILE: usize = 1;
const CYCLES: usize = 8;
const SEED: u64 = 7;

fn shipped_plan(name: &str) -> FaultPlan {
    let path = format!("{}/examples/faults/{name}.toml", env!("CARGO_MANIFEST_DIR"));
    FaultPlan::from_path(&path).unwrap_or_else(|e| panic!("shipped plan {name}: {e}"))
}

struct Leg {
    reports: Vec<CycleReport>,
    events: Vec<Event>,
}

/// One controller run at quick scale; `plan = None` is the clean control.
/// Telemetry goes through a [`SimOnlySink`] so two same-seed legs are
/// comparable byte for byte (no wall-clock spans).
fn leg(seed: u64, plan: Option<&FaultPlan>) -> Leg {
    let scene = presets::turntable(TAGS, MOBILE, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5);
    let epcs: Vec<Epc> = (0..TAGS).map(|_| Epc::random(&mut rng)).collect();
    let mut reader = Reader::new(scene, &epcs, ReaderConfig::default(), seed ^ 0x0B6);
    if let Some(p) = plan {
        reader.set_fault_injector(Box::new(PlanInjector::new(p.clone())));
    }

    let tel = Telemetry::new();
    let sink = MemorySink::new(1 << 20);
    tel.install(Box::new(SimOnlySink::new(sink.clone())));
    for e in &epcs[..MOBILE] {
        tel.tag_event("truth.mobile", e.bits(), 0.0);
    }
    reader.set_telemetry(tel.clone());
    let mut ctl = Controller::new(TagwatchConfig::default()).with_telemetry(tel.clone());
    let reports = ctl.run_cycles(&mut reader, CYCLES).expect("valid config");
    tel.flush();
    Leg {
        reports,
        events: sink.events(),
    }
}

fn mobile_reads(r: &CycleReport) -> usize {
    r.phase1
        .iter()
        .chain(r.phase2.iter())
        .filter(|t| t.tag_idx < MOBILE)
        .count()
}

fn total_mobile_reads(l: &Leg) -> usize {
    l.reports.iter().map(mobile_reads).sum()
}

/// Clean + faulted legs on the same seed, judged by the plan's envelope.
fn differential(plan: &FaultPlan) -> (Leg, Leg, EnvelopeReport) {
    let baseline = leg(SEED, None);
    let faulted = leg(SEED, Some(plan));
    let observations: Vec<CycleObservation> = baseline
        .reports
        .iter()
        .zip(&faulted.reports)
        .map(|(b, f)| CycleObservation {
            t_start: f.t_start,
            t_end: f.t_end,
            baseline_mobile_irr: mobile_reads(b) as f64 / (b.t_end - b.t_start).max(1e-9),
            faulted_mobile_irr: mobile_reads(f) as f64 / (f.t_end - f.t_start).max(1e-9),
        })
        .collect();
    let report = plan
        .envelope
        .evaluate(plan.last_window_end(), &observations);
    (baseline, faulted, report)
}

#[test]
fn antenna_outage_degrades_but_stays_in_envelope_and_recovers() {
    let plan = shipped_plan("outage");
    let (baseline, faulted, report) = differential(&plan);

    // 8 s of full darkness in a ~40 s run must cost real reads…
    let base = total_mobile_reads(&baseline);
    let hurt = total_mobile_reads(&faulted);
    assert!(base > 0, "clean baseline reads the mover");
    assert!(
        hurt < base,
        "outage did not degrade anything ({hurt} vs {base})"
    );
    // …while holding the plan's own floor and recovery budget.
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert!(
        report.recovery_cycle.is_some(),
        "a mid-run outage leaves post-fault cycles to recover in"
    );

    // Post-recovery cycles read the mover again.
    let end = plan.last_window_end().expect("outage plan injects");
    let post: usize = faulted
        .reports
        .iter()
        .filter(|r| r.t_start >= end)
        .map(mobile_reads)
        .sum();
    assert!(post > 0, "no mobile reads after the window closed");
}

#[test]
fn burst_noise_and_snr_collapse_stay_in_envelope() {
    let plan = shipped_plan("burst_noise");
    let (baseline, faulted, report) = differential(&plan);
    assert!(report.passed(), "violations: {:?}", report.violations);
    // Noise costs decodes; it must never conjure extra mobile reads out
    // of a degraded channel.
    assert!(total_mobile_reads(&faulted) <= total_mobile_reads(&baseline));
    assert!(total_mobile_reads(&faulted) > 0, "noise is not a blackout");
}

#[test]
fn command_loss_stays_in_envelope_and_is_counted() {
    let plan = shipped_plan("cmd_loss");
    let (_baseline, faulted, report) = differential(&plan);
    assert!(report.passed(), "violations: {:?}", report.violations);

    // The reader accounts for every Select it swallowed.
    let trace = Trace::from_events(&faulted.events).expect("parseable trace");
    assert!(
        trace.counter("fault.selects_lost") > 0,
        "a 50% Select-loss window must swallow at least one Select"
    );
}

#[test]
fn reader_restart_recovers_with_fresh_state() {
    let plan = shipped_plan("restart");
    let (_baseline, faulted, report) = differential(&plan);
    assert!(report.passed(), "violations: {:?}", report.violations);

    let trace = Trace::from_events(&faulted.events).expect("parseable trace");
    assert_eq!(
        trace.counter("fault.reader_restarts"),
        1,
        "one restart window → one restart"
    );

    // The stall consumes sim time: the run must outlive the window, i.e.
    // the clock jumped across it instead of wedging inside it.
    let end = plan.last_window_end().expect("restart plan injects");
    let last = faulted.reports.last().expect("cycles ran");
    assert!(
        last.t_end > end,
        "run ended at {} without clearing the restart window at {end}",
        last.t_end
    );
    // And the cycles after the restart read the mover again.
    let post: usize = faulted
        .reports
        .iter()
        .filter(|r| r.t_start >= end)
        .map(mobile_reads)
        .sum();
    assert!(post > 0, "restart must not strand the run");
}

#[test]
fn obs_attributes_the_irr_dip_to_the_injection_window() {
    let plan = shipped_plan("outage");
    let (_baseline, faulted, _report) = differential(&plan);
    let trace = Trace::from_events(&faulted.events).expect("parseable trace");
    let r = RunReport::analyze(&trace, &AnalyzeConfig::default());

    let fault = r.fault.as_ref().expect("fault markers → attribution");
    assert_eq!(fault.windows.len(), 1);
    let w = &fault.windows[0];
    assert_eq!(w.slug, "antenna_outage");
    assert!(w.closed, "window closed before the run ended");
    assert!((w.start - 8.0).abs() < 1e-9 && (w.end - 16.0).abs() < 1e-9);
    // Faults gate at round granularity: a round *started* just before
    // 8.0 s still lands a few reads inside the window, but the window's
    // share of reads must sit far below its ~20% share of the run.
    assert!(
        (w.reads as f64) < 0.05 * r.tags.reads_total as f64,
        "outage window kept {} of {} reads",
        w.reads,
        r.tags.reads_total
    );
    assert!(
        fault.irr_faulted < fault.irr_clean,
        "IRR inside the window ({}) must undercut IRR outside it ({})",
        fault.irr_faulted,
        fault.irr_clean
    );
    assert!(
        fault.degradation < 0.5,
        "the dip is attributed to the window"
    );

    // A clean control over the same workload attributes nothing.
    let clean_trace = Trace::from_events(&leg(SEED, None).events).unwrap();
    let clean = RunReport::analyze(&clean_trace, &AnalyzeConfig::default());
    assert!(clean.fault.is_none());
}

/// Satellite: the determinism self-check, extended to faulted runs —
/// same seed + same plan → bit-identical telemetry streams.
#[test]
fn same_seed_same_plan_telemetry_is_byte_identical() {
    let plan = shipped_plan("cmd_loss");
    let jsonl = |l: &Leg| {
        l.events
            .iter()
            .map(|e| serde_json::to_string(e).expect("serializable event"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let a = jsonl(&leg(SEED, Some(&plan)));
    let b = jsonl(&leg(SEED, Some(&plan)));
    assert!(!a.is_empty());
    assert_eq!(a, b, "faulted runs must replay byte for byte");

    // And the faulted stream genuinely differs from the clean one on the
    // same seed — the injector is live, not a no-op.
    let c = jsonl(&leg(SEED, None));
    assert_ne!(a, c, "plan changed nothing — injector not wired?");
}
