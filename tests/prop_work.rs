//! Property: the deterministic `perf.work.*` registry counters (and the
//! offered-event count behind `perf.work.telemetry_events`) are a pure
//! function of the simulated run — identical for any seed no matter the
//! sink configuration, sampling rate, event budget, or ring capacity.
//! This is the randomized version of `integration_work.rs`: that test
//! pins one seed against every sink shape; this one sweeps seeds and
//! suppression knobs together.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use tagwatch::prelude::*;
use tagwatch_reader::{Reader, ReaderConfig};
use tagwatch_scene::presets;
use tagwatch_telemetry::{
    MemorySink, RingSink, SimOnlySink, Telemetry, TelemetryConfig, WORK_PREFIX,
};

/// One short controller run on a private, pre-configured handle.
fn drive(seed: u64, configure: impl FnOnce(&Telemetry)) -> (BTreeMap<String, u64>, u64) {
    let scene = presets::turntable(8, 1, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE9C5);
    let epcs: Vec<Epc> = (0..8).map(|_| Epc::random(&mut rng)).collect();
    let mut reader = Reader::new(scene, &epcs, ReaderConfig::default(), seed ^ 1);

    let tel = Telemetry::new();
    configure(&tel);
    let mut ctl = Controller::new(TagwatchConfig::default()).with_telemetry(tel.clone());
    ctl.run_cycles(&mut reader, 3).expect("valid config");
    tel.flush();

    let work: BTreeMap<String, u64> = tel
        .snapshot()
        .counters()
        .filter(|(name, _)| name.starts_with(WORK_PREFIX))
        .map(|(name, v)| (name.to_string(), v))
        .collect();
    (work, tel.offered())
}

proptest! {
    // Full controller runs are not cheap; a handful of random
    // configurations per CI invocation is plenty — the single-seed
    // integration test already covers every sink shape deterministically.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn work_counters_ignore_sampling_budgets_and_ring_capacity(
        seed in 0u64..1_000,
        sample_every in 1u32..6,
        max_events in prop::option::of(1u64..200),
        ring_capacity in 1usize..64,
        sim_only in any::<bool>(),
    ) {
        let (baseline, offered) = drive(seed, |tel| tel.set_enabled(true));
        prop_assert!(!baseline.is_empty(), "no work accounted at all");

        let cfg = TelemetryConfig {
            sample_every_n_rounds: sample_every,
            max_events: max_events.unwrap_or(0),
        };
        let (suppressed, suppressed_offered) = drive(seed, |tel| {
            if sim_only {
                tel.install(Box::new(SimOnlySink::new(MemorySink::new(1 << 16))));
            } else {
                tel.install(Box::new(MemorySink::new(1 << 16)));
            }
            tel.install(Box::new(RingSink::new(ring_capacity)));
            tel.configure(cfg);
        });

        prop_assert_eq!(&suppressed, &baseline);
        prop_assert_eq!(suppressed_offered, offered);
    }
}
