// TODO: wire the dense-reader path in.
pub fn placeholder() {}

// TODO(ROADMAP.md open item): this marker is tracked and therefore fine.
pub fn tracked() {}

/* FIXME: block comments are scanned too. */
pub fn block() {}
