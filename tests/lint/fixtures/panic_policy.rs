// Panicking constructs in library code (pretend path
// crates/rf/src/injected.rs). The test module at the bottom is exempt,
// and so are non-panicking cousins like unwrap_or.
pub fn first(xs: &[u8]) -> u8 {
    *xs.first().unwrap()
}

pub fn must(x: Option<u8>) -> u8 {
    x.expect("present")
}

pub fn boom() {
    panic!("library code must not panic");
}

pub fn later() {
    todo!()
}

pub fn fine(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let _ = Some(1u8).unwrap();
    }
}
