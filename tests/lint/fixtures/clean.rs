//! Banned names in comments and strings are not code: Instant::now(),
//! HashMap, unwrap(), println!, unsafe — none of these count.

pub const DOC: &str = "call unwrap() or panic! — still just a string";

pub fn last(xs: &[u8]) -> Option<u8> {
    // A raw string hides its contents too: r"thread_rng()".
    xs.last().copied()
}
