// Seeded regression: wall-clock and entropy reads inside a simulation
// crate. Linted under the pretend path crates/core/src/injected.rs; the
// determinism-wallclock rule must flag every site.
use std::time::{Instant, SystemTime};

pub fn measure() -> f64 {
    let start = Instant::now();
    let _stamp = SystemTime::now();
    let _rng = thread_rng();
    start.elapsed().as_secs_f64()
}
