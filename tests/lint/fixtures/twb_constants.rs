//! Single-home contract for the `.twb` container self-description:
//! outside `crates/telemetry/src/binary.rs`, raw magic literals and
//! shadow `TWB_MAGIC` / `TWB_VERSION` definitions fire; imports, reads,
//! and test fixtures do not.

use tagwatch_telemetry::binary::TWB_MAGIC; // fine: importing the one home

const TWB_MAGIC: [u8; 4] = *b"TWB1"; // bad twice: shadow const + raw magic
const TWB_VERSION: u64 = 2; // bad: shadow version definition

pub fn sniffs(head: &[u8]) -> bool {
    head.starts_with(b"TWB1") // bad: raw magic literal in library code
        || head.starts_with(&TWB_MAGIC) // fine: reading the constant
}

pub fn mentions() -> &'static str {
    "a .twb trace; see the TWB_MAGIC docs" // fine: no magic bytes spelled
}

#[cfg(test)]
mod tests {
    #[test]
    fn probe() {
        assert!(super::sniffs(b"TWB1rest")); // fine: test code is exempt
    }
}
