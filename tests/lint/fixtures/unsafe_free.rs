// A crate root (pretend path crates/tracking/src/lib.rs) that forgot
// #![forbid(unsafe_code)] and reaches for unsafe.
pub fn peek(xs: &[u8]) -> u8 {
    unsafe { *xs.as_ptr() }
}
