// Hash-ordered containers in a simulation crate (pretend path
// crates/gen2/src/injected.rs). Test-gated code is exempt.
use std::collections::{HashMap, HashSet};

pub fn census() -> HashMap<u64, u32> {
    let mut seen = HashSet::new();
    seen.insert(1u64);
    HashMap::new()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_is_fine_in_tests() {
        let _ = HashMap::<u8, u8>::new();
    }
}
