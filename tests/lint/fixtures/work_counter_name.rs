//! Counter-name contract: `perf.work.` must be followed by exactly one
//! snake_case unit segment. Only the malformed literals below fire.

pub fn counters() -> [&'static str; 7] {
    [
        "perf.work.slots",       // fine: one snake_case unit
        "perf.work.query_reps",  // fine: underscores allowed
        "perf.work.",            // fine: the bare prefix constant
        "perf.work.Slots",       // bad: uppercase unit
        "perf.work.slots.total", // bad: a second dot segment
        "perf.work.per-cycle",   // bad: dash is not snake_case
        r"perf.work.2nd",        // bad: raw strings are scanned too
    ]
}
