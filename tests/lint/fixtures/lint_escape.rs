// Escape-comment handling (pretend path crates/telemetry/src/injected.rs):
// a valid escape suppresses; unused, unknown-rule, and reasonless escapes
// are findings in their own right.
pub fn good(x: Option<u8>) -> u8 {
    x.expect("validated upstream") // lint:allow(panic-policy): caller validates in new()
}

pub fn unused() {
    // lint:allow(debug-leak): nothing below actually prints
    let _ = 0;
}

pub fn unknown(x: Option<u8>) -> u8 {
    x.expect("oops") // lint:allow(no-such-rule): typo in the rule name
}

pub fn reasonless(x: Option<u8>) -> u8 {
    x.expect("oops") // lint:allow(panic-policy)
}
