// Debug output in library code (pretend path crates/scene/src/injected.rs).
pub fn trace(x: f64) -> f64 {
    println!("x = {x}");
    let y = dbg!(x * 2.0);
    eprintln!("y = {y}");
    y
}
