//! Deep fixture: the disciplined version of everything the deep rules
//! flag — must produce no diagnostics.

use tagwatch_telemetry::Telemetry;

impl Reader {
    pub fn execute(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }
}

pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}
