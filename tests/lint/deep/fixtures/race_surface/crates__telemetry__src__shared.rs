//! The same primitive on the telemetry side: inventoried
//! (`allowed-in-telemetry`), not a finding.

pub struct Inner {
    state: std::sync::Mutex<u8>,
}
