//! Deep fixture: shared-state primitives in a simulation crate.

static mut HITS: u64 = 0;

pub struct Channel {
    guard: std::sync::Mutex<f64>,
}

pub fn fan_out() {
    std::thread::spawn(|| {});
}
