//! Deep fixture: a sim crate reaching past the telemetry handle API.

use tagwatch_telemetry::clock::wall_now;
use tagwatch_telemetry::Telemetry;

pub fn now_secs() -> f64 {
    wall_now()
}
