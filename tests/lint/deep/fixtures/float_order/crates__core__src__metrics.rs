//! Deep fixture: f64 reduction order over chunked iteration.

pub fn chunked_total(xs: &[f64]) -> f64 {
    xs.chunks(8).map(|c| c.iter().sum::<f64>()).sum::<f64>()
}

pub fn loop_acc(xs: &[f64]) -> f64 {
    let mut t = 0.0;
    for c in xs.chunks(4) {
        t += c[0];
    }
    t
}

pub fn ordered_total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}
