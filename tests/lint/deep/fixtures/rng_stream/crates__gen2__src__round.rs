//! Deep fixture: RNG draws and stream construction on the hot path.
//! Every fn here is under the `gen2::round::` prefix root, so all of
//! them count as reachable from the round engine.

/// A draw whose stream is invisible: no `rng` receiver, no `Rng`
/// parameter, nothing rng-ish on the line. Flagged.
pub fn run_round(pool: &mut Pool) -> u32 {
    u32::from(pool.source.gen_bool(0.5))
}

/// Reseeding inside a hot-path fn: the draw itself is fine (the
/// receiver is named `rng`), but minting the stream here is flagged.
pub fn jitter() -> f64 {
    let mut rng = StdRng::seed_from_u64(7);
    rng.gen_range(0.0..1.0)
}

/// The disciplined shape: the stream arrives as a parameter.
pub fn backoff(rng: &mut StdRng) -> f64 {
    rng.gen_range(0.0..1.0)
}
