//! Setup-time seeding off the hot path: report-only, never a finding.

pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
