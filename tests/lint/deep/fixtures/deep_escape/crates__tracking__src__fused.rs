//! Deep fixture: escape comments against deep rules — one used (the
//! finding is suppressed), one unused (itself a finding).

pub struct Cache {
    // lint:allow(race-surface): per-worker scratch, never shared across threads
    scratch: std::cell::RefCell<Vec<f64>>,
}

// lint:allow(float-reduction-order): nothing here reduces; this escape is unused
pub fn id(x: f64) -> f64 {
    x
}
