//! Property: the telemetry histogram's bucketed percentile estimate
//! tracks the exact sample percentile (`tagwatch::metrics::percentile`,
//! rank = p/100·(n−1) with linear interpolation) to within one bucket
//! width — the accuracy contract `tagwatch-telemetry` documents.

use proptest::prelude::*;
use tagwatch::metrics::percentile;
use tagwatch_telemetry::Histogram;

const BUCKET_WIDTH: f64 = 1.0;

proptest! {
    #[test]
    fn histogram_percentile_within_one_bucket_of_exact(
        samples in prop::collection::vec(0.0f64..100.0, 1..200),
        p in 0.0f64..=100.0,
    ) {
        let mut h = Histogram::linear(0.0, BUCKET_WIDTH, 100);
        for &s in &samples {
            h.observe(s);
        }
        let exact = percentile(&samples, p);
        let approx = h.percentile(p).expect("non-empty histogram");
        prop_assert!(
            (approx - exact).abs() <= BUCKET_WIDTH + 1e-9,
            "p{} off by more than a bucket: approx {} vs exact {} over {} samples",
            p, approx, exact, samples.len()
        );
    }

    #[test]
    fn histogram_percentile_is_monotone_and_bounded(
        samples in prop::collection::vec(0.0f64..100.0, 1..100),
    ) {
        let mut h = Histogram::linear(0.0, BUCKET_WIDTH, 100);
        for &s in &samples {
            h.observe(s);
        }
        let min = h.min().unwrap();
        let max = h.max().unwrap();
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(q).unwrap();
            prop_assert!(v >= prev, "p{q} = {v} < p_prev = {prev}");
            prop_assert!((min..=max).contains(&v), "p{q} = {v} outside [{min}, {max}]");
            prev = v;
        }
    }
}
