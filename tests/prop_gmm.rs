//! Property-based tests for the statistical core: circular arithmetic
//! axioms and self-learning-GMM invariants under arbitrary observation
//! streams.

use proptest::prelude::*;
use tagwatch::{Gmm, GmmConfig};
use tagwatch_rf::{circ_diff, circ_dist, wrap_2pi};

proptest! {
    #[test]
    fn wrap_2pi_is_idempotent_and_in_range(x in -1e6f64..1e6) {
        let w = wrap_2pi(x);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&w));
        prop_assert!((wrap_2pi(w) - w).abs() < 1e-12);
    }

    #[test]
    fn circ_dist_metric_axioms(a in -20.0f64..20.0, b in -20.0f64..20.0, c in -20.0f64..20.0) {
        // Range.
        let d = circ_dist(a, b);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&d));
        // Identity (up to wrapping).
        prop_assert!(circ_dist(a, a) < 1e-12);
        // Symmetry.
        prop_assert!((circ_dist(a, b) - circ_dist(b, a)).abs() < 1e-12);
        // Triangle inequality.
        prop_assert!(circ_dist(a, c) <= circ_dist(a, b) + circ_dist(b, c) + 1e-9);
        // Shift invariance.
        prop_assert!((circ_dist(a + 1.3, b + 1.3) - d).abs() < 1e-9);
    }

    #[test]
    fn circ_diff_is_consistent_with_dist(a in -20.0f64..20.0, b in -20.0f64..20.0) {
        let diff = circ_diff(a, b);
        prop_assert!((-std::f64::consts::PI..=std::f64::consts::PI).contains(&diff));
        prop_assert!((diff.abs() - circ_dist(a, b)).abs() < 1e-9);
        // Antisymmetry (except at exactly ±π where the sign is arbitrary).
        if diff.abs() < std::f64::consts::PI - 1e-9 {
            prop_assert!((circ_diff(b, a) + diff).abs() < 1e-9);
        }
    }

    #[test]
    fn gmm_invariants_hold_for_any_stream(
        stream in proptest::collection::vec(0.0f64..std::f64::consts::TAU, 1..400)
    ) {
        let cfg = GmmConfig::phase_defaults();
        let mut gmm = Gmm::phase(cfg);
        for &x in &stream {
            gmm.observe(x);
            // Mode-stack bounded by K.
            prop_assert!(gmm.modes().len() <= cfg.k_max);
            for m in gmm.modes() {
                // Weights in (0, 1]; σ within configured band; mean wrapped.
                prop_assert!(m.weight > 0.0 && m.weight <= 1.0, "weight {}", m.weight);
                prop_assert!(
                    m.g.sigma >= cfg.sigma_floor - 1e-12 && m.g.sigma <= cfg.sigma_max + 1e-12,
                    "sigma {}",
                    m.g.sigma
                );
                prop_assert!((0.0..std::f64::consts::TAU).contains(&m.g.mean));
                prop_assert!(m.g.circular);
            }
            // Total weight bounded (decay keeps it ≤ k_max, in practice ≈1).
            prop_assert!(gmm.total_weight() <= cfg.k_max as f64 + 1e-9);
        }
        // Classify never panics and is consistent with is_motion semantics.
        for &x in stream.iter().take(16) {
            let _ = gmm.classify(x).is_motion();
        }
    }

    #[test]
    fn gmm_classify_is_pure(
        train in proptest::collection::vec(0.0f64..std::f64::consts::TAU, 1..100),
        probe in 0.0f64..std::f64::consts::TAU,
    ) {
        let mut gmm = Gmm::phase(GmmConfig::phase_defaults());
        gmm.train(&train);
        let before = gmm.clone();
        let a = gmm.classify(probe);
        let b = gmm.classify(probe);
        prop_assert_eq!(a, b);
        prop_assert_eq!(gmm, before, "classify must not mutate the model");
    }

    #[test]
    fn repeated_constant_observations_converge(
        x in 0.0f64..std::f64::consts::TAU,
        n in 250usize..400,
    ) {
        let cfg = GmmConfig::phase_defaults();
        let mut gmm = Gmm::phase(cfg);
        for _ in 0..n {
            gmm.observe(x);
        }
        // A constant stream must establish a single dominant mode at x.
        let top = gmm
            .modes()
            .iter()
            .max_by(|a, b| a.weight.partial_cmp(&b.weight).unwrap())
            .unwrap();
        prop_assert!(
            top.established(&cfg, gmm.total_weight()),
            "weight {}",
            top.weight
        );
        prop_assert!(circ_dist(top.g.mean, x) < 0.05);
        prop_assert!(!gmm.classify(x).is_motion());
    }
}
