//! Channel-cache correctness properties.
//!
//! The reader's per-(tag, antenna, channel) cache must be *transparent*:
//! every [`ChannelCache::evaluate`] — hit or miss — returns exactly the
//! pair a fresh evaluation would (`-2·arg(g) + offset`, `40·log10|g|`),
//! bit for bit. On top of transparency, the staleness machinery must
//! actually engage: repeated lookups at an unchanged position hit, any
//! motion misses via the position guard, and a geometry-epoch change
//! drops the whole table. Each property also pins non-vacuity — at
//! least one real hit and one real invalidation per case — so a cache
//! that degenerates to always-miss (correct but useless) fails loudly.

use proptest::prelude::*;
use tagwatch_rf::{ChannelCache, ChannelModel, LinkGeometry, Vec3};
use tagwatch_scene::presets;

/// The exact pair `ChannelModel::measure` reduces a link to; recomputed
/// here from first principles as the oracle for every cache lookup.
fn fresh_parts(
    model: &ChannelModel,
    link: &LinkGeometry<'_>,
    tag_key: u64,
    port: u8,
    channel: u8,
    wavelength: f64,
) -> (f64, f64) {
    let g = model.one_way_field(link, wavelength);
    let offset = model.link_offset(tag_key, port, channel);
    (-2.0 * g.arg() + offset, 40.0 * g.abs().log10())
}

fn arb_pos() -> impl Strategy<Value = Vec3> {
    (-4.0f64..4.0, -4.0f64..4.0, 0.1f64..3.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

/// One lookup key: in-range and (occasionally) out-of-range indices —
/// the cache tolerates the latter by never hitting, and transparency
/// must hold either way.
fn arb_key() -> impl Strategy<Value = (usize, u8, u8)> {
    (0usize..8, 0u8..5, 0u8..7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transparency + hit behaviour: for an arbitrary lookup sequence at
    /// a fixed epoch, every evaluate equals the fresh oracle bit-for-bit,
    /// and an immediate repeat of the same lookup is served as a hit.
    #[test]
    fn evaluate_is_bit_identical_to_fresh_and_repeats_hit(
        keys in prop::collection::vec((arb_key(), arb_pos()), 1..24),
        antenna in arb_pos(),
        wavelength in 0.30f64..0.36,
        offset_seed in any::<u64>(),
        epoch in any::<u64>(),
    ) {
        let model = ChannelModel { offset_seed, ..ChannelModel::default() };
        // Dimensions deliberately smaller than the key ranges so some
        // keys fall outside the table.
        let mut cache = ChannelCache::new(6, 3, 5);
        cache.ensure_epoch(epoch);
        let mut expected_hits = 0u64;
        for ((tag_idx, port, chan), tag_pos) in keys {
            let link = LinkGeometry { antenna, tag: tag_pos, reflectors: &[] };
            let oracle = fresh_parts(&model, &link, tag_idx as u64, port, chan, wavelength);
            let got = cache.evaluate(&model, &link, tag_idx, tag_idx as u64, port, chan, wavelength);
            prop_assert_eq!(
                (got.0.to_bits(), got.1.to_bits()),
                (oracle.0.to_bits(), oracle.1.to_bits()),
                "cache result differs from a fresh evaluation at tag {} port {} chan {}",
                tag_idx, port, chan
            );
            // Immediate repeat at the identical position: a hit for
            // in-range keys, a (transparent) miss for out-of-range ones.
            let again = cache.evaluate(&model, &link, tag_idx, tag_idx as u64, port, chan, wavelength);
            prop_assert_eq!(again.0.to_bits(), got.0.to_bits());
            prop_assert_eq!(again.1.to_bits(), got.1.to_bits());
            if tag_idx < 6 && port < 3 && chan < 5 {
                expected_hits += 1;
            }
        }
        prop_assert_eq!(cache.stats().hits, expected_hits);
        prop_assert!(expected_hits >= 1 || cache.stats().misses >= 2,
            "degenerate case: no lookup exercised either path");
        prop_assert_eq!(cache.stats().invalidations, 0,
            "a fixed epoch must never invalidate");
    }

    /// The position guard: every motion step misses (a moved tag can
    /// never be served a stale field), and returning to a previous
    /// position after the entry was overwritten also misses.
    #[test]
    fn motion_always_misses(
        p1 in arb_pos(),
        step in (0.001f64..1.0, 0.001f64..1.0, 0.001f64..1.0),
        antenna in arb_pos(),
        wavelength in 0.30f64..0.36,
    ) {
        let p2 = Vec3::new(p1.x + step.0, p1.y + step.1, p1.z + step.2);
        let model = ChannelModel::default();
        let mut cache = ChannelCache::new(1, 2, 1);
        cache.ensure_epoch(7);
        let eval = |cache: &mut ChannelCache, pos: Vec3| {
            let link = LinkGeometry { antenna, tag: pos, reflectors: &[] };
            let got = cache.evaluate(&model, &link, 0, 0, 1, 0, wavelength);
            let oracle = fresh_parts(&model, &link, 0, 1, 0, wavelength);
            ((got.0.to_bits(), got.1.to_bits()), (oracle.0.to_bits(), oracle.1.to_bits()))
        };
        // p1: cold miss. p1 again: hit. p2: motion ⇒ miss. p2: hit.
        // Back to p1: the entry now guards p2 ⇒ miss again.
        for (pos, hits, misses) in [
            (p1, 0u64, 1u64),
            (p1, 1, 1),
            (p2, 1, 2),
            (p2, 2, 2),
            (p1, 2, 3),
        ] {
            let (got, oracle) = eval(&mut cache, pos);
            prop_assert_eq!(got, oracle);
            prop_assert_eq!(cache.stats().hits, hits, "after visiting {:?}", pos);
            prop_assert_eq!(cache.stats().misses, misses, "after visiting {:?}", pos);
        }
        prop_assert_eq!(cache.stats().invalidations, 0);
    }

    /// Geometry epochs: warming, re-asserting the same epoch, and
    /// stepping through a scene's real epoch history. Every epoch change
    /// invalidates exactly once and forces the next lookup to miss;
    /// re-asserting an unchanged epoch preserves hits.
    #[test]
    fn epoch_changes_invalidate_exactly_once(
        pos in arb_pos(),
        antenna in arb_pos(),
        wavelength in 0.30f64..0.36,
        bumps in 1usize..5,
        seed in any::<u64>(),
    ) {
        // Source epochs from a real scene so the proptest pins the
        // integration, not just the raw counter contract.
        let mut scene = presets::turntable(3, 1, seed);
        let model = ChannelModel::default();
        let mut cache = ChannelCache::new(1, 2, 1);
        let link = LinkGeometry { antenna, tag: pos, reflectors: &[] };

        cache.ensure_epoch(scene.epoch());
        cache.evaluate(&model, &link, 0, 0, 1, 0, wavelength); // cold miss
        cache.evaluate(&model, &link, 0, 0, 1, 0, wavelength); // hit
        prop_assert_eq!(cache.stats().hits, 1);

        // Same epoch re-asserted: nothing drops.
        cache.ensure_epoch(scene.epoch());
        cache.evaluate(&model, &link, 0, 0, 1, 0, wavelength);
        prop_assert_eq!(cache.stats().hits, 2);
        prop_assert_eq!(cache.stats().invalidations, 0);

        for k in 0..bumps {
            scene.bump_epoch();
            cache.ensure_epoch(scene.epoch());
            prop_assert_eq!(cache.stats().invalidations, (k + 1) as u64,
                "each epoch change must invalidate exactly once");
            let got = cache.evaluate(&model, &link, 0, 0, 1, 0, wavelength);
            let oracle = fresh_parts(&model, &link, 0, 1, 0, wavelength);
            prop_assert_eq!(got.0.to_bits(), oracle.0.to_bits());
            prop_assert_eq!(got.1.to_bits(), oracle.1.to_bits());
        }
        // Post-invalidation lookups were misses, not stale hits.
        prop_assert_eq!(cache.stats().hits, 2);
        prop_assert_eq!(cache.stats().misses, 1 + bumps as u64,
            "cold miss + one per epoch change");
        prop_assert!(cache.stats().invalidations >= 1, "non-vacuous: the case must invalidate");
    }
}
