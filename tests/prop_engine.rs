//! Differential property for the two round engines: for any population
//! size, mobility mix, seed, decode-failure rate, and structurally valid
//! fault plan, the batched SoA engine must be *byte-identical* to the
//! scalar reference engine — same report stream (every field, in order),
//! same `perf.work.*` totals, same final sim clock. This is the contract
//! that lets `--engine batched` be the default: it is an optimisation,
//! never a behaviour change.
//!
//! Failures point at the first diverging report (index, tag, timestamp,
//! field values) or the first diverging work counter, not just "streams
//! differ" — a regression should name the slot where the engines parted.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use tagwatch_fault::{FaultEvent, FaultKind, FaultPlan, PlanInjector, Window};
use tagwatch_gen2::Epc;
use tagwatch_reader::{EngineKind, Reader, ReaderConfig, RoSpec, TagReport};
use tagwatch_scene::presets;
use tagwatch_telemetry::{Telemetry, WORK_PREFIX};

/// Simulated air time per engine run. Long enough for dozens of rounds
/// (mobile tags sweep real distance; Q adapts; faults open and close),
/// short enough that a few hundred differential cases stay fast.
const SIM_SECONDS: f64 = 2.0;

/// Everything observable from one engine run.
struct EngineRun {
    reports: Vec<TagReport>,
    work: BTreeMap<String, u64>,
    clock_bits: u64,
}

fn run_engine(
    engine: EngineKind,
    n_tags: usize,
    n_mobile: usize,
    seed: u64,
    decode_fail_prob: f64,
    plan: Option<&FaultPlan>,
) -> EngineRun {
    let scene = presets::turntable(n_tags, n_mobile, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
    let epcs: Vec<Epc> = (0..n_tags).map(|_| Epc::random(&mut rng)).collect();
    let cfg = ReaderConfig {
        decode_fail_prob,
        engine,
        ..ReaderConfig::default()
    };
    let mut reader = Reader::new(scene, &epcs, cfg, seed ^ 0x0E17);
    if let Some(plan) = plan {
        reader.set_fault_injector(Box::new(PlanInjector::new(plan.clone())));
    }
    let tel = Telemetry::new();
    tel.set_enabled(true);
    reader.set_telemetry(tel.clone());

    let spec = RoSpec::read_all(1, vec![1]);
    let mut reports = Vec::new();
    reader
        .run_for_into(&spec, SIM_SECONDS, &mut reports)
        .expect("valid ROSpec");
    tel.flush();

    let work: BTreeMap<String, u64> = tel
        .snapshot()
        .counters()
        .filter(|(name, _)| name.starts_with(WORK_PREFIX))
        .map(|(name, v)| (name.to_string(), v))
        .collect();
    EngineRun {
        reports,
        work,
        clock_bits: reader.now().to_bits(),
    }
}

/// The first report where the streams part ways, described field-by-field
/// so a failing case names the exact slot, not just "streams differ".
fn first_report_divergence(a: &[TagReport], b: &[TagReport]) -> Option<String> {
    let shared = a.len().min(b.len());
    for i in 0..shared {
        let (ra, rb) = (&a[i], &b[i]);
        if ra != rb {
            return Some(format!(
                "report #{i} diverges:\n  reference: tag {} epc {} t {:.9} phase {:.12} rss {:.9} ch {} ant {}\n  batched:   tag {} epc {} t {:.9} phase {:.12} rss {:.9} ch {} ant {}",
                ra.tag_idx, ra.epc, ra.rf.t, ra.rf.phase, ra.rf.rss_dbm, ra.rf.channel, ra.rf.antenna,
                rb.tag_idx, rb.epc, rb.rf.t, rb.rf.phase, rb.rf.rss_dbm, rb.rf.channel, rb.rf.antenna,
            ));
        }
    }
    if a.len() != b.len() {
        return Some(format!(
            "streams agree on the first {shared} reports, then diverge in length: reference {} vs batched {}",
            a.len(),
            b.len()
        ));
    }
    None
}

/// The first `perf.work.*` counter whose totals differ.
fn first_work_divergence(a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>) -> Option<String> {
    for key in a.keys().chain(b.keys()) {
        let (va, vb) = (a.get(key), b.get(key));
        if va != vb {
            return Some(format!(
                "counter {key} diverges: reference {va:?} vs batched {vb:?}"
            ));
        }
    }
    None
}

fn assert_identical(a: &EngineRun, b: &EngineRun) -> Result<(), TestCaseError> {
    if let Some(d) = first_report_divergence(&a.reports, &b.reports) {
        return Err(TestCaseError::fail(d));
    }
    if let Some(d) = first_work_divergence(&a.work, &b.work) {
        return Err(TestCaseError::fail(d));
    }
    prop_assert_eq!(
        a.clock_bits,
        b.clock_bits,
        "final sim clocks diverge: reference {} vs batched {}",
        f64::from_bits(a.clock_bits),
        f64::from_bits(b.clock_bits)
    );
    Ok(())
}

/// Fault kinds spanning every injector family, with deliberately sloppy
/// inputs (ports the scene does not drive, tag indices past the
/// population) — the engines must agree on the sloppy cases too.
fn arb_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        prop::collection::vec(0u8..4, 0..4)
            .prop_map(|antennas| FaultKind::AntennaOutage { antennas }),
        (0.0f64..2.0, 0.0f64..6.0).prop_map(|(phase_sigma, rss_sigma_db)| {
            FaultKind::BurstNoise {
                phase_sigma,
                rss_sigma_db,
            }
        }),
        (0.0f64..30.0, 0.0f64..=1.0).prop_map(|(rss_drop_db, decode_fail_prob)| {
            FaultKind::SnrCollapse {
                rss_drop_db,
                decode_fail_prob,
            }
        }),
        (0.0f64..=1.0).prop_map(|prob| FaultKind::SelectLoss { prob }),
        (0.0f64..=1.0).prop_map(|prob| FaultKind::QueryRepLoss { prob }),
        (0.0f64..=1.0).prop_map(|prob| FaultKind::ReplyCorruption { prob }),
        prop::collection::vec(0usize..20, 1..4).prop_map(|tags| FaultKind::TagMute { tags }),
        prop::collection::vec(0usize..20, 1..4).prop_map(|tags| FaultKind::TagDetune { tags }),
        any::<bool>().prop_map(|preserve_flags| FaultKind::ReaderRestart { preserve_flags }),
    ]
}

/// Windows drawn around the 2 s run: before, inside, across, and past
/// the end, overlapping freely.
fn arb_window() -> impl Strategy<Value = Window> {
    (
        0.0f64..3.0,
        prop_oneof![1 => Just(0.0f64), 3 => 0.0f64..2.0],
    )
        .prop_map(|(start, len)| Window::new(start, start + len))
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec((arb_kind(), arb_window()), 0..5).prop_map(|events| {
        let mut plan = FaultPlan::empty("prop-engine");
        plan.events = events
            .into_iter()
            .map(|(kind, window)| FaultEvent { kind, window })
            .collect();
        plan
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Clean runs: population size × mobility mix × seed × decode-failure
    /// rate. Singleton populations, all-static and maximally mobile mixes,
    /// and zero / non-zero failure rates all land in the sample.
    #[test]
    fn engines_agree_on_clean_runs(
        (n_tags, n_mobile) in (1usize..28).prop_flat_map(|n| (Just(n), 0..=n.min(3))),
        seed in any::<u64>(),
        decode_fail_prob in prop_oneof![1 => Just(0.0f64), 2 => 0.0f64..0.3],
    ) {
        let a = run_engine(EngineKind::Reference, n_tags, n_mobile, seed, decode_fail_prob, None);
        let b = run_engine(EngineKind::Batched, n_tags, n_mobile, seed, decode_fail_prob, None);
        prop_assert!(!a.reports.is_empty(), "a 2 s run must read something");
        assert_identical(&a, &b)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Faulted runs: arbitrary plans over every injector family. The
    /// engines must stay byte-identical through outages, noise bursts,
    /// corruption, command loss, and mid-run reader restarts.
    #[test]
    fn engines_agree_under_fault_plans(
        plan in arb_plan(),
        n_tags in 2usize..16,
        seed in any::<u64>(),
    ) {
        let a = run_engine(EngineKind::Reference, n_tags, 1, seed, 0.05, Some(&plan));
        let b = run_engine(EngineKind::Batched, n_tags, 1, seed, 0.05, Some(&plan));
        assert_identical(&a, &b)?;
    }
}
