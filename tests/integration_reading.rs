//! Cross-crate integration tests at the reader boundary: protocol-level
//! selective reading, cost-model calibration, and report physics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch_gen2::{BitMask, CostModel, Epc};
use tagwatch_reader::{Reader, ReaderConfig, RoSpec};
use tagwatch_rf::ChannelPlan;
use tagwatch_scene::presets;

fn epcs(n: usize, seed: u64) -> Vec<Epc> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Epc::random(&mut rng)).collect()
}

#[test]
fn simulated_costs_fit_the_paper_model() {
    // The headline calibration claim (DESIGN.md §5.6): least-squares over
    // simulated inventory costs recovers parameters in the neighbourhood
    // of the paper's τ0 = 19 ms, τ̄ = 0.18 ms.
    let mut samples = Vec::new();
    for &n in &[1usize, 3, 5, 10, 15, 20, 30, 40] {
        let scene = presets::random_room(n, n as u64);
        let ids = epcs(n, 100 + n as u64);
        let mut reader = Reader::new(scene, &ids, ReaderConfig::default(), 200 + n as u64);
        let spec = RoSpec::read_all(1, vec![1]);
        for _ in 0..4 {
            reader.execute(&spec).unwrap(); // settle link adaptation
        }
        reader.events.take();
        for _ in 0..6 {
            reader.execute(&spec).unwrap();
        }
        let events = reader.events.take();
        let mean = events
            .iter()
            .map(tagwatch_reader::RoundEvent::duration)
            .sum::<f64>()
            / events.len() as f64;
        samples.push((n, mean));
    }
    let fit = CostModel::fit(&samples).expect("enough samples");
    assert!(
        (12e-3..30e-3).contains(&fit.tau0),
        "fitted τ0 = {:.1} ms (paper: 19 ms)",
        fit.tau0 * 1e3
    );
    assert!(
        (0.08e-3..0.40e-3).contains(&fit.tau_bar),
        "fitted τ̄ = {:.3} ms (paper: 0.18 ms)",
        fit.tau_bar * 1e3
    );
}

#[test]
fn multi_mask_rospec_reads_exactly_the_union() {
    let n = 60;
    let scene = presets::random_room(n, 31);
    let ids = epcs(n, 32);
    let mut reader = Reader::new(scene, &ids, ReaderConfig::default(), 33);

    // Two short prefix masks with known coverage.
    let m1 = BitMask::from_epc_range(ids[4], 0, 5);
    let m2 = BitMask::from_epc_range(ids[17], 3, 6);
    let expected: Vec<usize> = (0..n)
        .filter(|&i| m1.matches(ids[i]) || m2.matches(ids[i]))
        .collect();
    assert!(!expected.is_empty());

    let spec = RoSpec::selective(5, vec![1], &[m1, m2]);
    let reports = reader.execute(&spec).unwrap();
    let mut got: Vec<usize> = reports.iter().map(|r| r.tag_idx).collect();
    got.sort_unstable();
    got.dedup();
    assert_eq!(got, expected, "selective union mismatch");
}

#[test]
fn phase_reports_are_physically_consistent() {
    // On a noiseless single channel, two consecutive reads of the same
    // static tag on the same antenna must report identical phase; a tag
    // twice as far reports ~12 dB less RSS.
    let mut scene = presets::random_room(2, 41);
    scene.tags[0] = tagwatch_scene::SceneTag::fixed(0, tagwatch_rf::Vec3::new(1.0, 0.0, 1.0));
    scene.tags[1] = tagwatch_scene::SceneTag::fixed(1, tagwatch_rf::Vec3::new(2.0, 0.0, 1.0));
    scene.antennas[0].position = tagwatch_rf::Vec3::new(0.0, 0.0, 1.0);
    let ids = epcs(2, 42);
    let mut cfg = ReaderConfig::deterministic();
    cfg.channel_plan = ChannelPlan::single(922.5e6);
    let mut reader = Reader::new(scene, &ids, cfg, 43);
    let spec = RoSpec::read_all(1, vec![1]);
    let a = reader.execute(&spec).unwrap();
    let b = reader.execute(&spec).unwrap();
    for tag in 0..2 {
        let pa = a.iter().find(|r| r.tag_idx == tag).unwrap();
        let pb = b.iter().find(|r| r.tag_idx == tag).unwrap();
        assert!(
            (pa.rf.phase - pb.rf.phase).abs() < 1e-9,
            "static tag phase changed between rounds"
        );
    }
    let rss0 = a.iter().find(|r| r.tag_idx == 0).unwrap().rf.rss_dbm;
    let rss1 = a.iter().find(|r| r.tag_idx == 1).unwrap().rf.rss_dbm;
    assert!(
        ((rss0 - rss1) - 12.04).abs() < 0.2,
        "two-way path loss violated: {rss0} vs {rss1}"
    );
}

#[test]
fn empty_selection_is_cheap_and_harmless() {
    // A mask covering no tag: the round winds down quickly with no reads.
    let scene = presets::random_room(20, 51);
    let ids = epcs(20, 52);
    let mut reader = Reader::new(scene, &ids, ReaderConfig::default(), 53);
    // Build a mask that matches none of the population.
    let mut mask = None;
    for bits in 0u128..64 {
        let candidate = BitMask::new(bits, 0, 6);
        if ids.iter().all(|e| !candidate.matches(*e)) {
            mask = Some(candidate);
            break;
        }
    }
    let mask = mask.expect("some 6-bit prefix is unused by 20 tags");
    let t0 = reader.now();
    let reports = reader
        .execute(&RoSpec::selective(9, vec![1], &[mask]))
        .unwrap();
    assert!(reports.is_empty());
    assert!(reader.now() - t0 < 0.05, "empty round too slow");
}

#[test]
fn channel_hopping_changes_reported_channel_and_freq() {
    let scene = presets::random_room(3, 61);
    let ids = epcs(3, 62);
    let cfg = ReaderConfig {
        // Fast dwell so a short run crosses several channels.
        channel_plan: ChannelPlan::evenly_spaced(920.625e6, 250e3, 16, 0.2),
        ..ReaderConfig::default()
    };
    let mut reader = Reader::new(scene, &ids, cfg, 63);
    let spec = RoSpec::read_all(1, vec![1]);
    let reports = reader.run_for(&spec, 2.0).unwrap();
    let mut channels: Vec<u8> = reports.iter().map(|r| r.rf.channel).collect();
    channels.sort_unstable();
    channels.dedup();
    assert!(channels.len() >= 4, "only {} channels seen", channels.len());
    for r in &reports {
        let expected_freq = 920.625e6 + 250e3 * r.rf.channel as f64;
        assert!((r.rf.freq_hz - expected_freq).abs() < 1.0);
    }
}
