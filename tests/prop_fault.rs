//! Property: fault injection is total. Any structurally valid
//! [`FaultPlan`] — arbitrary kinds, overlapping windows, zero-length
//! windows, windows past the end of the run, tag indices past the end of
//! the population — must (a) survive `validate()`, (b) round-trip
//! through the JSON plan format, and (c) drive a full controller run
//! without panicking while leaving a trace the `obs` model ingests
//! wholesale. A faulted run must also replay: same seed + same plan →
//! the identical event stream.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::prelude::*;
use tagwatch_fault::{FaultEvent, FaultKind, FaultPlan, PlanInjector, Window};
use tagwatch_obs::analyze::{AnalyzeConfig, RunReport};
use tagwatch_obs::model::Trace;
use tagwatch_reader::{Reader, ReaderConfig};
use tagwatch_scene::presets;
use tagwatch_telemetry::{Event, MemorySink, SimOnlySink, Telemetry};

/// Small workload: 3 cycles ≈ 15 s simulated, so windows drawn from
/// `[0, 25)` land before, inside, across, and after the run.
const TAGS: usize = 8;
const MOBILE: usize = 1;
const CYCLES: usize = 3;

fn arb_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        // Port list may be empty (= all ports) or name ports the scene
        // does not drive; tag lists may index past the population.
        prop::collection::vec(0u8..4, 0..4)
            .prop_map(|antennas| FaultKind::AntennaOutage { antennas }),
        (0.0f64..2.0, 0.0f64..6.0).prop_map(|(phase_sigma, rss_sigma_db)| {
            FaultKind::BurstNoise {
                phase_sigma,
                rss_sigma_db,
            }
        }),
        (0.0f64..30.0, 0.0f64..=1.0).prop_map(|(rss_drop_db, decode_fail_prob)| {
            FaultKind::SnrCollapse {
                rss_drop_db,
                decode_fail_prob,
            }
        }),
        (0.0f64..=1.0).prop_map(|prob| FaultKind::SelectLoss { prob }),
        (0.0f64..=1.0).prop_map(|prob| FaultKind::QueryRepLoss { prob }),
        (0.0f64..=1.0).prop_map(|prob| FaultKind::ReplyCorruption { prob }),
        prop::collection::vec(0usize..20, 1..4).prop_map(|tags| FaultKind::TagMute { tags }),
        prop::collection::vec(0usize..20, 1..4).prop_map(|tags| FaultKind::TagDetune { tags }),
        any::<bool>().prop_map(|preserve_flags| FaultKind::ReaderRestart { preserve_flags }),
    ]
}

/// Windows overlap freely; a quarter of them are zero-length no-ops.
fn arb_window() -> impl Strategy<Value = Window> {
    (
        0.0f64..25.0,
        prop_oneof![1 => Just(0.0f64), 3 => 0.0f64..12.0],
    )
        .prop_map(|(start, len)| Window::new(start, start + len))
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    prop::collection::vec((arb_kind(), arb_window()), 0..6).prop_map(|events| {
        let mut plan = FaultPlan::empty("prop");
        plan.events = events
            .into_iter()
            .map(|(kind, window)| FaultEvent { kind, window })
            .collect();
        plan
    })
}

/// One faulted controller run; returns the sim-only event stream.
fn run_faulted(seed: u64, plan: &FaultPlan) -> Vec<Event> {
    let scene = presets::turntable(TAGS, MOBILE, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5);
    let epcs: Vec<Epc> = (0..TAGS).map(|_| Epc::random(&mut rng)).collect();
    let mut reader = Reader::new(scene, &epcs, ReaderConfig::default(), seed ^ 0x0B6);
    reader.set_fault_injector(Box::new(PlanInjector::new(plan.clone())));

    let tel = Telemetry::new();
    let sink = MemorySink::new(1 << 20);
    tel.install(Box::new(SimOnlySink::new(sink.clone())));
    reader.set_telemetry(tel.clone());
    let mut ctl = Controller::new(TagwatchConfig::default()).with_telemetry(tel.clone());
    ctl.run_cycles(&mut reader, CYCLES)
        .expect("controller must survive any valid plan");
    tel.flush();
    sink.events()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated plans are valid by construction, and validity survives
    /// the JSON wire format.
    #[test]
    fn arbitrary_plans_validate_and_round_trip(plan in arb_plan()) {
        prop_assert!(plan.validate().is_ok(), "generator produced an invalid plan");
        let text = serde_json::to_string(&plan).expect("plans serialize");
        let back = FaultPlan::from_json_str(&text).expect("serialized plan re-parses");
        prop_assert_eq!(&back, &plan);
        prop_assert!(back.validate().is_ok());
    }
}

proptest! {
    // Each case is a full (small) simulation; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// No valid plan — overlapping faults, zero-length windows, windows
    /// the run never reaches, out-of-range tag/port indices, restarts —
    /// panics the controller, and the trace it leaves is one the obs
    /// model accepts and analyzes.
    #[test]
    fn any_plan_runs_to_completion_with_a_parseable_trace(
        plan in arb_plan(),
        seed in 0u64..1000,
    ) {
        let events = run_faulted(seed, &plan);
        prop_assert!(!events.is_empty(), "run left no telemetry");

        let trace = Trace::from_events(&events).expect("obs must accept a faulted trace");
        prop_assert_eq!(trace.cycles.len(), CYCLES);

        // Analysis is total too: markers pair up (or extend to trace
        // end), counters are consistent, the report renders.
        let report = RunReport::analyze(&trace, &AnalyzeConfig::default());
        let rendered = report.to_string();
        prop_assert!(!rendered.is_empty());
        if let Some(fault) = &report.fault {
            for w in &fault.windows {
                prop_assert!(w.end >= w.start, "inverted attributed window");
            }
        }
    }
}

proptest! {
    // Two full runs per case: fewer cases still.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Faulted runs replay: the injector draws no randomness of its own,
    /// so same seed + same plan → the identical event stream.
    #[test]
    fn faulted_runs_are_deterministic(plan in arb_plan(), seed in 0u64..1000) {
        let a = run_faulted(seed, &plan);
        let b = run_faulted(seed, &plan);
        prop_assert_eq!(a, b, "same seed + same plan diverged");
    }
}
