//! Full-stack integration tests: scene → RF channel → Gen2 protocol →
//! reader → Tagwatch controller, exercising the behaviours the paper's
//! §3/§4.3 narrative promises across module boundaries.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::prelude::*;
use tagwatch_reader::{Reader, ReaderConfig};
use tagwatch_rf::{ChannelPlan, Vec3};
use tagwatch_scene::{presets, Scene, SceneTag, Trajectory};

fn epcs(n: usize, seed: u64) -> Vec<Epc> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Epc::random(&mut rng)).collect()
}

fn reader_for(scene: Scene, ids: &[Epc], seed: u64) -> Reader {
    let cfg = ReaderConfig {
        channel_plan: ChannelPlan::single(922.5e6),
        ..ReaderConfig::default()
    };
    Reader::new(scene, ids, cfg, seed)
}

fn fast_cfg() -> TagwatchConfig {
    let mut cfg = TagwatchConfig {
        phase2_len: 1.0,
        ..TagwatchConfig::default()
    };
    cfg.gmm.alpha = 0.01; // short test horizons
    cfg
}

#[test]
fn state_transition_stationary_to_moving_is_caught() {
    // A tag that sits still for 60 s and is then displaced must be
    // scheduled within a couple of cycles of the displacement.
    let mut scene = presets::random_room(15, 3);
    scene.tags[7] = SceneTag::new(
        7,
        Trajectory::StepDisplacement {
            origin: scene.tags[7].position_at(0.0),
            displacement: Vec3::new(0.05, 0.03, 0.0),
            t_step: 60.0,
        },
    );
    let ids = epcs(15, 4);
    let mut reader = reader_for(scene, &ids, 5);
    let mut ctl = Controller::new(fast_cfg());

    // Reach steady state well before the step: mostly unscheduled over
    // the last few pre-step cycles (occasional false positives are within
    // the paper's FPR budget).
    let mut pre_targeted = 0;
    let mut pre_cycles = 0;
    while reader.now() < 55.0 {
        let rep = ctl.run_cycle(&mut reader).unwrap();
        if reader.now() > 40.0 {
            pre_cycles += 1;
            if rep.targets.contains(&ids[7]) {
                pre_targeted += 1;
            }
        }
    }
    assert!(
        pre_targeted * 3 <= pre_cycles,
        "tag 7 scheduled {pre_targeted}/{pre_cycles} cycles while static"
    );

    // After the step, it must be targeted within a few cycles (an
    // unscheduled tag is only read once per antenna per cycle, and the
    // per-reading detection probability at ~6 cm is high but not 1).
    let mut caught = false;
    for _ in 0..8 {
        let rep = ctl.run_cycle(&mut reader).unwrap();
        if reader.now() > 60.0 && rep.targets.contains(&ids[7]) {
            caught = true;
            break;
        }
    }
    assert!(caught, "displacement never caught");
}

#[test]
fn moving_to_stationary_drops_out_after_learning() {
    // The reverse transition (§4.3): a tag that stops moving is
    // mis-scheduled while its new immobility model learns, then drops
    // out of Phase II.
    let mut scene = presets::random_room(12, 8);
    scene.tags[3] = SceneTag::new(
        3,
        Trajectory::Waypoints {
            points: vec![
                (0.0, Vec3::new(1.0, 0.0, 0.8)),
                (20.0, Vec3::new(-1.0, 1.0, 0.8)), // slowly carried
            ],
        },
    );
    let ids = epcs(12, 9);
    let mut reader = reader_for(scene, &ids, 10);
    let mut ctl = Controller::new(fast_cfg());

    // While it moves (t < 20), it should be targeted at steady state.
    let mut targeted_while_moving = 0;
    let mut cycles_while_moving = 0;
    while reader.now() < 20.0 {
        let rep = ctl.run_cycle(&mut reader).unwrap();
        if reader.now() > 8.0 {
            cycles_while_moving += 1;
            if rep.targets.contains(&ids[3]) {
                targeted_while_moving += 1;
            }
        }
    }
    assert!(
        targeted_while_moving * 2 >= cycles_while_moving,
        "mover targeted only {targeted_while_moving}/{cycles_while_moving} cycles"
    );

    // After it stops, give the new-place model time to learn, then check
    // it is no longer scheduled.
    while reader.now() < 45.0 {
        ctl.run_cycle(&mut reader).unwrap();
    }
    let mut targeted_after = 0;
    for _ in 0..5 {
        let rep = ctl.run_cycle(&mut reader).unwrap();
        if rep.targets.contains(&ids[3]) {
            targeted_after += 1;
        }
    }
    assert!(
        targeted_after <= 1,
        "stopped tag still scheduled {targeted_after}/5 cycles"
    );
}

#[test]
fn decode_faults_degrade_gracefully() {
    // With 20% of clean singletons garbled, the system must still converge
    // to selective reading of the mover — just more slowly.
    let scene = presets::turntable(20, 1, 11);
    let ids = epcs(20, 12);
    let cfg = ReaderConfig {
        channel_plan: ChannelPlan::single(922.5e6),
        decode_fail_prob: 0.2,
        ..ReaderConfig::default()
    };
    let mut reader = Reader::new(scene, &ids, cfg, 13);
    let mut ctl = Controller::new(fast_cfg());
    let mut selective_tail = 0;
    for k in 0..45 {
        let rep = ctl.run_cycle(&mut reader).unwrap();
        if k >= 35 && rep.mode == ScheduleMode::Selective && rep.targets.contains(&ids[0]) {
            selective_tail += 1;
        }
    }
    assert!(
        selective_tail >= 6,
        "only {selective_tail}/10 tail cycles selective under faults"
    );
}

#[test]
fn churn_of_arriving_and_departing_tags() {
    // Tags streaming through the field (conveyor-style presence windows)
    // must be read while present, assumed mobile on arrival, and evicted
    // after departure without disturbing the resident population.
    let mut scene = presets::random_room(10, 14);
    for k in 0..5u64 {
        let t0 = 5.0 + k as f64 * 6.0;
        scene.add_tag(
            SceneTag::new(
                100 + k,
                Trajectory::Conveyor {
                    start: Vec3::new(-2.0, 2.0, 0.8),
                    end: Vec3::new(2.0, 2.0, 0.8),
                    speed: 0.8,
                    t_depart: t0,
                },
            )
            .with_presence(t0, t0 + 5.0),
        );
    }
    let ids = epcs(15, 15);
    let mut reader = reader_for(scene, &ids, 16);
    let mut cfg = fast_cfg();
    cfg.eviction_timeout = 8.0;
    let mut ctl = Controller::new(cfg);

    let mut transient_seen = [false; 5];
    let mut transient_targeted = [false; 5];
    let mut evicted_total = 0;
    while reader.now() < 50.0 {
        let rep = ctl.run_cycle(&mut reader).unwrap();
        for k in 0..5 {
            if rep.census.contains(&ids[10 + k]) {
                transient_seen[k] = true;
            }
            if rep.targets.contains(&ids[10 + k]) {
                transient_targeted[k] = true;
            }
        }
        evicted_total += rep.evicted.len();
    }
    assert!(
        transient_seen.iter().all(|&s| s),
        "some conveyor tags never read: {transient_seen:?}"
    );
    assert!(
        transient_targeted.iter().filter(|&&t| t).count() >= 4,
        "conveyor tags not prioritised: {transient_targeted:?}"
    );
    assert!(
        evicted_total >= 4,
        "departed tags not evicted ({evicted_total})"
    );
    // Residents survived the churn.
    assert!(ctl.tracked_tags() >= 10);
}

#[test]
fn concerned_tags_survive_detector_blindness() {
    // Even with a deliberately blind detector (RSS differencing with an
    // absurd threshold), configuration-file tags are still scheduled.
    let scene = presets::random_room(10, 17);
    let ids = epcs(10, 18);
    let mut reader = reader_for(scene, &ids, 19);
    let mut cfg = fast_cfg();
    cfg.detector = DetectorKind::RssDiff(1e9);
    cfg.concerned = vec![ids[2], ids[6]];
    let mut ctl = Controller::new(cfg);
    // First cycles: every unknown tag votes mobile on its first reading
    // (the paper's prior), so Phase II reads all. Let that wash out.
    for _ in 0..3 {
        ctl.run_cycle(&mut reader).unwrap();
    }
    for _ in 0..5 {
        let rep = ctl.run_cycle(&mut reader).unwrap();
        assert!(rep.targets.contains(&ids[2]));
        assert!(rep.targets.contains(&ids[6]));
        assert_eq!(rep.mode, ScheduleMode::Selective);
    }
}

#[test]
// Exact float equality is the property under test: identical-seed runs
// must be bit-identical, tolerances would mask real divergence.
#[allow(clippy::float_cmp)]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let scene = presets::turntable(25, 2, 21);
        let ids = epcs(25, 22);
        let mut reader = reader_for(scene, &ids, 23);
        let mut ctl = Controller::new(fast_cfg());
        let mut digest = Vec::new();
        for _ in 0..8 {
            let rep = ctl.run_cycle(&mut reader).unwrap();
            digest.push((
                rep.mode,
                rep.census.len(),
                rep.targets.clone(),
                rep.phase1.len(),
                rep.phase2.len(),
            ));
        }
        (digest, reader.now())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}
