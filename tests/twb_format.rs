//! Cross-crate trace-format integration: one real controller workload,
//! captured to JSONL and to compact `.twb`, must be *indistinguishable*
//! downstream — identical record numbering, byte-identical analyzer
//! verdicts — while the binary file meets the size bar the CI trace gate
//! enforces. Also the honesty checks behind that claim: a sharded
//! capture canonicalizes to the very bytes the single-file sink wrote,
//! and a real trace truncated at *every* byte offset decodes to a clean
//! prefix or a classified error, never a panic.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tagwatch::prelude::*;
use tagwatch_obs::model::Trace;
use tagwatch_obs::{AnalyzeConfig, RunReport};
use tagwatch_reader::{Reader, ReaderConfig};
use tagwatch_scene::presets;
use tagwatch_telemetry::jsonl::ParseError;
use tagwatch_telemetry::shard::{merge_to_twb, ShardedSink};
use tagwatch_telemetry::{format, BinarySink, Event, JsonlSink, MemorySink, Sink, Telemetry};

fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "tagwatch-twb-int-{}-{}-{name}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Runs a turntable workload with full instrumentation and returns the
/// captured event stream (with its closing footer).
fn captured_workload_sized(n_tags: usize, movers: usize, cycles: usize) -> Vec<Event> {
    let scene = presets::turntable(n_tags, movers, 31);
    let ids: Vec<Epc> = {
        let mut rng = StdRng::seed_from_u64(32);
        (0..n_tags).map(|_| Epc::random(&mut rng)).collect()
    };
    let mut reader = Reader::new(scene, &ids, ReaderConfig::default(), 33);
    let tel = Telemetry::new();
    let sink = MemorySink::new(1 << 16);
    tel.install(Box::new(sink.clone()));
    for epc in &ids[..movers] {
        tel.tag_event("truth.mobile", epc.bits(), 0.0);
    }
    let mut ctl = Controller::new(TagwatchConfig::default()).with_telemetry(tel.clone());
    ctl.run_cycles(&mut reader, cycles).expect("valid config");
    // finish() records the closing footer into the installed sink.
    tel.finish();
    sink.events()
}

fn captured_workload() -> Vec<Event> {
    captured_workload_sized(20, 2, 4)
}

/// Writes the stream through both file sinks, returning the two paths.
fn capture_both(events: &[Event]) -> (PathBuf, PathBuf) {
    let jsonl_path = scratch("run.jsonl");
    let twb_path = scratch("run.twb");
    let mut jsonl = JsonlSink::create(&jsonl_path).expect("jsonl sink");
    let mut twb = BinarySink::create(&twb_path).expect("binary sink");
    for ev in events {
        jsonl.record(ev);
        twb.record(ev);
    }
    drop(jsonl);
    drop(twb);
    (jsonl_path, twb_path)
}

#[test]
fn both_formats_number_records_identically() {
    let events = captured_workload();
    let (jsonl_path, twb_path) = capture_both(&events);
    let a = format::read_events_path(&jsonl_path).expect("jsonl reads");
    let b = format::read_events_path(&twb_path).expect("twb reads");
    assert_eq!(a.len(), events.len());
    assert_eq!(a, b, "record numbering or payloads diverged across formats");
    std::fs::remove_file(&jsonl_path).ok();
    std::fs::remove_file(&twb_path).ok();
}

#[test]
fn analyzer_verdicts_are_byte_identical_across_formats() {
    let events = captured_workload();
    let (jsonl_path, twb_path) = capture_both(&events);
    let cfg = AnalyzeConfig::default();
    let report = |p: &PathBuf| {
        let trace = Trace::from_path(p).expect("trace loads");
        serde_json::to_string(&RunReport::analyze(&trace, &cfg)).expect("report serializes")
    };
    assert_eq!(
        report(&jsonl_path),
        report(&twb_path),
        "RunReport diverged between JSONL and .twb capture of the same run"
    );
    std::fs::remove_file(&jsonl_path).ok();
    std::fs::remove_file(&twb_path).ok();
}

#[test]
fn binary_capture_meets_the_size_bar() {
    let events = captured_workload();
    let (jsonl_path, twb_path) = capture_both(&events);
    let jsonl_bytes = std::fs::metadata(&jsonl_path).expect("jsonl stat").len();
    let twb_bytes = std::fs::metadata(&twb_path).expect("twb stat").len();
    assert!(
        jsonl_bytes >= 5 * twb_bytes,
        "real-trace compression below the 5x CI bar: {jsonl_bytes} JSONL bytes \
         vs {twb_bytes} .twb bytes"
    );
    std::fs::remove_file(&jsonl_path).ok();
    std::fs::remove_file(&twb_path).ok();
}

#[test]
fn sharded_capture_canonicalizes_to_the_single_file_bytes() {
    let events = captured_workload();
    for count in [2usize, 4] {
        let single = scratch(&format!("single-{count}.twb"));
        let mut sink = BinarySink::create(&single).expect("binary sink");
        for ev in &events {
            sink.record(ev);
        }
        drop(sink);

        let base = scratch(&format!("sharded-{count}.twb"));
        let mut sharded = ShardedSink::create(&base, count).expect("sharded sink");
        for ev in &events {
            sharded.record(ev);
        }
        let paths = sharded.paths();
        drop(sharded);

        let merged = merge_to_twb(&paths).expect("shard set merges");
        let reference = std::fs::read(&single).expect("single file reads");
        assert_eq!(
            merged, reference,
            "{count}-shard merge is not bit-identical to the unsharded capture"
        );
        std::fs::remove_file(&single).ok();
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }
}

#[test]
fn truncation_at_every_byte_offset_never_panics_and_prefixes_cleanly() {
    // A real run, capped to its first few hundred events: the sweep
    // re-decodes the trace once per byte offset, so its cost is
    // quadratic in the trace size.
    let mut events = captured_workload_sized(8, 1, 2);
    events.truncate(300);
    let (jsonl_path, twb_path) = capture_both(&events);
    let bytes = std::fs::read(&twb_path).expect("twb reads");
    let full = format::read_events_bytes(&bytes).expect("full trace decodes");
    for cut in 0..=bytes.len() {
        match format::read_events_bytes(&bytes[..cut]) {
            // A clean cut: the decoded events are a prefix of the full
            // decode with their original record numbers.
            Ok(prefix) => {
                assert!(prefix.len() <= full.len(), "cut {cut} decoded extra events");
                assert_eq!(
                    prefix,
                    full[..prefix.len()],
                    "cut {cut} diverged from the full decode"
                );
            }
            // A mid-record cut classifies as truncation, never as
            // corruption: none of these bytes are wrong, just missing.
            Err(ParseError::TruncatedTail { .. }) => {}
            Err(other) => panic!("cut {cut}: unexpected error {other}"),
        }
    }
    std::fs::remove_file(&jsonl_path).ok();
    std::fs::remove_file(&twb_path).ok();
}
