//! Property-based tests for the Gen2 substrate: EPC bit addressing,
//! bitmask matching, Select flag semantics, and frame-sizer bounds.

use proptest::prelude::*;
use tagwatch_gen2::{
    BitMask, Epc, FrameSizer, InvFlag, MemBank, QAdaptive, SelAction, SelTarget, Select,
    SlotOutcome, TagProto, EPC_BITS,
};

fn arb_epc() -> impl Strategy<Value = Epc> {
    (any::<u64>(), any::<u32>())
        .prop_map(|(lo, hi)| Epc::from_bits(((hi as u128) << 64) | lo as u128))
}

fn arb_range() -> impl Strategy<Value = (u16, u16)> {
    (0u16..EPC_BITS).prop_flat_map(|pointer| (Just(pointer), 0u16..=(EPC_BITS - pointer)))
}

proptest! {
    #[test]
    fn epc_bytes_round_trip(epc in arb_epc()) {
        prop_assert_eq!(Epc::from_bytes(epc.to_bytes()), epc);
    }

    #[test]
    fn epc_hex_round_trip(epc in arb_epc()) {
        let s = epc.to_string();
        prop_assert_eq!(s.len(), 24);
        prop_assert_eq!(s.parse::<Epc>().unwrap(), epc);
    }

    #[test]
    fn extract_matches_bitwise_loop(epc in arb_epc(), (p, l) in arb_range()) {
        let got = epc.extract(p, l);
        let mut want: u128 = 0;
        for i in 0..l {
            want = (want << 1) | epc.bit(p + i) as u128;
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn mask_from_own_range_always_matches(epc in arb_epc(), (p, l) in arb_range()) {
        let mask = BitMask::from_epc_range(epc, p, l);
        prop_assert!(mask.matches(epc));
    }

    #[test]
    fn mask_match_equals_substring_equality(
        a in arb_epc(),
        b in arb_epc(),
        (p, l) in arb_range(),
    ) {
        let mask = BitMask::from_epc_range(a, p, l);
        let expected = a.extract(p, l) == b.extract(p, l);
        prop_assert_eq!(mask.matches(b), expected);
    }

    #[test]
    fn exact_mask_matches_iff_equal(a in arb_epc(), b in arb_epc()) {
        let mask = BitMask::exact(a);
        prop_assert_eq!(mask.matches(b), a == b);
    }

    #[test]
    fn select_action_table_is_respected(
        epc in arb_epc(),
        (p, l) in arb_range(),
        action_idx in 0usize..8,
        initial_sl in any::<bool>(),
    ) {
        use SelAction::*;
        let actions = [
            AssertElseDeassert, AssertElseNothing, NothingElseDeassert,
            ToggleElseNothing, DeassertElseAssert, DeassertElseNothing,
            NothingElseAssert, NothingElseToggle,
        ];
        let action = actions[action_idx];
        let mask = BitMask::from_epc_range(epc, p, l); // always matches epc
        let mut tag = TagProto::new(epc);
        tag.sl = initial_sl;
        tag.handle_select(&Select {
            target: SelTarget::Sl,
            action,
            bank: MemBank::Epc,
            mask,
            truncate: false,
        });
        let (on_match, _) = action.ops();
        let expected = match on_match {
            tagwatch_gen2::commands::FlagOp::Assert => true,
            tagwatch_gen2::commands::FlagOp::Deassert => false,
            tagwatch_gen2::commands::FlagOp::Toggle => !initial_sl,
            tagwatch_gen2::commands::FlagOp::Nothing => initial_sl,
        };
        prop_assert_eq!(tag.sl, expected);
    }

    #[test]
    fn qadaptive_q_stays_in_bounds(
        initial_q in 0u8..=15,
        outcomes in proptest::collection::vec(0u8..3, 0..200),
    ) {
        let mut sizer = QAdaptive::new(initial_q);
        for o in outcomes {
            let outcome = match o {
                0 => SlotOutcome::Empty,
                1 => SlotOutcome::Collision,
                _ => SlotOutcome::Success,
            };
            sizer.on_slot(outcome);
            let q = sizer.current_q();
            prop_assert!(q <= 15, "Q out of bounds: {}", q);
        }
    }

    #[test]
    fn inventoried_flag_round_trips(epc in arb_epc(), session_idx in 0usize..4) {
        use tagwatch_gen2::Session;
        let session = [Session::S0, Session::S1, Session::S2, Session::S3][session_idx];
        let mut tag = TagProto::new(epc);
        prop_assert_eq!(tag.inventoried[session.index()], InvFlag::A);
        // Deassert (→B) then re-arm (→A) must round-trip.
        tag.handle_select(&Select {
            target: SelTarget::Inventoried(session),
            action: SelAction::DeassertElseNothing,
            bank: MemBank::Epc,
            mask: BitMask::MATCH_ALL,
            truncate: false,
        });
        prop_assert_eq!(tag.inventoried[session.index()], InvFlag::B);
        tag.handle_select(&Select::reset_inventoried(session));
        prop_assert_eq!(tag.inventoried[session.index()], InvFlag::A);
    }
}
