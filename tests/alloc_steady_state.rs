//! Steady-state allocation audit for the hot round path.
//!
//! The batched engine's pitch is not just fewer instructions — it is that
//! a sampling-off run (telemetry enabled, zero sinks) stops touching the
//! heap once every scratch buffer has reached its high-water capacity:
//! the round workspace SoA vectors, the compiled-Select scratch, the
//! reflector scratch, the per-round event ring, the telemetry counter
//! registry, and the caller's report buffer are all warmed once and then
//! recycled. This test proves that claim with a counting global
//! allocator: after a warm-up phase, hundreds of further rounds must
//! perform **zero** heap allocations.
//!
//! The file deliberately holds exactly one `#[test]` so no concurrent
//! test thread can allocate while the steady-state window is measured.
#![allow(unsafe_code)]
#![allow(clippy::float_cmp)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use tagwatch_gen2::Epc;
use tagwatch_reader::{Reader, ReaderConfig, RoSpec};
use tagwatch_scene::presets;
use tagwatch_telemetry::Telemetry;

/// Counts every allocation request (alloc, alloc_zeroed, realloc) and
/// delegates to the system allocator. Deallocations are not counted:
/// freeing warm-up scratch during the window is harmless; *acquiring*
/// memory is what the steady-state contract forbids.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// lint:allow(unsafe-free): counting allocator must implement the unsafe GlobalAlloc trait
unsafe impl GlobalAlloc for CountingAlloc {
    // lint:allow(unsafe-free): GlobalAlloc methods are inherently unsafe
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // lint:allow(unsafe-free): GlobalAlloc methods are inherently unsafe
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    // lint:allow(unsafe-free): GlobalAlloc methods are inherently unsafe
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // lint:allow(unsafe-free): GlobalAlloc methods are inherently unsafe
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    const SEED: u64 = 41;
    const N_TAGS: usize = 12;
    const WARMUP_ROUNDS: usize = 64;
    const MEASURED_ROUNDS: usize = 256;

    let scene = presets::turntable(N_TAGS, 1, SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xA110C);
    let epcs: Vec<Epc> = (0..N_TAGS).map(|_| Epc::random(&mut rng)).collect();
    let mut reader = Reader::new(scene, &epcs, ReaderConfig::default(), SEED);

    // Sampling-off telemetry: the handle is live (work counters tick) but
    // no sink is attached, so the event fast path must build nothing.
    let tel = Telemetry::new();
    tel.set_enabled(true);
    reader.set_telemetry(tel.clone());

    let spec = RoSpec::read_all(1, vec![1]);
    let mut reports = Vec::new();

    // Warm-up: let every scratch buffer, ring, and registry entry reach
    // its high-water capacity. `clear()` keeps the report capacity.
    for _ in 0..WARMUP_ROUNDS {
        reader
            .execute_into(&spec, &mut reports)
            .expect("valid ROSpec");
        reports.clear();
    }
    assert!(
        !reader.events.is_empty(),
        "warm-up must have filled the per-round event ring"
    );

    let before = allocations();
    for _ in 0..MEASURED_ROUNDS {
        reader
            .execute_into(&spec, &mut reports)
            .expect("valid ROSpec");
        reports.clear();
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "steady-state rounds must be allocation-free: {} allocations \
         observed across {MEASURED_ROUNDS} rounds",
        after - before
    );

    // Non-vacuity: the window did real work — rounds ran and reads landed.
    let counters: Vec<(String, u64)> = tel
        .snapshot()
        .counters()
        .map(|(name, v)| (name.to_string(), v))
        .collect();
    let slots = counters
        .iter()
        .find(|(name, _)| name.ends_with("work.slots"))
        .map_or(0, |(_, v)| *v);
    assert!(
        slots > 0,
        "measured window must have executed slots, got counters {counters:?}"
    );
}
