//! Property-based tests for the inventory-round engine: protocol
//! invariants that must hold for any population, Q setting, and fault
//! rate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch_gen2::{
    run_round, Epc, IdealDfsa, InvFlag, LinkTiming, QAdaptive, Query, QuerySel, RoundConfig,
    Session, TagProto,
};

fn population(n: usize, seed: u64) -> Vec<TagProto> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| TagProto::new(Epc::random(&mut rng)))
        .collect()
}

fn open_query(q: u8) -> Query {
    Query {
        q,
        sel: QuerySel::All,
        session: Session::S0,
        target: InvFlag::A,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_participant_read_exactly_once(
        n in 0usize..60,
        initial_q in 0u8..8,
        seed in any::<u64>(),
    ) {
        let mut tags = population(n, seed);
        let mut sizer = QAdaptive::new(initial_q);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x50u64);
        let res = run_round(
            &mut tags,
            &RoundConfig::new(open_query(initial_q)),
            &mut sizer,
            &LinkTiming::r420(),
            &mut rng,
        );
        // Exactly one read per tag, no duplicates, correct EPCs.
        prop_assert_eq!(res.reads.len(), n);
        let mut seen: Vec<usize> = res.reads.iter().map(|r| r.tag_idx).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), n);
        for read in &res.reads {
            prop_assert_eq!(read.epc, tags[read.tag_idx].epc);
        }
        // Accounting consistency.
        prop_assert_eq!(res.stats.successes, n);
        prop_assert!(res.duration >= LinkTiming::r420().round_overhead);
        // Read times are strictly increasing and within the round.
        let mut prev = 0.0;
        for read in &res.reads {
            prop_assert!(read.t > prev);
            prop_assert!(read.t <= res.duration + 1e-12);
            prev = read.t;
        }
    }

    #[test]
    fn faulty_rounds_still_cover_everyone(
        n in 1usize..40,
        fail in 0.0f64..0.45,
        seed in any::<u64>(),
    ) {
        let mut tags = population(n, seed);
        let mut cfg = RoundConfig::new(open_query(4));
        cfg.decode_fail_prob = fail;
        let mut sizer = QAdaptive::new(4);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA);
        let res = run_round(&mut tags, &cfg, &mut sizer, &LinkTiming::r420(), &mut rng);
        prop_assert_eq!(res.reads.len(), n, "lost tags under {}% faults", fail * 100.0);
    }

    #[test]
    fn duration_equals_sum_of_parts(
        n in 1usize..30,
        seed in any::<u64>(),
    ) {
        // Reconstruct the round duration from its slot statistics (with
        // no truncation every success costs the same), as a cross-check
        // that no time is charged twice or dropped.
        let timing = LinkTiming::r420();
        let mut tags = population(n, seed);
        let mut sizer = IdealDfsa::new(n);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD0);
        let res = run_round(
            &mut tags,
            &RoundConfig::new(open_query(4)),
            &mut sizer,
            &timing,
            &mut rng,
        );
        let expected = timing.round_overhead
            + timing.t_query
            + res.stats.empties as f64 * timing.empty_slot()
            + (res.stats.collisions + res.stats.decode_failures) as f64
                * timing.collision_slot()
            + res.stats.successes as f64 * timing.success_slot()
            + res.stats.adjusts as f64 * timing.t_query_adjust;
        prop_assert!(
            (res.duration - expected).abs() < 1e-9,
            "duration {} != reconstructed {}",
            res.duration,
            expected
        );
    }

    #[test]
    fn rounds_are_deterministic(
        n in 0usize..30,
        seed in any::<u64>(),
    ) {
        let run_once = || {
            let mut tags = population(n, seed);
            let mut sizer = QAdaptive::new(4);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xDE);
            run_round(
                &mut tags,
                &RoundConfig::new(open_query(4)),
                &mut sizer,
                &LinkTiming::r420(),
                &mut rng,
            )
        };
        prop_assert_eq!(run_once(), run_once());
    }
}
