//! End-to-end observability contract: a real controller run instrumented
//! with telemetry, re-ingested by `tagwatch-obs`, must reconstruct the
//! span tree and per-tag statistics that the in-process [`CycleReport`]s
//! report as ground truth — through a `MemorySink` and, identically,
//! through a JSONL file on disk. On top of that sit the gates: an
//! identical-seed re-run diffs clean, and an injected decode-failure
//! regression is flagged on an `irr.*` metric.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use tagwatch::metrics::Confusion;
use tagwatch::prelude::*;
use tagwatch_obs::analyze::{AnalyzeConfig, RunReport};
use tagwatch_obs::diff::DiffReport;
use tagwatch_obs::model::Trace;
use tagwatch_reader::{Reader, ReaderConfig};
use tagwatch_scene::presets;
use tagwatch_telemetry::{Event, JsonlSink, MemorySink, Telemetry};

/// One instrumented controller run with its in-process ground truth.
struct Run {
    reports: Vec<CycleReport>,
    events: Vec<Event>,
    /// EPCs of the tags the scene actually moves.
    movers: BTreeSet<Epc>,
    /// JSONL copy of the same event stream, when requested.
    jsonl: Option<std::path::PathBuf>,
}

impl Drop for Run {
    fn drop(&mut self) {
        if let Some(p) = &self.jsonl {
            std::fs::remove_file(p).ok();
        }
    }
}

/// Drives `cycles` controller cycles over a turntable scene on a private
/// telemetry handle, mirroring what `repro obs-run --telemetry` records.
fn drive(seed: u64, n: usize, n_mobile: usize, cycles: usize, fail: f64, jsonl: bool) -> Run {
    let scene = presets::turntable(n, n_mobile, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE9C5);
    let epcs: Vec<Epc> = (0..n).map(|_| Epc::random(&mut rng)).collect();
    let cfg = ReaderConfig {
        decode_fail_prob: fail,
        ..ReaderConfig::default()
    };
    let mut reader = Reader::new(scene, &epcs, cfg, seed ^ 1);

    let tel = Telemetry::new();
    let sink = MemorySink::new(1 << 20);
    tel.install(Box::new(sink.clone()));
    let path = jsonl.then(|| {
        let p = std::env::temp_dir().join(format!(
            "tagwatch-obs-itest-{}-{seed}.jsonl",
            std::process::id()
        ));
        tel.install(Box::new(JsonlSink::create(&p).expect("temp file")));
        p
    });

    for e in &epcs[..n_mobile] {
        tel.tag_event("truth.mobile", e.bits(), 0.0);
    }
    let mut ctl = Controller::new(TagwatchConfig::default()).with_telemetry(tel.clone());
    let reports = ctl.run_cycles(&mut reader, cycles).expect("valid config");
    tel.flush();

    Run {
        reports,
        events: sink.events(),
        movers: epcs[..n_mobile].iter().copied().collect(),
        jsonl: path,
    }
}

#[test]
fn trace_span_tree_matches_cycle_reports() {
    let run = drive(11, 12, 1, 5, 0.0, false);
    let trace = Trace::from_events(&run.events).expect("well-formed trace");

    assert_eq!(trace.cycles.len(), run.reports.len());
    for (node, rep) in trace.cycles.iter().zip(&run.reports) {
        assert!(
            (node.span.start - rep.t_start).abs() < 1e-9,
            "cycle start {} vs report {}",
            node.span.start,
            rep.t_start
        );
        assert!((node.end() - rep.t_end).abs() < 1e-9);
        let p1 = node.phase1.as_ref().expect("phase1 span");
        let p2 = node.phase2.as_ref().expect("phase2 span");
        assert!(!p1.rounds.is_empty(), "phase1 ran at least one round");
        assert!(
            (p1.span.duration - rep.phase1_duration).abs() < 1e-9,
            "phase1 duration"
        );
        assert!((p2.span.duration - rep.phase2_duration).abs() < 1e-9);
        // Round spans tile their phase: summed round time never exceeds it.
        let round_time: f64 = p1.rounds.iter().map(|r| r.span.duration).sum();
        assert!(round_time <= p1.span.duration + 1e-6);
        assert!(node.compute.is_some(), "cycle.compute wall span");
    }
    assert!(trace.stray_rounds.is_empty());

    // Aggregate counters agree with summed per-cycle ground truth.
    let phase1_total: usize = run.reports.iter().map(|r| r.phase1.len()).sum();
    let phase2_total: usize = run.reports.iter().map(|r| r.phase2.len()).sum();
    assert_eq!(trace.counter("phase1.reports"), phase1_total as u64);
    assert_eq!(trace.counter("phase2.reports"), phase2_total as u64);
    assert_eq!(trace.counter("cycle.count"), run.reports.len() as u64);
}

#[test]
fn analyzers_agree_with_in_process_ground_truth() {
    let run = drive(12, 12, 1, 5, 0.0, false);
    let trace = Trace::from_events(&run.events).unwrap();
    let r = RunReport::analyze(&trace, &AnalyzeConfig::default());

    // Per-tag reads = every phase1 + phase2 report delivered.
    let total_reports: usize = run
        .reports
        .iter()
        .map(|c| c.phase1.len() + c.phase2.len())
        .sum();
    assert_eq!(r.tags.reads_total, total_reports);

    // Per-tag IRR: recompute one tag's rate straight from the reports.
    let probe = run.reports[0].census[0];
    let probe_reads: usize = run
        .reports
        .iter()
        .flat_map(|c| c.phase1.iter().chain(&c.phase2))
        .filter(|t| t.epc == probe)
        .count();
    let expected_irr = probe_reads as f64 / trace.sim_seconds();
    let hex = format!("{:#x}", probe.bits());
    let got = r
        .tags
        .per_tag
        .iter()
        .find(|t| t.epc == hex)
        .expect("probe tag analyzed");
    assert_eq!(got.reads, probe_reads);
    assert!((got.irr - expected_irr).abs() < 1e-9);

    // Detector confusion: identical to scoring the CycleReports directly.
    let mut expected = Confusion::default();
    for c in &run.reports {
        let mobile: BTreeSet<Epc> = c.mobile.iter().copied().collect();
        for epc in &c.census {
            expected.push(mobile.contains(epc), run.movers.contains(epc));
        }
    }
    let got = r.confusion.expect("truth annotations present");
    assert_eq!(
        (got.tp, got.fp, got.tn, got.fn_),
        (expected.tp, expected.fp, expected.tn, expected.fn_),
        "confusion counts diverge from CycleReport ground truth"
    );

    // Starvation with a zero bar counts every consecutive-read pair.
    let all_gaps = tagwatch_obs::analyze::RunReport::analyze(
        &trace,
        &AnalyzeConfig {
            starvation_gap: 0.0,
        },
    );
    assert_eq!(
        all_gaps.starvation.events.len(),
        r.tags.reads_total - r.tags.tags,
        "every gap > 0 must register at a zero threshold"
    );
    // And an absurdly high bar counts none.
    let none = RunReport::analyze(
        &trace,
        &AnalyzeConfig {
            starvation_gap: 1e9,
        },
    );
    assert_eq!(none.starvation.events.len(), 0);

    // Q diagnostics are populated and bounded.
    assert!(r.q.rounds > 0);
    assert!((0.0..=1.0).contains(&r.q.oscillation));
}

#[test]
fn jsonl_file_and_memory_sink_agree() {
    let run = drive(13, 10, 1, 4, 0.0, true);
    let from_memory = Trace::from_events(&run.events).unwrap();
    let from_file = Trace::from_path(run.jsonl.as_ref().unwrap()).unwrap();

    assert_eq!(from_memory.events_total, from_file.events_total);
    assert_eq!(from_memory.cycles.len(), from_file.cycles.len());
    let cfg = AnalyzeConfig::default();
    assert_eq!(
        RunReport::analyze(&from_memory, &cfg).metric_map(),
        RunReport::analyze(&from_file, &cfg).metric_map(),
        "file round trip changed the analysis"
    );
}

#[test]
fn identical_seed_runs_diff_clean() {
    let cfg = AnalyzeConfig::default();
    let map = |run: &Run| {
        RunReport::analyze(&Trace::from_events(&run.events).unwrap(), &cfg).metric_map()
    };
    let a = map(&drive(14, 10, 1, 4, 0.0, false));
    let b = map(&drive(14, 10, 1, 4, 0.0, false));
    let d = DiffReport::diff(&a, &b, 0.10);
    assert!(d.passed(), "identical seeds must gate clean, got: {}", d);
    // Only wall-clock families (cycle.compute) may differ at all.
    for e in &d.entries {
        if !e.name.starts_with("wall.") {
            assert_eq!(e.baseline, e.current, "sim metric {} drifted", e.name);
        }
    }
}

#[test]
fn injected_decode_failures_fail_the_irr_gate() {
    let cfg = AnalyzeConfig::default();
    let map = |run: &Run| {
        RunReport::analyze(&Trace::from_events(&run.events).unwrap(), &cfg).metric_map()
    };
    let clean = map(&drive(15, 12, 1, 5, 0.0, false));
    let lossy = map(&drive(15, 12, 1, 5, 0.5, false));
    // Half the decodes failing costs far more than 10% of delivered
    // reports, so phase IRR regresses.
    let d = DiffReport::diff(&clean, &lossy, 0.10);
    assert!(!d.passed(), "gate must flag the injected regression");
    let names = d.regressed_names();
    assert!(
        names.iter().any(|n| n.starts_with("irr.")),
        "an irr.* metric must be among the regressions, got {names:?}"
    );
}
