//! Property: the compact `.twb` trace format is lossless, its sharded
//! capture is merge-invariant, and its decoder is total. Any well-typed
//! event stream must round-trip bit-exactly through `encode_stream` /
//! `decode_all` with 1-based record numbers intact; splitting the same
//! stream across any shard count must canonicalize back to the exact
//! single-shard bytes; and no truncation or byte-level corruption of a
//! valid file may ever panic the decoder — truncation classifies as
//! `Truncated` (a prefix is never *wrong*, just missing), everything
//! else as a clean prefix or `Corrupt`.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use tagwatch_telemetry::binary::{decode_all, encode_stream, DecodeError};
use tagwatch_telemetry::shard::{merge_to_twb, ShardedSink};
use tagwatch_telemetry::{
    ClockKind, CounterRecord, Event, FooterRecord, GaugeRecord, ObserveRecord, Sink, SpanRecord,
    TagRecord,
};

/// Metric-style names: 1–3 dotted lowercase segments.
fn arb_name() -> impl Strategy<Value = String> {
    "[a-z]{1,6}(\\.[a-z]{1,6}){0,2}"
}

/// Any single event with finite values (the clock math is defined on
/// finite instants; NaN payloads are excluded the same way the JSONL
/// wire format excludes them).
fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (arb_name(), any::<u64>(), any::<u64>()).prop_map(|(name, delta, total)| {
            Event::Counter(CounterRecord { name, delta, total })
        }),
        (arb_name(), -1e12f64..1e12)
            .prop_map(|(name, value)| { Event::Gauge(GaugeRecord { name, value }) }),
        (arb_name(), 0.0f64..1e9)
            .prop_map(|(name, value)| { Event::Observe(ObserveRecord { name, value }) }),
        (arb_name(), any::<u128>(), 0.0f64..1e6)
            .prop_map(|(name, epc, t)| { Event::Tag(TagRecord { name, epc, t }) }),
        (
            arb_name(),
            any::<u64>(),
            proptest::option::of(any::<u64>()),
            0.0f64..1e6,
            0.0f64..1e3,
            prop_oneof![Just(ClockKind::Sim), Just(ClockKind::Wall)],
        )
            .prop_map(|(name, id, parent, start, duration, clock)| {
                Event::Span(SpanRecord {
                    name,
                    id,
                    parent,
                    start,
                    duration,
                    clock,
                })
            }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            1u32..1000,
            any::<u64>()
        )
            .prop_map(|(emitted, sampled_out, dropped, every, max)| {
                Event::Footer(FooterRecord {
                    emitted,
                    sampled_out,
                    dropped,
                    sample_every_n_rounds: every,
                    max_events: max,
                })
            }),
    ]
}

/// Unique scratch base path per proptest case (cases run concurrently).
fn scratch_twb() -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "tagwatch-prop-twb-{}-{}.twb",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    /// encode ∘ decode is the identity on any event stream, and every
    /// event keeps its 1-based record number.
    #[test]
    fn twb_round_trips_any_event_stream(
        events in prop::collection::vec(arb_event(), 0..60),
    ) {
        let bytes = encode_stream(&events);
        let (header, decoded) = decode_all(&bytes).expect("own encoding decodes");
        prop_assert_eq!(header.shard_count, 1);
        prop_assert_eq!(decoded.len(), events.len());
        for (k, (got, want)) in decoded.iter().zip(&events).enumerate() {
            prop_assert_eq!(got.record, k + 1, "record number drifted");
            prop_assert_eq!(&got.event, want);
        }
    }

    /// Splitting one emission stream across any shard count and merging
    /// it back canonicalizes to bytes bit-identical to the single-shard
    /// encoding — the invariant `ci.sh --trace` gates on.
    #[test]
    fn sharded_merge_bytes_are_shard_count_invariant(
        events in prop::collection::vec(arb_event(), 0..60),
        count in 1usize..=5,
    ) {
        let reference = encode_stream(&events);
        let base = scratch_twb();
        let mut sink = ShardedSink::create(&base, count).expect("shard files");
        for ev in &events {
            sink.record(ev);
        }
        let paths = sink.paths();
        drop(sink);
        let merged = merge_to_twb(&paths).expect("complete shard set merges");
        for p in &paths {
            std::fs::remove_file(p).ok();
        }
        prop_assert_eq!(
            merged, reference,
            "{}-shard merge diverged from the canonical bytes", count
        );
    }

    /// A truncated file decodes to a clean prefix of the full stream or
    /// classifies as `Truncated` — never `Corrupt` (no prefix byte is
    /// wrong), and never a panic.
    #[test]
    fn any_truncation_is_a_prefix_or_a_truncated_error(
        events in prop::collection::vec(arb_event(), 1..40),
        cut_seed in any::<usize>(),
    ) {
        let bytes = encode_stream(&events);
        let (_, full) = decode_all(&bytes).expect("own encoding decodes");
        let cut = cut_seed % bytes.len();
        match decode_all(&bytes[..cut]) {
            Ok((_, prefix)) => {
                prop_assert!(prefix.len() <= full.len());
                for (got, want) in prefix.iter().zip(&full) {
                    prop_assert_eq!(&got.event, &want.event);
                }
            }
            Err(DecodeError::Truncated { record }) => {
                prop_assert!(record >= 1);
            }
            Err(other) => prop_assert!(false, "cut {} classified as {:?}", cut, other),
        }
    }

    /// Byte-level corruption — overwrites anywhere in the file, string
    /// table and varints included — never panics the decoder: every
    /// outcome is a normal return.
    #[test]
    fn byte_corruption_never_panics(
        events in prop::collection::vec(arb_event(), 1..30),
        edits in prop::collection::vec((any::<usize>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = encode_stream(&events);
        for (pos, val) in &edits {
            let idx = pos % bytes.len();
            bytes[idx] = *val;
        }
        // Any of Ok / Truncated / Corrupt is acceptable; panicking or
        // looping forever is not. (proptest turns a panic into a failure
        // with the minimal corrupting edit sequence.)
        let _ = decode_all(&bytes);
    }

    /// Appending garbage after a valid stream decodes the stream then
    /// classifies the tail — again without panicking.
    #[test]
    fn trailing_garbage_never_panics(
        events in prop::collection::vec(arb_event(), 0..20),
        tail in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut bytes = encode_stream(&events);
        bytes.extend_from_slice(&tail);
        let _ = decode_all(&bytes);
    }
}
