//! Property-based tests for the trace generator and its statistics.

use proptest::prelude::*;
use tagwatch_trace::{
    fraction_above, generate, read_counts, read_csv, read_json, summarize, timeline, write_csv,
    write_json, TraceConfig,
};

fn arb_config() -> impl Strategy<Value = TraceConfig> {
    (
        60.0f64..600.0, // duration
        10usize..80,    // total tags
        1usize..30,     // parked tags (≤ total enforced below)
        0.005f64..0.2,  // arrivals per second
        0.01f64..0.3,   // duty cycle
    )
        .prop_map(|(duration, total, parked, arrivals, duty)| TraceConfig {
            duration,
            total_tags: total,
            parked_tags: parked.min(total),
            arrivals_per_s: arrivals,
            duty_cycle: duty,
            ..TraceConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generator_invariants(cfg in arb_config(), seed in any::<u64>()) {
        let trace = generate(&cfg, seed);
        // Tags in range; times ordered and inside the duration (+1 s slop
        // for the within-second jitter).
        let mut prev = 0.0;
        for r in &trace.readings {
            prop_assert!((r.tag as usize) < cfg.total_tags);
            prop_assert!(r.t >= prev);
            prop_assert!(r.t <= cfg.duration + 1.0);
            prev = r.t;
            // Moving flag ↔ id partition.
            prop_assert_eq!(r.moving, r.tag as usize >= trace.parked);
        }
        // Statistics are self-consistent.
        let counts = read_counts(&trace);
        prop_assert_eq!(counts.iter().sum::<usize>(), trace.len());
        let buckets = timeline(&trace, 30.0);
        prop_assert_eq!(buckets.iter().sum::<usize>(), trace.len());
        // fraction_above is a complementary CDF: monotone non-increasing.
        let mut last = 1.1;
        for th in [0usize, 1, 5, 25, 125, 625] {
            let f = fraction_above(&counts, th);
            prop_assert!(f <= last + 1e-12);
            prop_assert!((0.0..=1.0).contains(&f));
            last = f;
        }
        // Summary agrees with raw counts.
        let s = summarize(&trace);
        prop_assert_eq!(s.total_readings, trace.len());
        prop_assert_eq!(s.max_reads, counts.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn persistence_round_trips(cfg in arb_config(), seed in any::<u64>()) {
        let trace = generate(&cfg, seed);
        // JSON is exact.
        let mut buf = Vec::new();
        write_json(&trace, &mut buf).unwrap();
        let back = read_json(buf.as_slice()).unwrap();
        prop_assert_eq!(&back, &trace);
        // CSV preserves ids/flags and times to the printed precision.
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).unwrap();
        let back = read_csv(buf.as_slice(), trace.config, trace.parked).unwrap();
        prop_assert_eq!(back.readings.len(), trace.readings.len());
        for (a, b) in trace.readings.iter().zip(&back.readings) {
            prop_assert_eq!(a.tag, b.tag);
            prop_assert_eq!(a.moving, b.moving);
            prop_assert!((a.t - b.t).abs() < 1e-5);
        }
    }

    #[test]
    fn determinism(cfg in arb_config(), seed in any::<u64>()) {
        prop_assert_eq!(generate(&cfg, seed), generate(&cfg, seed));
    }
}
