//! Exporter contract, end to end: a hand-built two-cycle trace must
//! render byte-for-byte to the committed Chrome `trace_event` golden
//! file (and that file must be schema-valid JSON); flame output must
//! weight every span of the chosen clock exactly once; a real
//! instrumented controller run must survive the full profile pipeline —
//! including through a bounded `RingSink` flight recorder and under
//! deterministic round sampling, where an identical-seed re-run keeps
//! exactly the same simulated events.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use tagwatch::prelude::*;
use tagwatch_obs::export::{chrome_trace, flame_lines};
use tagwatch_obs::model::Trace;
use tagwatch_reader::{Reader, ReaderConfig};
use tagwatch_scene::presets;
use tagwatch_telemetry::{
    ClockKind, CounterRecord, Event, ObserveRecord, RingSink, SpanRecord, Telemetry,
    TelemetryConfig,
};

/// Hand-assembles the two-cycle reference trace: per cycle, one round in
/// each phase, a wall-clock compute span, and the counters the emission
/// contract requires ahead of each round span. Every value is a fixed
/// literal, so the exporter output is reproducible byte-for-byte.
fn two_cycle_events() -> Vec<Event> {
    let mut events = Vec::new();
    let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut counter = |events: &mut Vec<Event>, name: &'static str, delta: u64| {
        let total = totals.entry(name).or_insert(0);
        *total += delta;
        events.push(Event::Counter(CounterRecord {
            name: name.to_string(),
            delta,
            total: *total,
        }));
    };
    let span = |name: &str, id: u64, parent: Option<u64>, start: f64, dur: f64| {
        Event::Span(SpanRecord {
            name: name.to_string(),
            id,
            parent,
            start,
            duration: dur,
            clock: ClockKind::Sim,
        })
    };

    for k in 0..2u64 {
        let t0 = 2.0 * k as f64;
        let cycle_id = 100 * k + 1;
        counter(&mut events, "cycle.count", 1);
        for (p, phase) in ["phase1", "phase2"].iter().enumerate() {
            let phase_id = cycle_id + 10 * (p as u64 + 1);
            let p0 = t0 + 0.9 * p as f64;
            counter(&mut events, "round.count", 1);
            counter(&mut events, "round.reads", 3);
            events.push(Event::Observe(ObserveRecord {
                name: "round.q_final".to_string(),
                value: 4.0,
            }));
            events.push(span("round", phase_id + 1, Some(phase_id), p0, 0.5));
            events.push(span(phase, phase_id, Some(cycle_id), p0, 0.8));
        }
        events.push(Event::Span(SpanRecord {
            name: "cycle.compute".to_string(),
            id: cycle_id + 50,
            parent: Some(cycle_id),
            start: 0.001 + k as f64,
            duration: 0.002,
            clock: ClockKind::Wall,
        }));
        events.push(span("cycle", cycle_id, None, t0, 1.8));
    }
    events
}

#[test]
fn chrome_export_matches_the_committed_golden_file() {
    let trace = Trace::from_events(&two_cycle_events()).expect("well-formed trace");
    let rendered = chrome_trace(&trace);
    // Intentional format changes: TAGWATCH_GOLDEN_OUT=<path> writes the
    // fresh rendering to copy over tests/golden/two_cycle.chrome.json.
    if let Ok(out) = std::env::var("TAGWATCH_GOLDEN_OUT") {
        std::fs::write(&out, &rendered).expect("write regenerated golden");
    }
    let golden = include_str!("golden/two_cycle.chrome.json");
    assert_eq!(
        rendered, golden,
        "chrome exporter output drifted from tests/golden/two_cycle.chrome.json; \
         if the change is intentional, regenerate it with \
         TAGWATCH_GOLDEN_OUT=tests/golden/two_cycle.chrome.json"
    );
}

#[test]
fn chrome_export_is_schema_valid_trace_event_json() {
    let trace = Trace::from_events(&two_cycle_events()).expect("well-formed trace");
    let doc: serde_json::Value =
        serde_json::from_str(&chrome_trace(&trace)).expect("output parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents is an array");
    let mut complete_events = 0;
    for ev in events {
        // Every event carries the trace_event required keys, and every
        // duration event the complete-event extras, with the right types.
        let ph = ev
            .get("ph")
            .and_then(serde_json::Value::as_str)
            .expect("ph string");
        assert!(
            ev.get("pid").and_then(serde_json::Value::as_u64).is_some(),
            "pid"
        );
        assert!(
            ev.get("tid").and_then(serde_json::Value::as_u64).is_some(),
            "tid"
        );
        assert!(
            ev.get("name").and_then(serde_json::Value::as_str).is_some(),
            "name"
        );
        match ph {
            "M" => {}
            "X" => {
                complete_events += 1;
                assert!(
                    ev.get("ts").and_then(serde_json::Value::as_u64).is_some(),
                    "ts"
                );
                assert!(
                    ev.get("dur").and_then(serde_json::Value::as_u64).is_some(),
                    "dur"
                );
                let cat = ev
                    .get("cat")
                    .and_then(serde_json::Value::as_str)
                    .expect("cat");
                assert!(cat == "sim" || cat == "wall", "cat {cat:?}");
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    // 2 cycles × (2 phases + 2 rounds + compute + cycle) spans.
    assert_eq!(complete_events, 12);
}

/// Drives an instrumented controller over a turntable scene, mirroring
/// `repro obs-run --telemetry`, with the given overhead-control config.
fn drive(seed: u64, cycles: usize, cfg: TelemetryConfig, sink: RingSink) -> Telemetry {
    let scene = presets::turntable(12, 1, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE9C5);
    let epcs: Vec<Epc> = (0..12).map(|_| Epc::random(&mut rng)).collect();
    let mut reader = Reader::new(scene, &epcs, ReaderConfig::default(), seed ^ 1);

    let tel = Telemetry::new();
    tel.configure(cfg);
    tel.install(Box::new(sink));
    let mut ctl = Controller::new(TagwatchConfig::default()).with_telemetry(tel.clone());
    ctl.run_cycles(&mut reader, cycles).expect("valid config");
    tel.finish();
    tel
}

#[test]
fn flame_lines_cover_every_span_of_a_real_run_exactly_once() {
    let sink = RingSink::new(1 << 20);
    drive(23, 4, TelemetryConfig::default(), sink.clone());
    let trace = Trace::from_events(&sink.events()).expect("well-formed trace");

    for clock in [ClockKind::Sim, ClockKind::Wall] {
        let text = flame_lines(&trace, clock);
        let expected = trace.spans.iter().filter(|s| s.clock == clock).count();
        assert_eq!(text.lines().count(), expected, "{clock:?}");
        let mut total = 0u64;
        for line in text.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("weight separator");
            assert!(!stack.is_empty());
            total += weight.parse::<u64>().expect("integer weight");
        }
        if clock == ClockKind::Sim {
            // Self times partition the sim window: total flame weight is
            // the summed root (cycle) time, in microseconds.
            let roots: f64 = trace
                .spans
                .iter()
                .filter(|s| s.parent.is_none())
                .map(|s| s.duration)
                .sum();
            let diff = (total as f64 - roots * 1e6).abs();
            // Each span contributes ≤ 0.5 µs of rounding.
            assert!(
                diff <= 0.5 * trace.spans.len() as f64 + 1.0,
                "flame total {total} µs vs root time {roots} s"
            );
        }
    }
}

#[test]
fn ring_recorder_tail_survives_the_full_profile_pipeline() {
    // A ring far smaller than the run (a 4-cycle run emits ~12k events):
    // the dump is the trace's tail plus a synthesized footer, and the
    // whole profile pipeline must accept it. Capacity must exceed the
    // ~1.5k per-tag read events the controller logs after the final
    // cycle span, or the tail would hold no spans at all.
    let sink = RingSink::new(2048);
    drive(29, 4, TelemetryConfig::default(), sink.clone());
    assert!(sink.dropped() > 0, "run too small to overflow the ring");

    let path = std::env::temp_dir().join(format!(
        "tagwatch-export-itest-{}.jsonl",
        std::process::id()
    ));
    sink.dump_to_path(&path).expect("dump");
    let trace = Trace::from_path(&path).expect("tail parses leniently");
    std::fs::remove_file(&path).ok();

    assert!(!trace.is_complete());
    assert!(!trace.spans.is_empty());
    // Both exporters run on the truncated tail without error.
    assert!(serde_json::from_str::<serde_json::Value>(&chrome_trace(&trace)).is_ok());
    let flame = flame_lines(&trace, ClockKind::Sim);
    assert_eq!(
        flame.lines().count(),
        trace
            .spans
            .iter()
            .filter(|s| s.clock == ClockKind::Sim)
            .count()
    );
}

#[test]
fn round_sampling_is_deterministic_across_identical_runs() {
    let cfg = TelemetryConfig {
        sample_every_n_rounds: 3,
        max_events: 0,
    };
    let (a, b) = (RingSink::new(1 << 20), RingSink::new(1 << 20));
    drive(31, 3, cfg, a.clone());
    drive(31, 3, cfg, b.clone());

    // Wall-clock readings legitimately differ between runs; everything
    // the simulated clock produced — including which rounds the sampler
    // kept — must be identical.
    let sim_only = |sink: &RingSink| -> Vec<Event> {
        sink.events()
            .into_iter()
            .filter(|ev| match ev {
                Event::Span(s) => s.clock == ClockKind::Sim,
                Event::Observe(o) => !o.name.contains("compute"),
                _ => true,
            })
            .collect()
    };
    let (ea, eb) = (sim_only(&a), sim_only(&b));
    assert!(!ea.is_empty());
    assert_eq!(
        ea, eb,
        "sampling kept different events across identical runs"
    );

    // And the sampler actually suppressed something.
    let full = RingSink::new(1 << 20);
    drive(31, 3, TelemetryConfig::default(), full.clone());
    assert!(
        ea.len() < sim_only(&full).len(),
        "1-in-3 sampling suppressed nothing"
    );
}
