//! Warm-restart integration tests: snapshot a trained controller,
//! serialize it, restore into a fresh process-equivalent, and verify the
//! restored instance behaves identically — no re-learning.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::prelude::*;
use tagwatch::{Controller, ControllerSnapshot};
use tagwatch_reader::{Reader, ReaderConfig};
use tagwatch_rf::ChannelPlan;
use tagwatch_scene::presets;

fn epcs(n: usize, seed: u64) -> Vec<Epc> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Epc::random(&mut rng)).collect()
}

fn trained_setup() -> (Controller, Reader, Vec<Epc>) {
    let n = 20;
    let scene = presets::turntable(n, 1, 31);
    let ids = epcs(n, 32);
    let rcfg = ReaderConfig {
        channel_plan: ChannelPlan::single(922.5e6),
        ..ReaderConfig::default()
    };
    let mut reader = Reader::new(scene, &ids, rcfg, 33);
    let mut cfg = TagwatchConfig {
        phase2_len: 1.0,
        ..TagwatchConfig::default()
    };
    cfg.gmm.alpha = 0.01;
    let mut ctl = Controller::new(cfg);
    for _ in 0..25 {
        ctl.run_cycle(&mut reader).unwrap();
    }
    (ctl, reader, ids)
}

#[test]
fn snapshot_round_trips_through_json() {
    let (ctl, _, _) = trained_setup();
    let snap = ctl.snapshot();
    let json = serde_json::to_string(&snap).expect("snapshot must serialize");
    let back: ControllerSnapshot = serde_json::from_str(&json).expect("and deserialize");
    assert_eq!(back.cycle, snap.cycle);
    assert_eq!(back.assessors.len(), snap.assessors.len());
    assert_eq!(back.history.len(), snap.history.len());
}

#[test]
fn restored_controller_behaves_identically() {
    let (ctl, reader, _) = trained_setup();
    let snap = ctl.snapshot();

    // Run the original and the restored controller against identical
    // reader clones: every decision must match.
    let mut original = ctl;
    let mut restored = Controller::restore(snap);
    let mut reader_a = reader.clone();
    let mut reader_b = reader;
    for _ in 0..5 {
        let a = original.run_cycle(&mut reader_a).unwrap();
        let b = restored.run_cycle(&mut reader_b).unwrap();
        assert_eq!(a.cycle, b.cycle);
        assert_eq!(a.mode, b.mode);
        assert_eq!(a.targets, b.targets);
        assert_eq!(a.phase2.len(), b.phase2.len());
    }
}

#[test]
fn restored_controller_skips_relearning() {
    // A cold controller treats everyone as mobile on its first cycle; a
    // warm-restored one goes straight to selective scheduling.
    let (ctl, reader, ids) = trained_setup();
    let snap = ctl.snapshot();
    drop(ctl);

    let mut warm = Controller::restore(snap);
    let mut reader = reader;
    let rep = warm.run_cycle(&mut reader).unwrap();
    assert_eq!(rep.mode, tagwatch::ScheduleMode::Selective);
    assert!(
        rep.targets.contains(&ids[0]),
        "mover still known after restore"
    );
    assert!(
        rep.mobile.len() <= 3,
        "warm restart should not re-flag the stationary majority ({} mobile)",
        rep.mobile.len()
    );
}

#[test]
#[should_panic(expected = "invalid Tagwatch configuration")]
fn restore_validates_config() {
    let (ctl, _, _) = trained_setup();
    let mut snap = ctl.snapshot();
    snap.config.antennas.clear();
    let _ = Controller::restore(snap);
}
