//! Golden-file tests for the tagwatch-lint rule catalog.
//!
//! Each fixture in `tests/lint/fixtures/` deliberately violates (or
//! deliberately satisfies) one rule; it is linted under a pretend
//! workspace path and the rendered diagnostics must match
//! `tests/lint/expected/<name>.txt` byte-for-byte — positions included,
//! so a lexer or rule change that shifts any `file:line:col` shows up
//! here. Regenerate with `LINT_GOLDEN_UPDATE=1 cargo test --test
//! lint_golden` after an intentional change.

use std::fs;
use std::path::{Path, PathBuf};
use tagwatch_lint::{classify, lint_classified, lint_source, lint_workspace, walk, WorkspaceFile};

/// fixture stem → the pretend workspace path it is linted under.
const CASES: &[(&str, &str)] = &[
    ("determinism_wallclock", "crates/core/src/injected.rs"),
    ("determinism_hash_order", "crates/gen2/src/injected.rs"),
    ("panic_policy", "crates/rf/src/injected.rs"),
    ("debug_leak", "crates/scene/src/injected.rs"),
    ("unsafe_free", "crates/tracking/src/lib.rs"),
    ("todo_tracker", "crates/reader/src/injected.rs"),
    ("lint_escape", "crates/telemetry/src/injected.rs"),
    ("work_counter_name", "crates/monitor/src/injected.rs"),
    ("twb_constants", "crates/obs/src/injected.rs"),
    ("clean", "crates/core/src/clean.rs"),
];

fn lint_dir() -> PathBuf {
    match std::env::var("LINT_GOLDEN_ROOT") {
        Ok(root) => PathBuf::from(root).join("tests/lint"),
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/lint"),
    }
}

fn render(pretend: &str, source: &str) -> String {
    lint_source(pretend, source)
        .expect("fixture pretend-path must classify")
        .iter()
        .map(|f| format!("{f}\n"))
        .collect()
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let dir = lint_dir();
    let update = std::env::var("LINT_GOLDEN_UPDATE").is_ok();
    for (name, pretend) in CASES {
        let src = fs::read_to_string(dir.join("fixtures").join(format!("{name}.rs")))
            .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
        let got = render(pretend, &src);
        let exp_path = dir.join("expected").join(format!("{name}.txt"));
        if update {
            fs::write(&exp_path, &got).unwrap_or_else(|e| panic!("write {name}: {e}"));
            continue;
        }
        let expected =
            fs::read_to_string(&exp_path).unwrap_or_else(|e| panic!("expected {name}: {e}"));
        assert_eq!(got, expected, "fixture `{name}` diagnostics drifted");
    }
}

/// The acceptance check from the lint design: introducing a wall-clock
/// read into a simulation crate must fail the gate.
#[test]
fn seeded_wallclock_regression_is_caught() {
    let injected = "pub fn t0() -> std::time::Instant {\n    Instant::now()\n}\n";
    for sim_path in [
        "crates/gen2/src/seeded.rs",
        "crates/core/src/seeded.rs",
        "crates/reader/src/seeded.rs",
    ] {
        let findings = lint_source(sim_path, injected).expect("sim path classifies");
        assert_eq!(findings.len(), 1, "{sim_path}: {findings:?}");
        assert_eq!(findings[0].rule, "determinism-wallclock");
        assert_eq!((findings[0].line, findings[0].col), (2, 5));
    }
}

/// Deep-rule fixture cases: each directory under `tests/lint/deep/
/// fixtures/` is a miniature workspace whose file names encode pretend
/// workspace paths with `__` standing in for `/` (so
/// `crates__gen2__src__round.rs` is linted as `crates/gen2/src/
/// round.rs`). The whole case runs through `lint_workspace` — symbol
/// graph, deep rules, escapes — and the rendered diagnostics must match
/// `tests/lint/deep/expected/<case>.txt` byte-for-byte.
const DEEP_CASES: &[&str] = &[
    "rng_stream",
    "race_surface",
    "float_order",
    "sim_boundary",
    "deep_escape",
    "deep_clean",
];

/// Loads one deep fixture case as a sorted list of pretend workspace
/// files.
fn deep_case_files(dir: &Path) -> Vec<WorkspaceFile> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read deep case {}: {e}", dir.display()))
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.ends_with(".rs").then_some(name)
        })
        .collect();
    names.sort();
    names
        .iter()
        .map(|name| {
            let rel = name.replace("__", "/");
            let (kind, crate_name, is_crate_root) =
                classify(&rel).unwrap_or_else(|| panic!("deep fixture path `{rel}` must classify"));
            let source = fs::read_to_string(dir.join(name))
                .unwrap_or_else(|e| panic!("read deep fixture {name}: {e}"));
            WorkspaceFile {
                rel,
                kind,
                crate_name,
                is_crate_root,
                source,
            }
        })
        .collect()
}

#[test]
fn deep_fixtures_match_expected_diagnostics() {
    let dir = lint_dir().join("deep");
    let update = std::env::var("LINT_GOLDEN_UPDATE").is_ok();
    for case in DEEP_CASES {
        let files = deep_case_files(&dir.join("fixtures").join(case));
        assert!(!files.is_empty(), "deep case `{case}` has no fixtures");
        let analysis = lint_workspace(&files);
        let got: String = analysis.findings.iter().map(|f| format!("{f}\n")).collect();
        let exp_path = dir.join("expected").join(format!("{case}.txt"));
        if update {
            fs::write(&exp_path, &got).unwrap_or_else(|e| panic!("write {case}: {e}"));
            continue;
        }
        let expected =
            fs::read_to_string(&exp_path).unwrap_or_else(|e| panic!("expected {case}: {e}"));
        assert_eq!(got, expected, "deep case `{case}` diagnostics drifted");
    }
}

/// The acceptance check for the deep family: a sim-crate edit that
/// plants a fresh RNG stream inside the round engine's reach must fail
/// the gate.
#[test]
fn hot_path_reseed_regression_is_caught() {
    let files = [WorkspaceFile {
        rel: "crates/gen2/src/round.rs".to_string(),
        kind: tagwatch_lint::FileKind::Library,
        crate_name: "gen2".to_string(),
        is_crate_root: false,
        source: "pub fn run_round() -> f64 {\n    \
                 let mut rng = StdRng::seed_from_u64(42);\n    \
                 rng.gen_range(0.0..1.0)\n}\n"
            .to_string(),
    }];
    let analysis = lint_workspace(&files);
    assert_eq!(analysis.findings.len(), 1, "{:?}", analysis.findings);
    assert_eq!(analysis.findings[0].rule, "rng-stream-discipline");
    assert_eq!(analysis.findings[0].line, 2);
}

/// The whole workspace must be lint-clean — the same invariant ci.sh
/// enforces, kept inside the test suite so `cargo test` alone catches a
/// regression.
#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let files = walk(&root).expect("walk workspace");
    assert!(!files.is_empty(), "walker found no sources under {root:?}");
    let mut findings = Vec::new();
    for f in &files {
        let src = fs::read_to_string(&f.abs).unwrap_or_else(|e| panic!("read {}: {e}", f.rel));
        findings.extend(lint_classified(
            &f.rel,
            f.kind,
            &f.crate_name,
            f.is_crate_root,
            &src,
        ));
    }
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The deep extension of the same invariant: the workspace must be
/// deep-lint clean modulo the committed baseline
/// (`tests/lint/deep_baseline.txt`), whose entries are full rendered
/// finding lines with a justifying comment.
#[test]
fn workspace_is_deep_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let files = tagwatch_lint::load_workspace(&root).expect("load workspace");
    assert!(!files.is_empty(), "no sources under {root:?}");
    let analysis = lint_workspace(&files);
    let baseline_text =
        fs::read_to_string(lint_dir().join("deep_baseline.txt")).expect("read deep_baseline.txt");
    let known: Vec<&str> = baseline_text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let new: Vec<String> = analysis
        .findings
        .iter()
        .map(ToString::to_string)
        .filter(|rendered| !known.contains(&rendered.as_str()))
        .collect();
    assert!(
        new.is_empty(),
        "workspace has deep-lint findings not in the baseline:\n{}",
        new.join("\n")
    );
}
