//! Golden-file tests for the tagwatch-lint rule catalog.
//!
//! Each fixture in `tests/lint/fixtures/` deliberately violates (or
//! deliberately satisfies) one rule; it is linted under a pretend
//! workspace path and the rendered diagnostics must match
//! `tests/lint/expected/<name>.txt` byte-for-byte — positions included,
//! so a lexer or rule change that shifts any `file:line:col` shows up
//! here. Regenerate with `LINT_GOLDEN_UPDATE=1 cargo test --test
//! lint_golden` after an intentional change.

use std::fs;
use std::path::PathBuf;
use tagwatch_lint::{lint_classified, lint_source, walk};

/// fixture stem → the pretend workspace path it is linted under.
const CASES: &[(&str, &str)] = &[
    ("determinism_wallclock", "crates/core/src/injected.rs"),
    ("determinism_hash_order", "crates/gen2/src/injected.rs"),
    ("panic_policy", "crates/rf/src/injected.rs"),
    ("debug_leak", "crates/scene/src/injected.rs"),
    ("unsafe_free", "crates/tracking/src/lib.rs"),
    ("todo_tracker", "crates/reader/src/injected.rs"),
    ("lint_escape", "crates/telemetry/src/injected.rs"),
    ("work_counter_name", "crates/monitor/src/injected.rs"),
    ("twb_constants", "crates/obs/src/injected.rs"),
    ("clean", "crates/core/src/clean.rs"),
];

fn lint_dir() -> PathBuf {
    match std::env::var("LINT_GOLDEN_ROOT") {
        Ok(root) => PathBuf::from(root).join("tests/lint"),
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/lint"),
    }
}

fn render(pretend: &str, source: &str) -> String {
    lint_source(pretend, source)
        .expect("fixture pretend-path must classify")
        .iter()
        .map(|f| format!("{f}\n"))
        .collect()
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let dir = lint_dir();
    let update = std::env::var("LINT_GOLDEN_UPDATE").is_ok();
    for (name, pretend) in CASES {
        let src = fs::read_to_string(dir.join("fixtures").join(format!("{name}.rs")))
            .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
        let got = render(pretend, &src);
        let exp_path = dir.join("expected").join(format!("{name}.txt"));
        if update {
            fs::write(&exp_path, &got).unwrap_or_else(|e| panic!("write {name}: {e}"));
            continue;
        }
        let expected =
            fs::read_to_string(&exp_path).unwrap_or_else(|e| panic!("expected {name}: {e}"));
        assert_eq!(got, expected, "fixture `{name}` diagnostics drifted");
    }
}

/// The acceptance check from the lint design: introducing a wall-clock
/// read into a simulation crate must fail the gate.
#[test]
fn seeded_wallclock_regression_is_caught() {
    let injected = "pub fn t0() -> std::time::Instant {\n    Instant::now()\n}\n";
    for sim_path in [
        "crates/gen2/src/seeded.rs",
        "crates/core/src/seeded.rs",
        "crates/reader/src/seeded.rs",
    ] {
        let findings = lint_source(sim_path, injected).expect("sim path classifies");
        assert_eq!(findings.len(), 1, "{sim_path}: {findings:?}");
        assert_eq!(findings[0].rule, "determinism-wallclock");
        assert_eq!((findings[0].line, findings[0].col), (2, 5));
    }
}

/// The whole workspace must be lint-clean — the same invariant ci.sh
/// enforces, kept inside the test suite so `cargo test` alone catches a
/// regression.
#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let files = walk(&root).expect("walk workspace");
    assert!(!files.is_empty(), "walker found no sources under {root:?}");
    let mut findings = Vec::new();
    for f in &files {
        let src = fs::read_to_string(&f.abs).unwrap_or_else(|e| panic!("read {}: {e}", f.rel));
        findings.extend(lint_classified(
            &f.rel,
            f.kind,
            &f.crate_name,
            f.is_crate_root,
            &src,
        ));
    }
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
