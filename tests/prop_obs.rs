//! Property: offline trace ingestion is lossless. Any event stream a
//! sink can carry — arbitrary well-typed events, or the stream a real
//! `Telemetry` handle fans out to a `MemorySink` and `JsonlSink` at
//! once — must round-trip through the JSONL wire format byte-exactly,
//! with 1-based line numbers intact; and a final line cut off mid-write
//! must surface as [`ParseError::TruncatedTail`] anchored to that line,
//! never as silent data loss.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use tagwatch_obs::model::Trace;
use tagwatch_telemetry::jsonl::{read_events, ParseError};
use tagwatch_telemetry::{
    ClockKind, CounterRecord, Event, GaugeRecord, JsonlSink, MemorySink, ObserveRecord, SpanRecord,
    TagRecord, Telemetry,
};

/// Metric-style names: 1–3 dotted lowercase segments.
fn arb_name() -> impl Strategy<Value = String> {
    "[a-z]{1,6}(\\.[a-z]{1,6}){0,2}"
}

/// Any single event with finite values (JSON has no NaN/inf).
fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (arb_name(), any::<u64>(), any::<u64>()).prop_map(|(name, delta, total)| {
            Event::Counter(CounterRecord { name, delta, total })
        }),
        (arb_name(), -1e12f64..1e12)
            .prop_map(|(name, value)| { Event::Gauge(GaugeRecord { name, value }) }),
        (arb_name(), 0.0f64..1e9)
            .prop_map(|(name, value)| { Event::Observe(ObserveRecord { name, value }) }),
        (arb_name(), any::<u128>(), 0.0f64..1e6)
            .prop_map(|(name, epc, t)| { Event::Tag(TagRecord { name, epc, t }) }),
        (
            arb_name(),
            1u64..10_000,
            proptest::option::of(1u64..10_000),
            0.0f64..1e6,
            0.0f64..1e3,
            prop_oneof![Just(ClockKind::Sim), Just(ClockKind::Wall)],
        )
            .prop_map(|(name, id, parent, start, duration, clock)| {
                Event::Span(SpanRecord {
                    name,
                    id,
                    parent,
                    start,
                    duration,
                    clock,
                })
            }),
    ]
}

/// Serializes events the way `JsonlSink` does: one JSON object per line.
fn to_jsonl(events: &[Event]) -> String {
    events
        .iter()
        .map(|e| serde_json::to_string(e).expect("finite events serialize") + "\n")
        .collect()
}

/// One telemetry operation to replay against a live handle.
#[derive(Debug, Clone)]
enum Op {
    Incr(String, u64),
    Gauge(String, f64),
    Observe(String, f64),
    Tag(String, u128, f64),
    /// A sim span opened at `.1` lasting `.2` seconds (closed before the
    /// next op, so spans never nest and parent inference stays trivial).
    Span(f64, f64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_name(), 1u64..100).prop_map(|(n, d)| Op::Incr(n, d)),
        (arb_name(), -1e6f64..1e6).prop_map(|(n, v)| Op::Gauge(n, v)),
        (arb_name(), 0.0f64..1e6).prop_map(|(n, v)| Op::Observe(n, v)),
        (arb_name(), any::<u128>(), 0.0f64..1e4).prop_map(|(n, e, t)| Op::Tag(n, e, t)),
        (0.0f64..1e4, 0.0f64..10.0).prop_map(|(t, d)| Op::Span(t, d)),
    ]
}

/// Unique scratch path per proptest case (cases run concurrently).
fn scratch_jsonl() -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "tagwatch-prop-obs-{}-{}.jsonl",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    /// serialize ∘ parse is the identity on any event stream, and every
    /// event keeps its 1-based line number.
    #[test]
    fn jsonl_round_trips_any_event_stream(
        events in prop::collection::vec(arb_event(), 0..40),
    ) {
        let body = to_jsonl(&events);
        let parsed = read_events(body.as_bytes()).expect("well-formed JSONL");
        prop_assert_eq!(parsed.len(), events.len());
        for (k, ((line, got), want)) in parsed.iter().zip(&events).enumerate() {
            prop_assert_eq!(*line, k + 1, "line number drifted");
            prop_assert_eq!(got, want);
        }
    }

    /// Cutting the writer off mid-line is reported as `TruncatedTail`
    /// pinned to the exact last line — not a generic parse error, and
    /// never a silently shortened trace.
    #[test]
    fn truncated_last_line_is_a_precise_error(
        events in prop::collection::vec(arb_event(), 1..20),
        cut_seed in any::<usize>(),
    ) {
        let body = to_jsonl(&events);
        let last_len = body.trim_end_matches('\n').rsplit('\n').next().unwrap().len();
        // Chop the trailing newline plus 1..last_len bytes, leaving a
        // nonempty strict prefix of the final JSON object (all our
        // serialized events are ASCII, so any byte cut is a char cut).
        let cut = 2 + cut_seed % (last_len - 1);
        let truncated = &body[..body.len() - cut];
        match read_events(truncated.as_bytes()) {
            Err(ParseError::TruncatedTail { line, .. }) => {
                prop_assert_eq!(line, events.len(), "error anchored to wrong line");
            }
            other => prop_assert!(false, "expected TruncatedTail, got {:?}", other),
        }
    }

    /// A `MemorySink` and a `JsonlSink` installed on the same handle see
    /// the same stream, and the file re-ingests (through the parser and
    /// the obs trace model) to exactly the in-memory events.
    #[test]
    fn memory_and_jsonl_sinks_carry_identical_streams(
        ops in prop::collection::vec(arb_op(), 0..60),
    ) {
        let path = scratch_jsonl();
        let tel = Telemetry::new();
        let mem = MemorySink::new(1 << 16);
        tel.install(Box::new(mem.clone()));
        tel.install(Box::new(JsonlSink::create(&path).expect("scratch file")));

        for op in &ops {
            match op {
                Op::Incr(n, d) => tel.incr_by(n, *d),
                Op::Gauge(n, v) => tel.gauge_set(n, *v),
                Op::Observe(n, v) => tel.observe(n, *v),
                Op::Tag(n, e, t) => tel.tag_event(n, *e, *t),
                Op::Span(t, d) => tel.sim_span("op.span", *t).end(t + d),
            }
        }
        tel.flush();

        let in_memory = mem.events();
        let from_file: Vec<Event> = read_events(std::fs::File::open(&path).expect("reopen"))
            .expect("sink output is well-formed JSONL")
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(&from_file, &in_memory, "sinks diverged");

        // Live-handle streams are structurally valid traces too: counter
        // totals are consistent and the standalone spans have no parents,
        // so the obs model must accept the stream wholesale. (An empty
        // stream is the one documented exception: `TraceError::Empty`.)
        if !in_memory.is_empty() {
            let trace = Trace::from_events(&in_memory).expect("live stream is a valid trace");
            prop_assert_eq!(trace.events_total, in_memory.len());
        }
    }
}
