//! Golden smoke tests for the shipped scenario files: every JSON under
//! `examples/scenarios/` must parse and run end to end.

use tagwatch_repro::scenario;

fn scenario_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("scenario directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 3,
        "expected at least three shipped scenarios, found {files:?}"
    );
    files
}

#[test]
fn all_shipped_scenarios_parse_and_run() {
    for path in scenario_files() {
        let json = std::fs::read_to_string(&path).unwrap();
        let mut spec =
            scenario::parse(&json).unwrap_or_else(|e| panic!("{path:?} failed to parse: {e}"));
        // Clamp to a fast smoke run; shorten Phase II too.
        spec.cycles = spec.cycles.min(2);
        spec.tagwatch.phase2_len = spec.tagwatch.phase2_len.min(0.5);
        let cycles = scenario::run(&spec).unwrap_or_else(|e| panic!("{path:?} failed to run: {e}"));
        assert_eq!(cycles.len(), spec.cycles, "{path:?}");
        for c in &cycles {
            assert!(c.census > 0, "{path:?}: empty census");
            assert!(c.phase1_reads > 0, "{path:?}: silent Phase I");
        }
    }
}

#[test]
fn scenarios_emit_valid_jsonl_rows() {
    // The CLI prints one JSON object per cycle; the schema must be stable
    // and self-describing enough to round-trip.
    let json = std::fs::read_to_string(scenario_files().remove(0)).unwrap();
    let mut spec = scenario::parse(&json).unwrap();
    spec.cycles = 1;
    spec.tagwatch.phase2_len = 0.3;
    let rows = scenario::run(&spec).unwrap();
    let line = serde_json::to_string(&rows[0]).unwrap();
    let back: scenario::CycleSummary = serde_json::from_str(&line).unwrap();
    assert_eq!(back, rows[0]);
    for key in ["cycle", "mode", "census", "targets", "phase2_reads"] {
        assert!(line.contains(key), "JSONL row missing {key}: {line}");
    }
}
