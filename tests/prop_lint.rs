//! Totality properties for the lint lexer and engine: for *arbitrary*
//! input — hostile unicode, unterminated literals, nested comment soup —
//! lexing and linting must never panic, must terminate, and must report
//! sane (1-based, strictly increasing) positions.

use proptest::prelude::*;
use tagwatch_lint::graph::{FileMeta, SymbolGraph};
use tagwatch_lint::lexer::lex;
use tagwatch_lint::{deep, items, lint_source, lint_workspace, validate_json};
use tagwatch_lint::{FileKind, WorkspaceFile};

/// A pretend sim-crate library file for workspace-level properties.
fn sim_file(source: String) -> WorkspaceFile {
    WorkspaceFile {
        rel: "crates/gen2/src/round.rs".to_string(),
        kind: FileKind::Library,
        crate_name: "gen2".to_string(),
        is_crate_root: false,
        source,
    }
}

/// Item-shaped soup: the constructs the item parser and deep rules
/// special-case, concatenated in arbitrary order.
fn item_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("fn f"),
            Just("pub fn g(rng: &mut StdRng) -> f64"),
            Just("("),
            Just(")"),
            Just("{"),
            Just("}"),
            Just("impl Reader"),
            Just("trait T"),
            Just("mod inner"),
            Just("use tagwatch_telemetry::clock::wall_now;"),
            Just("use a::{b, c as d, e::*};"),
            Just("static mut HITS: u64 = 0;"),
            Just("self.rng.gen_bool(0.5)"),
            Just("StdRng::seed_from_u64(7)"),
            Just("for c in xs.chunks(4)"),
            Just("t += c[0];"),
            Just(".sum::<f64>()"),
            Just("Mutex::new(0)"),
            Just("std::thread::spawn(|| {})"),
            Just("#[test]"),
            Just("#[cfg(test)]"),
            Just("<"),
            Just(">"),
            Just("->"),
            Just(";"),
            Just("\n"),
        ],
        0..48,
    )
    .prop_map(|parts| parts.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_is_total_with_ordered_positions(src in ".*") {
        let toks = lex(&src);
        let mut prev = (1u32, 0u32);
        for t in &toks {
            prop_assert!(t.line >= 1 && t.col >= 1, "position not 1-based: {t:?}");
            prop_assert!(
                (t.line, t.col) > prev,
                "token starts do not advance: {prev:?} then {t:?}"
            );
            prev = (t.line, t.col);
            prop_assert!(!t.text.is_empty(), "empty token text: {t:?}");
        }
    }

    /// Rust-shaped soup: concatenations of the exact constructs the lexer
    /// special-cases (raw-string openers, comment delimiters, escapes,
    /// quotes) are far likelier to hit corner states than uniform text.
    #[test]
    fn lexer_survives_rusty_soup(parts in proptest::collection::vec(
        prop_oneof![
            Just("r#\""), Just("r##\"x\"#"), Just("\""), Just("\\"),
            Just("//"), Just("/*"), Just("*/"), Just("'"), Just("'a"),
            Just("b\""), Just("cr##\""), Just("b'"), Just("r#type"),
            Just("\n"), Just("ident"), Just("0x1f"), Just("#"), Just("!"),
            Just("lint:allow("), Just(")"), Just(": reason"),
        ],
        0..64,
    )) {
        let src: String = parts.concat();
        let toks = lex(&src);
        // Every token's text really is a slice of the input.
        for t in &toks {
            prop_assert!(src.contains(t.text));
        }
    }

    #[test]
    fn engine_is_total_for_arbitrary_sources(src in ".*") {
        // Library path in a sim crate: every rule is in scope.
        let _ = lint_source("crates/core/src/fuzz.rs", &src);
        // Crate-root path: the unsafe-free root check is in scope too.
        let _ = lint_source("crates/core/src/lib.rs", &src);
    }

    /// The item parser and graph builder must be total on arbitrary
    /// token streams: no panics, no hangs, and every harvested position
    /// stays 1-based.
    #[test]
    fn item_parser_and_graph_are_total(src in ".*") {
        let toks = lex(&src);
        let flags = vec![false; toks.len()];
        let parsed = items::parse(&toks, &flags);
        for f in &parsed.fns {
            prop_assert!(f.line >= 1 && f.col >= 1, "fn position not 1-based: {f:?}");
        }
        let meta = FileMeta {
            rel: "crates/core/src/fuzz.rs".to_string(),
            crate_name: "core".to_string(),
            kind: FileKind::Library,
        };
        let graph = SymbolGraph::build(&[(meta, &parsed)]);
        prop_assert_eq!(graph.hot.len(), graph.symbols.len());
        for &(a, b) in &graph.edges {
            prop_assert!(a < graph.symbols.len() && b < graph.symbols.len());
        }
    }

    /// Same totality over item-shaped soup, which reaches the parser's
    /// corner states (unclosed bodies, generics, impl blocks) far more
    /// often than uniform text does.
    #[test]
    fn item_parser_survives_item_soup(src in item_soup()) {
        let toks = lex(&src);
        let flags = vec![false; toks.len()];
        let parsed = items::parse(&toks, &flags);
        let meta = FileMeta {
            rel: "crates/gen2/src/round.rs".to_string(),
            crate_name: "gen2".to_string(),
            kind: FileKind::Library,
        };
        let _ = SymbolGraph::build(&[(meta, &parsed)]);
    }

    /// The whole workspace pass — shallow + deep rules, graph, report —
    /// is total on arbitrary sources, and its JSON export is valid and
    /// byte-deterministic across runs on identical input.
    #[test]
    fn workspace_pass_is_total_with_deterministic_json(src in item_soup()) {
        let files = [sim_file(src)];
        let a1 = lint_workspace(&files);
        let a2 = lint_workspace(&files);
        let j1 = deep::graph_json(&a1.graph, &a1.report);
        let j2 = deep::graph_json(&a2.graph, &a2.report);
        prop_assert_eq!(&j1, &j2, "graph JSON must be byte-stable");
        prop_assert!(validate_json(&j1).is_ok(), "graph JSON must validate: {j1}");
        // Findings arrive sorted by (file, line, col, rule).
        for w in a1.findings.windows(2) {
            let key = |f: &tagwatch_lint::Finding| {
                (f.file.clone(), f.line, f.col, f.rule)
            };
            prop_assert!(key(&w[0]) <= key(&w[1]), "unsorted findings: {w:?}");
        }
    }
}
