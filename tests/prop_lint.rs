//! Totality properties for the lint lexer and engine: for *arbitrary*
//! input — hostile unicode, unterminated literals, nested comment soup —
//! lexing and linting must never panic, must terminate, and must report
//! sane (1-based, strictly increasing) positions.

use proptest::prelude::*;
use tagwatch_lint::lexer::lex;
use tagwatch_lint::lint_source;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_is_total_with_ordered_positions(src in ".*") {
        let toks = lex(&src);
        let mut prev = (1u32, 0u32);
        for t in &toks {
            prop_assert!(t.line >= 1 && t.col >= 1, "position not 1-based: {t:?}");
            prop_assert!(
                (t.line, t.col) > prev,
                "token starts do not advance: {prev:?} then {t:?}"
            );
            prev = (t.line, t.col);
            prop_assert!(!t.text.is_empty(), "empty token text: {t:?}");
        }
    }

    /// Rust-shaped soup: concatenations of the exact constructs the lexer
    /// special-cases (raw-string openers, comment delimiters, escapes,
    /// quotes) are far likelier to hit corner states than uniform text.
    #[test]
    fn lexer_survives_rusty_soup(parts in proptest::collection::vec(
        prop_oneof![
            Just("r#\""), Just("r##\"x\"#"), Just("\""), Just("\\"),
            Just("//"), Just("/*"), Just("*/"), Just("'"), Just("'a"),
            Just("b\""), Just("cr##\""), Just("b'"), Just("r#type"),
            Just("\n"), Just("ident"), Just("0x1f"), Just("#"), Just("!"),
            Just("lint:allow("), Just(")"), Just(": reason"),
        ],
        0..64,
    )) {
        let src: String = parts.concat();
        let toks = lex(&src);
        // Every token's text really is a slice of the input.
        for t in &toks {
            prop_assert!(src.contains(t.text));
        }
    }

    #[test]
    fn engine_is_total_for_arbitrary_sources(src in ".*") {
        // Library path in a sim crate: every rule is in scope.
        let _ = lint_source("crates/core/src/fuzz.rs", &src);
        // Crate-root path: the unsafe-free root check is in scope too.
        let _ = lint_source("crates/core/src/lib.rs", &src);
    }
}
