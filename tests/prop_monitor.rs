//! Property: the online analyzers are a faithful streaming image of the
//! batch ones. Any valid trace a real `Telemetry` handle can emit —
//! reads, mobility assessments, truth annotations, cycle/round spans,
//! Q-adaptation counters, fault markers, plus arbitrary metric noise —
//! fed event-by-event into [`OnlineAnalyzers`] must finalize into
//! verdicts byte-identical (as serialized JSON) to `RunReport::analyze`
//! over the same closed trace.

use proptest::prelude::*;
use tagwatch_monitor::OnlineAnalyzers;
use tagwatch_obs::model::Trace;
use tagwatch_obs::{AnalyzeConfig, RunReport};
use tagwatch_telemetry::{MemorySink, Telemetry};

/// Metric-style names for noise events: 1–3 dotted lowercase segments.
fn arb_name() -> impl Strategy<Value = String> {
    "[a-z]{1,6}(\\.[a-z]{1,6}){0,2}"
}

/// One telemetry operation to replay against a live handle. The
/// verdict-bearing shapes mirror what the reader/controller actually
/// emit; the noise shapes prove the analyzers ignore everything else.
#[derive(Debug, Clone)]
enum Op {
    /// `read.phase1` / `read.phase2` tag moment.
    Read(bool, u8, f64),
    /// `assess.mobile` verdict for a tag.
    AssessMobile(u8, f64),
    /// `truth.mobile` ground-truth annotation.
    TruthMobile(u8, f64),
    /// A closed `cycle` sim span.
    Cycle(f64, f64),
    /// A closed `round` sim span, preceded by its `round.q_final`
    /// observation (the reader's emission order, which the batch trace
    /// model relies on for attribution).
    Round(f64, f64, f64),
    /// `round.adjusts` counter increments.
    Adjusts(u8),
    /// Open/close marker pair boundary for a fault window.
    FaultMark(bool, u8, f64),
    /// `fault.selects_lost` counter increments.
    FaultCounter(u8),
    /// Noise: arbitrary counter / gauge / observation the analyzers
    /// must ignore (includes the `*.sim_now` watchdog heartbeats).
    NoiseCounter(String, u8),
    NoiseGauge(String, f64),
    NoiseObserve(String, f64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let t = 0.0f64..1e4;
    prop_oneof![
        (any::<bool>(), any::<u8>(), t.clone()).prop_map(|(p2, e, t)| Op::Read(p2, e, t)),
        (any::<u8>(), t.clone()).prop_map(|(e, t)| Op::AssessMobile(e, t)),
        (any::<u8>(), t.clone()).prop_map(|(e, t)| Op::TruthMobile(e, t)),
        (t.clone(), 0.0f64..10.0).prop_map(|(t, d)| Op::Cycle(t, d)),
        (t.clone(), 0.0f64..1.0, 0.0f64..15.0).prop_map(|(t, d, q)| Op::Round(t, d, q)),
        (1u8..10).prop_map(Op::Adjusts),
        (any::<bool>(), any::<u8>(), t.clone()).prop_map(|(open, e, t)| Op::FaultMark(open, e, t)),
        (1u8..10).prop_map(Op::FaultCounter),
        (arb_name(), 1u8..100).prop_map(|(n, d)| Op::NoiseCounter(n, d)),
        prop_oneof![arb_name(), Just("round.sim_now".to_string())]
            .prop_flat_map(move |n| (Just(n), 0.0f64..1e4))
            .prop_map(|(n, v)| Op::NoiseGauge(n, v)),
        (arb_name(), 0.0f64..1e6).prop_map(|(n, v)| Op::NoiseObserve(n, v)),
    ]
}

fn replay(ops: &[Op]) -> Vec<tagwatch_telemetry::Event> {
    let tel = Telemetry::new();
    let mem = MemorySink::new(1 << 16);
    tel.install(Box::new(mem.clone()));
    for op in ops {
        match op {
            Op::Read(phase2, epc, t) => {
                let name = if *phase2 {
                    "read.phase2"
                } else {
                    "read.phase1"
                };
                tel.tag_event(name, u128::from(*epc), *t);
            }
            Op::AssessMobile(epc, t) => tel.tag_event("assess.mobile", u128::from(*epc), *t),
            Op::TruthMobile(epc, t) => tel.tag_event("truth.mobile", u128::from(*epc), *t),
            Op::Cycle(t, d) => tel.sim_span("cycle", *t).end(t + d),
            Op::Round(t, d, q) => {
                tel.observe("round.q_final", *q);
                tel.sim_span("round", *t).end(t + d);
            }
            Op::Adjusts(d) => tel.incr_by("round.adjusts", u64::from(*d)),
            Op::FaultMark(open, idx, t) => {
                let name = if *open {
                    "fault.open.burst_noise"
                } else {
                    "fault.close.burst_noise"
                };
                tel.tag_event(name, u128::from(*idx), *t);
            }
            Op::FaultCounter(d) => tel.incr_by("fault.selects_lost", u64::from(*d)),
            Op::NoiseCounter(n, d) => tel.incr_by(n, u64::from(*d)),
            Op::NoiseGauge(n, v) => tel.gauge_set(n, *v),
            Op::NoiseObserve(n, v) => tel.observe(n, *v),
        }
    }
    tel.finish();
    mem.events()
}

fn js<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("verdicts serialize")
}

proptest! {
    /// Event-by-event online ingestion finalizes to verdicts
    /// byte-identical to the batch analyzers' on the closed trace.
    #[test]
    fn online_verdicts_match_batch_on_any_valid_trace(
        ops in prop::collection::vec(arb_op(), 1..80),
    ) {
        let events = replay(&ops);
        prop_assume!(!events.is_empty());
        let trace = Trace::from_events(&events).expect("live stream is a valid trace");
        let report = RunReport::analyze(&trace, &AnalyzeConfig::default());

        let mut online = OnlineAnalyzers::default();
        for event in &events {
            online.push(event);
        }
        let verdicts = online.verdicts();

        prop_assert_eq!(js(&verdicts.tags), js(&report.tags), "per-tag IRR diverged");
        prop_assert_eq!(js(&verdicts.starvation), js(&report.starvation), "starvation diverged");
        prop_assert_eq!(js(&verdicts.confusion), js(&report.confusion), "confusion diverged");
        prop_assert_eq!(js(&verdicts.q), js(&report.q), "Q diagnostics diverged");
        prop_assert_eq!(js(&verdicts.fault), js(&report.fault), "fault attribution diverged");
        prop_assert_eq!(
            verdicts.sim_seconds.to_bits(),
            report.sim_seconds.to_bits(),
            "sim window diverged"
        );
    }
}
