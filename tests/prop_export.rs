//! Properties of the profile exporters over arbitrary span forests:
//! `chrome_trace` must emit schema-valid `trace_event` JSON that
//! round-trips every span name byte-exactly no matter how hostile the
//! name (quotes, backslashes, control characters, unicode), and
//! `flame_lines` must emit exactly one collapsed-stack line per span of
//! the selected clock, every weight a non-negative integer and every
//! frame free of the format's separator characters.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tagwatch_obs::export::{chrome_trace, flame_lines};
use tagwatch_obs::model::Trace;
use tagwatch_telemetry::{ClockKind, Event, SpanRecord};

/// Arbitrary span names, hostile characters very much included — but
/// steering clear of the `cycle`/`phase1`/`phase2`/`round`/
/// `cycle.compute` families, whose structural rules (containment,
/// one-per-cycle) are the model's concern, not the exporters'.
fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            any::<char>(),
            Just('"'),
            Just('\\'),
            Just('\n'),
            Just(';'),
            Just(' '),
            Just('\u{0007}'),
        ],
        1..12,
    )
    .prop_map(|chars| chars.into_iter().collect::<String>())
    .prop_filter("structural span families excluded", |name: &String| {
        name != "cycle"
            && name != "phase1"
            && name != "phase2"
            && name != "cycle.compute"
            && name != "round"
            && !name.starts_with("round.")
    })
}

/// Raw material for one span: name, parent selector, timing, clock.
type RawSpan = (String, u64, f64, f64, bool);

/// A well-formed forest in emission order (children before parents):
/// node `i` may only be parented to a node with a larger index, so
/// emitting in index order satisfies the model's ordering contract.
fn arb_forest() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec(
        (
            arb_name(),
            any::<u64>(),
            0.0f64..1e6,
            0.0f64..1e3,
            any::<bool>(),
        ),
        1..40,
    )
    .prop_map(|raw: Vec<RawSpan>| {
        let n = raw.len() as u64;
        raw.into_iter()
            .enumerate()
            .map(|(i, (name, psel, start, duration, wall))| {
                let i = i as u64;
                // psel chooses among the i+1..n later nodes or "root".
                let later = n - 1 - i;
                let parent = if later == 0 || psel % (later + 1) == 0 {
                    None
                } else {
                    Some(i + 1 + (psel % later) + 1)
                };
                Event::Span(SpanRecord {
                    name,
                    id: i + 1,
                    parent,
                    start,
                    duration,
                    clock: if wall {
                        ClockKind::Wall
                    } else {
                        ClockKind::Sim
                    },
                })
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn chrome_trace_is_schema_valid_and_names_round_trip(events in arb_forest()) {
        let trace = Trace::from_events(&events).expect("forest is well-formed");
        let text = chrome_trace(&trace);
        let doc: serde_json::Value =
            serde_json::from_str(&text).expect("exporter output parses as JSON");

        let rendered = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        let mut names: Vec<String> = Vec::new();
        for ev in rendered {
            let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph");
            prop_assert!(ev.get("pid").and_then(|v| v.as_u64()).is_some());
            prop_assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
            if ph == "X" {
                // Integer microseconds, never negative, never floats.
                prop_assert!(ev.get("ts").and_then(|v| v.as_u64()).is_some());
                prop_assert!(ev.get("dur").and_then(|v| v.as_u64()).is_some());
                names.push(
                    ev.get("name").and_then(|v| v.as_str()).unwrap().to_string(),
                );
            }
        }
        // Every span surfaced exactly once, its name byte-identical
        // after the escape → parse round trip.
        let mut expected: Vec<String> =
            trace.spans.iter().map(|s| s.name.clone()).collect();
        expected.sort();
        names.sort();
        prop_assert_eq!(names, expected);
    }

    #[test]
    fn flame_lines_weight_every_span_of_the_clock_exactly_once(events in arb_forest()) {
        let trace = Trace::from_events(&events).expect("forest is well-formed");
        for clock in [ClockKind::Sim, ClockKind::Wall] {
            let text = flame_lines(&trace, clock);
            let expected = trace.spans.iter().filter(|s| s.clock == clock).count();
            prop_assert_eq!(text.lines().count(), expected);
            for line in text.lines() {
                let (stack, weight) =
                    line.rsplit_once(' ').expect("`stack weight` shape");
                // Non-negative integer weights (self time can never go
                // below zero, however children overlap).
                prop_assert!(weight.parse::<u64>().is_ok(), "weight {weight:?}");
                for frame in stack.split(';') {
                    prop_assert!(!frame.is_empty(), "empty frame in {line:?}");
                    prop_assert!(
                        !frame.contains(char::is_whitespace),
                        "unsanitized frame {frame:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sim_flame_weights_never_exceed_the_span_budget(events in arb_forest()) {
        let trace = Trace::from_events(&events).expect("forest is well-formed");
        // Per-span self time is bounded by the span's own duration, so
        // grouping lines by leaf frame and comparing against the summed
        // durations of the same-named spans bounds the exporter's
        // arithmetic without re-deriving it.
        let mut budget: BTreeMap<String, f64> = BTreeMap::new();
        for s in trace.spans.iter().filter(|s| s.clock == ClockKind::Sim) {
            *budget.entry(s.name.clone()).or_insert(0.0) += s.duration;
        }
        let mut spent: BTreeMap<String, u64> = BTreeMap::new();
        let text = flame_lines(&trace, ClockKind::Sim);
        for line in text.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("weight");
            let leaf = stack.rsplit(';').next().expect("leaf frame").to_string();
            *spent.entry(leaf).or_insert(0) += weight.parse::<u64>().unwrap();
        }
        // Frame names are sanitized, so map budgets through the same
        // sanitizer: group by sanitized name.
        let mut sanitized_budget: BTreeMap<String, f64> = BTreeMap::new();
        for (name, secs) in budget {
            let frame: String = if name.is_empty() {
                "_".to_string()
            } else {
                name.chars()
                    .map(|c| {
                        if c == ';' || c.is_whitespace() || c.is_control() {
                            '_'
                        } else {
                            c
                        }
                    })
                    .collect()
            };
            *sanitized_budget.entry(frame).or_insert(0.0) += secs;
        }
        for (frame, micros) in spent {
            let secs = sanitized_budget.get(&frame).copied().unwrap_or(0.0);
            // Rounding grants each span up to half a microsecond.
            let slack = 0.5 * trace.spans.len() as f64 + 1.0;
            prop_assert!(
                (micros as f64) <= secs * 1e6 + slack,
                "frame {frame:?} spent {micros} µs of a {secs} s budget"
            );
        }
    }
}
