//! Work-counter invariance: the deterministic `perf.work.*` registry
//! counters describe *simulated* work, so they must be byte-identical
//! no matter how the telemetry stream is sinked, sampled, wrapped, or
//! dropped — the accounting lives in the metrics registry, not in the
//! event stream a sink happens to keep. This is the contract that lets
//! `obs compare` treat counter equality as proof of identical sim work
//! even when the two runs used different telemetry configurations.
//!
//! The same invariance is asserted for [`Telemetry::offered`], the
//! basis of the `perf.work.telemetry_events` unit the repro harness
//! accounts per trial.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use tagwatch::prelude::*;
use tagwatch_monitor::{MonitorConfig, MonitorSink};
use tagwatch_reader::{Reader, ReaderConfig};
use tagwatch_scene::presets;
use tagwatch_telemetry::{
    MemorySink, RingSink, SimOnlySink, Telemetry, TelemetryConfig, WORK_PREFIX,
};

const SEED: u64 = 23;

/// `perf.work.*` totals plus the offered-event count from one run.
type WorkFingerprint = (BTreeMap<String, u64>, u64);

/// One controller run on a private telemetry handle; `configure` sets up
/// sinks/sampling before the run. Returns the `perf.work.*` slice of the
/// registry plus the offered-event count.
fn drive(configure: impl FnOnce(&Telemetry)) -> WorkFingerprint {
    let scene = presets::turntable(12, 1, SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xE9C5);
    let epcs: Vec<Epc> = (0..12).map(|_| Epc::random(&mut rng)).collect();
    let mut reader = Reader::new(scene, &epcs, ReaderConfig::default(), SEED ^ 1);

    let tel = Telemetry::new();
    configure(&tel);
    let mut ctl = Controller::new(TagwatchConfig::default()).with_telemetry(tel.clone());
    ctl.run_cycles(&mut reader, 5).expect("valid config");
    tel.flush();

    let work: BTreeMap<String, u64> = tel
        .snapshot()
        .counters()
        .filter(|(name, _)| name.starts_with(WORK_PREFIX))
        .map(|(name, v)| (name.to_string(), v))
        .collect();
    (work, tel.offered())
}

#[test]
fn work_counters_are_invariant_under_every_sink_configuration() {
    // Baseline: enabled handle, no sinks at all — pure registry.
    let (baseline, offered) = drive(|tel| tel.set_enabled(true));
    assert!(
        baseline.len() >= 9,
        "expected the full work taxonomy, got {baseline:?}"
    );
    for unit in ["slots", "selects", "queries", "channel_evals", "rng_draws"] {
        let name = format!("{WORK_PREFIX}{unit}");
        assert!(
            baseline.get(&name).copied().unwrap_or(0) > 0,
            "{name} should be hot on a real run: {baseline:?}"
        );
    }

    let monitor_dir =
        std::env::temp_dir().join(format!("tagwatch-work-itest-{}-{SEED}", std::process::id()));
    let legs: Vec<(&str, WorkFingerprint)> = vec![
        (
            "memory sink",
            drive(|tel| tel.install(Box::new(MemorySink::new(1 << 20)))),
        ),
        (
            "round sampling (1 in 4)",
            drive(|tel| {
                tel.install(Box::new(MemorySink::new(1 << 20)));
                tel.configure(TelemetryConfig {
                    sample_every_n_rounds: 4,
                    max_events: 0,
                });
            }),
        ),
        (
            "event budget cutoff",
            drive(|tel| {
                tel.install(Box::new(MemorySink::new(1 << 20)));
                tel.configure(TelemetryConfig {
                    sample_every_n_rounds: 1,
                    max_events: 40,
                });
            }),
        ),
        (
            "sim-only wrapper",
            drive(|tel| tel.install(Box::new(SimOnlySink::new(MemorySink::new(1 << 20))))),
        ),
        (
            "dropping ring sink",
            drive(|tel| tel.install(Box::new(RingSink::new(8)))),
        ),
        (
            "monitor sink",
            drive(|tel| {
                let sink = MonitorSink::create(
                    &monitor_dir,
                    Box::new(MemorySink::new(1 << 20)),
                    MonitorConfig::default(),
                )
                .expect("temp monitor dir");
                tel.install(Box::new(sink));
            }),
        ),
    ];
    std::fs::remove_dir_all(&monitor_dir).ok();

    for (leg, (work, leg_offered)) in &legs {
        assert_eq!(
            *work, baseline,
            "{leg}: perf.work.* counters drifted from the bare-handle run"
        );
        assert_eq!(
            *leg_offered, offered,
            "{leg}: offered-event count drifted from the bare-handle run"
        );
    }
}

#[test]
fn the_suppression_legs_are_not_vacuous() {
    // The invariance above only means something if sampling genuinely
    // thins the delivered stream: prove rate-4 sampling hands the sink
    // strictly fewer events than rate-1 on the identical run.
    let full = MemorySink::new(1 << 20);
    let full_tap = full.clone();
    drive(move |tel| tel.install(Box::new(full)));

    let sampled = MemorySink::new(1 << 20);
    let sampled_tap = sampled.clone();
    drive(move |tel| {
        tel.install(Box::new(sampled));
        tel.configure(TelemetryConfig {
            sample_every_n_rounds: 4,
            max_events: 0,
        });
    });

    let (n_full, n_sampled) = (full_tap.events().len(), sampled_tap.events().len());
    assert!(
        n_sampled < n_full,
        "sampling kept everything ({n_sampled} vs {n_full} events)"
    );
}
