//! Property-based tests for the Phase-II scheduler: set-cover invariants
//! that must hold for *any* population and target set.

use proptest::prelude::*;
use tagwatch::{naive_cover, select_cover, Bitmap, CoverConfig, CoverStrategy};
use tagwatch_gen2::{CostModel, Epc};

/// Populations: up to 48 tags with EPCs that may share prefixes (biased
/// toward collisions to stress collateral handling).
fn arb_population() -> impl Strategy<Value = Vec<Epc>> {
    proptest::collection::vec(
        prop_oneof![
            // Fully random EPC.
            (any::<u64>(), any::<u32>())
                .prop_map(|(lo, hi)| Epc::from_bits(((hi as u128) << 64) | lo as u128)),
            // Clustered: shared high 88 bits, random low byte — forces
            // prefix collisions between tags.
            any::<u8>().prop_map(|b| Epc::from_bits((0xABCD_u128 << 80) | b as u128)),
        ],
        1..48,
    )
}

fn arb_targets(n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::btree_set(0..n, 0..=n.min(12)).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cover_always_covers_all_targets(
        (epcs, targets) in arb_population().prop_flat_map(|e| {
            let n = e.len();
            (Just(e), arb_targets(n))
        })
    ) {
        let cost = CostModel::paper();
        let plan = select_cover(&epcs, &targets, &cost, &CoverConfig::default());
        for &t in &targets {
            prop_assert!(plan.covered.get(t), "target {} uncovered", t);
        }
        // Every selected mask really covers at least one target.
        for mask in &plan.masks {
            prop_assert!(
                targets.iter().any(|&t| mask.matches(epcs[t])),
                "useless mask {}",
                mask
            );
        }
        // Plan coverage bitmap is consistent with the masks.
        for (i, epc) in epcs.iter().enumerate() {
            let by_masks = plan.masks.iter().any(|m| m.matches(*epc));
            prop_assert_eq!(plan.covered.get(i), by_masks, "coverage mismatch at {}", i);
        }
    }

    #[test]
    fn cover_cost_never_exceeds_naive(
        (epcs, targets) in arb_population().prop_flat_map(|e| {
            let n = e.len();
            (Just(e), arb_targets(n))
        })
    ) {
        let cost = CostModel::paper();
        let plan = select_cover(&epcs, &targets, &cost, &CoverConfig::default());
        let naive = naive_cover(&epcs, &targets, &cost);
        prop_assert!(
            plan.est_cost <= naive.est_cost + 1e-12,
            "plan {} > naive {}",
            plan.est_cost,
            naive.est_cost
        );
        if plan.strategy == CoverStrategy::NaivePerEpc {
            prop_assert!((plan.est_cost - naive.est_cost).abs() < 1e-12);
        }
    }

    #[test]
    fn mask_count_is_bounded_by_target_count(
        (epcs, targets) in arb_population().prop_flat_map(|e| {
            let n = e.len();
            (Just(e), arb_targets(n))
        })
    ) {
        let cost = CostModel::paper();
        let plan = select_cover(&epcs, &targets, &cost, &CoverConfig::default());
        // Greedy only picks masks with positive gain, so it can never use
        // more masks than there are targets.
        prop_assert!(plan.masks.len() <= targets.len());
        if targets.is_empty() {
            prop_assert!(plan.masks.is_empty());
            prop_assert_eq!(plan.est_cost, 0.0);
        }
    }

    #[test]
    fn bitmap_ops_are_consistent(
        indices_a in proptest::collection::btree_set(0usize..128, 0..40),
        indices_b in proptest::collection::btree_set(0usize..128, 0..40),
    ) {
        let a_idx: Vec<usize> = indices_a.iter().copied().collect();
        let b_idx: Vec<usize> = indices_b.iter().copied().collect();
        let a = Bitmap::from_indices(128, &a_idx);
        let b = Bitmap::from_indices(128, &b_idx);
        // and_count equals set intersection size.
        let inter = indices_a.intersection(&indices_b).count();
        prop_assert_eq!(a.and_count(&b), inter);
        // subtract equals set difference.
        let mut d = a.clone();
        d.subtract(&b);
        let diff: Vec<usize> = indices_a.difference(&indices_b).copied().collect();
        prop_assert_eq!(d.ones().collect::<Vec<_>>(), diff);
        // union equals set union.
        let mut u = a.clone();
        u.union(&b);
        let uni: Vec<usize> = indices_a.union(&indices_b).copied().collect();
        prop_assert_eq!(u.ones().collect::<Vec<_>>(), uni);
        // count_ones consistent with ones().
        prop_assert_eq!(a.count_ones(), a_idx.len());
    }
}
