//! Cross-crate telemetry integration: the spans, counters, and JSONL
//! export emitted by a running two-phase pipeline must agree with the
//! `CycleReport` ground truth the controller returns.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagwatch::prelude::*;
use tagwatch_reader::{Reader, ReaderConfig};
use tagwatch_rf::ChannelPlan;
use tagwatch_scene::{presets, Scene};
use tagwatch_telemetry::{Event, JsonlSink, MemorySink, SpanRecord, Telemetry};

fn epcs(n: usize, seed: u64) -> Vec<Epc> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Epc::random(&mut rng)).collect()
}

fn reader_for(scene: Scene, ids: &[Epc], seed: u64) -> Reader {
    let cfg = ReaderConfig {
        channel_plan: ChannelPlan::single(922.5e6),
        ..ReaderConfig::default()
    };
    Reader::new(scene, ids, cfg, seed)
}

fn fast_cfg() -> TagwatchConfig {
    TagwatchConfig {
        phase2_len: 1.0,
        ..TagwatchConfig::default()
    }
}

/// Runs `cycles` cycles with controller and reader sharing one telemetry
/// handle, returning the reports plus the instrumented pieces.
fn run_instrumented(cycles: usize) -> (Vec<CycleReport>, MemorySink, Telemetry, usize) {
    let scene = presets::turntable(20, 2, 31);
    let ids = epcs(20, 32);
    let mut reader = reader_for(scene, &ids, 33);
    let mut ctl = Controller::new(fast_cfg());

    let tel = Telemetry::new();
    let sink = MemorySink::new(1 << 16);
    tel.install(Box::new(sink.clone()));
    ctl.set_telemetry(tel.clone());
    reader.set_telemetry(tel.clone());

    let mut reports = Vec::new();
    for _ in 0..cycles {
        reports.push(ctl.run_cycle(&mut reader).unwrap());
    }
    let rounds = reader.events.take().len();
    (reports, sink, tel, rounds)
}

#[test]
fn spans_mirror_cycle_reports() {
    let cycles = 4;
    let (reports, sink, _tel, _) = run_instrumented(cycles);

    let cycle_spans = sink.spans_named("cycle");
    let phase1_spans = sink.spans_named("phase1");
    let phase2_spans = sink.spans_named("phase2");
    let compute_spans = sink.spans_named("cycle.compute");
    assert_eq!(cycle_spans.len(), cycles);
    assert_eq!(phase1_spans.len(), cycles);
    assert_eq!(phase2_spans.len(), cycles);
    assert_eq!(compute_spans.len(), cycles);

    for (k, rep) in reports.iter().enumerate() {
        let cycle = &cycle_spans[k];
        assert!((cycle.start - rep.t_start).abs() < 1e-9);
        assert!((cycle.duration - (rep.t_end - rep.t_start)).abs() < 1e-9);
        assert!((phase1_spans[k].duration - rep.phase1_duration).abs() < 1e-9);
        assert!((phase2_spans[k].duration - rep.phase2_duration).abs() < 1e-9);
        // Phases nest under their cycle; cycles are roots.
        assert_eq!(cycle.parent, None);
        assert_eq!(phase1_spans[k].parent, Some(cycle.id));
        assert_eq!(phase2_spans[k].parent, Some(cycle.id));
        assert_eq!(compute_spans[k].parent, Some(cycle.id));
    }

    // Span ids are unique across the run.
    let mut ids: Vec<u64> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Span(SpanRecord { id, .. }) => Some(*id),
            _ => None,
        })
        .collect();
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n);
}

#[test]
fn counters_mirror_cycle_reports_and_round_log() {
    let cycles = 4;
    let (reports, _sink, tel, rounds) = run_instrumented(cycles);
    let snap = tel.snapshot();

    let sum = |f: fn(&CycleReport) -> usize| reports.iter().map(f).sum::<usize>() as u64;
    assert_eq!(snap.counter("cycle.count"), Some(cycles as u64));
    assert_eq!(snap.counter("cycle.census"), Some(sum(|r| r.census.len())));
    assert_eq!(
        snap.counter("phase1.reports"),
        Some(sum(|r| r.phase1.len()))
    );
    assert_eq!(
        snap.counter("phase2.reports"),
        Some(sum(|r| r.phase2.len()))
    );
    let evictions = sum(|r| r.evicted.len());
    assert_eq!(snap.counter("cycle.evictions").unwrap_or(0), evictions);

    // Every cycle records a schedule mode.
    let selective = snap.counter("schedule.selective").unwrap_or(0);
    let read_all = snap.counter("schedule.read_all").unwrap_or(0);
    assert_eq!(selective + read_all, cycles as u64);
    let masks = reports
        .iter()
        .filter_map(|r| r.plan.as_ref())
        .map(|p| p.masks.len())
        .sum::<usize>() as u64;
    assert_eq!(snap.counter("cycle.masks").unwrap_or(0), masks);

    // The reader promoted every logged round.
    assert!(rounds > 0);
    assert_eq!(snap.counter("round.count"), Some(rounds as u64));
    assert_eq!(
        snap.histogram("round.duration").unwrap().count(),
        rounds as u64
    );

    // Duration histograms saw one observation per cycle, and their sums
    // agree with the report ground truth.
    let cycle_h = snap.histogram("cycle.duration").unwrap();
    assert_eq!(cycle_h.count(), cycles as u64);
    let total: f64 = reports.iter().map(|r| r.t_end - r.t_start).sum();
    assert!((cycle_h.sum() - total).abs() < 1e-9);
    let compute_h = snap.histogram("cycle.compute_seconds").unwrap();
    let compute_total: f64 = reports.iter().map(|r| r.compute_time).sum();
    assert!((compute_h.sum() - compute_total).abs() < 1e-9);
}

#[test]
fn disabled_handle_changes_nothing_and_records_nothing() {
    let run = |instrument: bool| {
        let scene = presets::turntable(15, 1, 41);
        let ids = epcs(15, 42);
        let mut reader = reader_for(scene, &ids, 43);
        let mut ctl = Controller::new(fast_cfg());
        let tel = Telemetry::new(); // no sink installed → disabled
        if instrument {
            ctl.set_telemetry(tel.clone());
            reader.set_telemetry(tel.clone());
        }
        let mut digest = Vec::new();
        for _ in 0..5 {
            let rep = ctl.run_cycle(&mut reader).unwrap();
            digest.push((
                rep.mode,
                rep.census.len(),
                rep.phase1.len(),
                rep.phase2.len(),
            ));
        }
        assert!(tel.snapshot().is_empty());
        (digest, reader.now())
    };
    // Telemetry plumbing must not perturb the simulation.
    assert_eq!(run(true), run(false));
}

#[test]
fn jsonl_export_round_trips_every_line() {
    let path = std::env::temp_dir().join(format!(
        "tagwatch-telemetry-integration-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let scene = presets::turntable(15, 1, 51);
    let ids = epcs(15, 52);
    let mut reader = reader_for(scene, &ids, 53);
    let mut ctl = Controller::new(fast_cfg());
    let tel = Telemetry::new();
    tel.install(Box::new(JsonlSink::create(&path).unwrap()));
    ctl.set_telemetry(tel.clone());
    reader.set_telemetry(tel.clone());
    for _ in 0..3 {
        ctl.run_cycle(&mut reader).unwrap();
    }
    tel.flush();

    let contents = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let mut cycle_spans = 0usize;
    let mut lines = 0usize;
    for line in contents.lines() {
        lines += 1;
        let ev: Event = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("unparseable JSONL line {line:?}: {e}"));
        if matches!(&ev, Event::Span(s) if s.name == "cycle") {
            cycle_spans += 1;
        }
    }
    assert!(lines > 10, "only {lines} JSONL lines");
    assert_eq!(cycle_spans, 3);
}
